//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` it actually uses: [`SeedableRng`],
//! the [`Rng::random_range`] method over integer and float ranges, and
//! [`rngs::SmallRng`] (implemented as SplitMix64 — deterministic, fast,
//! and statistically fine for workload generation; no compatibility with
//! upstream `rand` streams is promised or required).

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `lo..hi` given a raw 64-bit draw source.
    fn sample(range: &Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: &Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is bounded by
                // span/2^64, negligible for the small spans used here.
                let r = ((draw() as u128 * span) >> 64) as i128;
                (range.start as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample(range: &Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (draw() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample(range: &Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (draw() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64_dyn();
        T::sample(&range, &mut draw)
    }

    /// Object-safe forwarding helper for `random_range`.
    #[doc(hidden)]
    fn next_u64_dyn(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniformly random boolean.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = r.random_range(-8i64..8);
            assert!((-8..8).contains(&i));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
            let f = r.random_range(0.3f64..0.7);
            assert!((0.3..0.7).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
