//! The fact environment shared by real and simulated optimization.
//!
//! §4.1 of the paper introduces *synonym maps* ("a synonym map maps a φ
//! node to its input on the respective DST predecessor") and runs
//! applicability checks against them so that no IR needs to be copied
//! during simulation. [`FactEnv`] generalizes this: it carries
//!
//! - **synonyms** — value ⇒ equivalent constant or other value,
//! - **stamps** — condition-refined value knowledge (see
//!   [`dbds_analysis::Stamp`]),
//! - a **field cache** — the last known value of `object.field`, for read
//!   elimination,
//! - **virtual objects** — allocations whose fields are tracked
//!   symbolically, for partial-escape-analysis-style reasoning.
//!
//! The same environment type drives the DBDS simulation tier (facts only,
//! no mutation) and the canonicalization pass (facts plus graph rewrites).

use dbds_analysis::{refine_by_cmp, refine_by_instanceof, Stamp};
use dbds_ir::{ClassId, ConstValue, FieldId, Graph, Inst, InstId, Type};
use std::collections::HashMap;

/// What a value is known to be equivalent to.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Synonym {
    /// Equivalent to another SSA value.
    Value(InstId),
    /// Equivalent to a constant.
    Const(ConstValue),
}

/// A fully resolved value: the representative SSA id after following the
/// synonym chain, plus the constant it is pinned to, if any.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Resolved {
    /// Representative value id.
    pub id: InstId,
    /// Known constant value, if pinned.
    pub konst: Option<ConstValue>,
}

/// A virtual (not yet materialized) object tracked by PEA-style reasoning.
#[derive(Clone, PartialEq, Debug)]
pub struct VirtualObject {
    /// The allocated class.
    pub class: ClassId,
    /// Known field contents. Missing fields hold their default value.
    pub fields: HashMap<FieldId, Synonym>,
}

/// The set of facts valid at one program point.
#[derive(Clone, Default, Debug)]
pub struct FactEnv {
    synonyms: HashMap<InstId, Synonym>,
    stamps: HashMap<InstId, Stamp>,
    field_cache: HashMap<(InstId, FieldId), Synonym>,
    virtuals: HashMap<InstId, VirtualObject>,
}

impl FactEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones only the flow-insensitive facts: synonyms and stamps carry
    /// over to any dominated block, while the field cache and virtual
    /// objects (memory state) are only valid along straight-line paths and
    /// are dropped.
    pub fn clone_pure(&self) -> Self {
        FactEnv {
            synonyms: self.synonyms.clone(),
            stamps: self.stamps.clone(),
            field_cache: HashMap::new(),
            virtuals: HashMap::new(),
        }
    }

    /// Registers that `v` is equivalent to `syn`.
    ///
    /// # Panics
    ///
    /// Panics if a value is made a synonym of itself.
    pub fn set_synonym(&mut self, v: InstId, syn: Synonym) {
        if let Synonym::Value(w) = syn {
            assert_ne!(v, w, "value cannot be its own synonym");
        }
        self.synonyms.insert(v, syn);
    }

    /// Follows the synonym chain of `v` to its representative and constant.
    pub fn resolve(&self, v: InstId) -> Resolved {
        let mut cur = v;
        // Chains are short; the bound guards against accidental cycles.
        for _ in 0..64 {
            match self.synonyms.get(&cur) {
                Some(Synonym::Const(c)) => {
                    return Resolved {
                        id: cur,
                        konst: Some(*c),
                    }
                }
                Some(Synonym::Value(w)) => cur = *w,
                None => break,
            }
        }
        Resolved {
            id: cur,
            konst: None,
        }
    }

    /// Like [`FactEnv::resolve`], but additionally recognizes values whose
    /// defining instruction is an [`Inst::Const`] in the graph itself.
    pub fn resolve_full(&self, g: &Graph, v: InstId) -> Resolved {
        let r = self.resolve(v);
        if r.konst.is_none() {
            if let Inst::Const(c) = g.inst(r.id) {
                return Resolved {
                    id: r.id,
                    konst: Some(*c),
                };
            }
        }
        r
    }

    /// The stamp of `v` under the current facts. Constants get constant
    /// stamps; otherwise refined knowledge recorded for the representative
    /// is returned, falling back to the instruction's local stamp.
    pub fn stamp_of(&self, g: &Graph, v: InstId) -> Stamp {
        let r = self.resolve(v);
        if let Some(c) = r.konst {
            return Stamp::of_const(c);
        }
        if let Some(s) = self.stamps.get(&r.id) {
            return s.clone();
        }
        // Virtual objects are known non-null with exact class.
        if let Some(vo) = self.virtuals.get(&r.id) {
            return Stamp::Obj(dbds_analysis::RefStamp::exact(vo.class));
        }
        dbds_analysis::initial_stamp(g, r.id)
    }

    /// Replaces the recorded stamp of the representative of `v`.
    pub fn set_stamp(&mut self, v: InstId, stamp: Stamp) {
        let r = self.resolve(v);
        self.stamps.insert(r.id, stamp);
    }

    /// The cached value of `object.field`, if a previous load/store pinned
    /// it down.
    pub fn cached_field(&self, object: InstId, field: FieldId) -> Option<Synonym> {
        let base = self.resolve(object).id;
        self.field_cache.get(&(base, field)).copied()
    }

    /// Records `object.field == value`.
    pub fn cache_field(&mut self, object: InstId, field: FieldId, value: Synonym) {
        let base = self.resolve(object).id;
        self.field_cache.insert((base, field), value);
    }

    /// Invalidates cache entries that a store to `object.field` may alias:
    /// every entry for `field` with a *different* base object (same-base
    /// entries are overwritten by the caller).
    pub fn kill_field_aliases(&mut self, object: InstId, field: FieldId) {
        let base = self.resolve(object).id;
        self.field_cache
            .retain(|&(b, f), _| f != field || b == base);
    }

    /// Invalidates the entire field cache (used at opaque calls).
    pub fn kill_all_fields(&mut self) {
        self.field_cache.clear();
    }

    /// Begins tracking `alloc` (an [`Inst::New`] value) as a virtual
    /// object of class `class`.
    pub fn add_virtual(&mut self, alloc: InstId, class: ClassId) {
        self.virtuals.insert(
            alloc,
            VirtualObject {
                class,
                fields: HashMap::new(),
            },
        );
    }

    /// The virtual object backing `v`, if any.
    pub fn virtual_of(&self, v: InstId) -> Option<&VirtualObject> {
        let base = self.resolve(v).id;
        self.virtuals.get(&base)
    }

    /// Reads a virtual field; defaults to the field type's zero value.
    pub fn read_virtual_field(&self, g: &Graph, object: InstId, field: FieldId) -> Option<Synonym> {
        let base = self.resolve(object).id;
        let vo = self.virtuals.get(&base)?;
        Some(match vo.fields.get(&field) {
            Some(s) => *s,
            None => Synonym::Const(default_const(g, field)),
        })
    }

    /// Writes a virtual field. Returns `false` when `object` is not
    /// virtual.
    pub fn write_virtual_field(&mut self, object: InstId, field: FieldId, value: Synonym) -> bool {
        let base = self.resolve(object).id;
        match self.virtuals.get_mut(&base) {
            Some(vo) => {
                vo.fields.insert(field, value);
                true
            }
            None => false,
        }
    }

    /// Stops tracking `v` as virtual (the object escaped).
    pub fn materialize(&mut self, v: InstId) {
        let base = self.resolve(v).id;
        self.virtuals.remove(&base);
    }

    /// Applies the knowledge that branch condition `cond` evaluated to
    /// `truth`. Returns `false` when the combination is infeasible (the
    /// guarded path cannot execute).
    pub fn assume_condition(&mut self, g: &Graph, cond: InstId, truth: bool) -> bool {
        let r = self.resolve_full(g, cond);
        if let Some(c) = r.konst {
            return c.as_bool() == Some(truth);
        }
        // The condition itself is now a known boolean.
        self.set_stamp(cond, Stamp::Bool(Some(truth)));
        match g.inst(r.id).clone() {
            Inst::Compare { op, lhs, rhs } => {
                let ls = self.stamp_of(g, lhs);
                let rs = self.stamp_of(g, rhs);
                match refine_by_cmp(op, truth, &ls, &rs) {
                    Some((l2, r2)) => {
                        self.set_stamp(lhs, l2);
                        self.set_stamp(rhs, r2);
                        true
                    }
                    None => false,
                }
            }
            Inst::InstanceOf { object, class } => {
                let s = self.stamp_of(g, object);
                match s {
                    Stamp::Obj(ref os) => match refine_by_instanceof(os, class, truth) {
                        Some(refined) => {
                            self.set_stamp(object, Stamp::Obj(refined));
                            true
                        }
                        None => false,
                    },
                    _ => true,
                }
            }
            Inst::Not(x) => self.assume_condition(g, x, !truth),
            _ => true,
        }
    }
}

/// The default (zero) constant of `field`'s type.
fn default_const(g: &Graph, field: FieldId) -> ConstValue {
    match g.class_table().field(field).ty {
        Type::Int => ConstValue::Int(0),
        Type::Bool => ConstValue::Bool(false),
        Type::Ref(c) => ConstValue::Null(c),
        Type::Arr => ConstValue::NullArr,
        Type::Void => unreachable!("fields cannot be void"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_analysis::{IntRange, Nullness};
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder};
    use std::sync::Arc;

    fn int_graph() -> (Graph, InstId, InstId, InstId) {
        let mut b = GraphBuilder::new("g", &[Type::Int, Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let y = b.param(1);
        let c = b.cmp(CmpOp::Lt, x, y);
        b.ret(None);
        (b.finish(), x, y, c)
    }

    #[test]
    fn synonym_chains_resolve() {
        let (_, x, y, c) = int_graph();
        let mut env = FactEnv::new();
        env.set_synonym(c, Synonym::Value(y));
        env.set_synonym(y, Synonym::Const(ConstValue::Int(3)));
        let r = env.resolve(c);
        assert_eq!(r.konst, Some(ConstValue::Int(3)));
        assert_eq!(env.resolve(x).konst, None);
        assert_eq!(env.resolve(x).id, x);
    }

    #[test]
    fn stamps_follow_synonyms() {
        let (g, x, y, _) = int_graph();
        let mut env = FactEnv::new();
        env.set_synonym(x, Synonym::Value(y));
        env.set_stamp(y, Stamp::Int(IntRange::new(0, 5)));
        assert_eq!(env.stamp_of(&g, x), Stamp::Int(IntRange::new(0, 5)));
    }

    #[test]
    fn assume_cmp_refines_both_sides() {
        let (g, x, y, c) = int_graph();
        let mut env = FactEnv::new();
        env.set_synonym(y, Synonym::Const(ConstValue::Int(10)));
        assert!(env.assume_condition(&g, c, true)); // x < 10
        match env.stamp_of(&g, x) {
            Stamp::Int(r) => assert_eq!(r.hi, 9),
            s => panic!("unexpected stamp {s:?}"),
        }
        assert_eq!(env.stamp_of(&g, c), Stamp::Bool(Some(true)));
    }

    #[test]
    fn assume_not_negates() {
        let (g, x, _y, c) = int_graph();
        let mut gg = g.clone();
        let entry = gg.entry();
        let not = gg.append_inst(entry, Inst::Not(c), Type::Bool);
        let mut env = FactEnv::new();
        // not(x < y) true  ⇒  x >= y.
        assert!(env.assume_condition(&gg, not, true));
        assert_eq!(env.stamp_of(&gg, c), Stamp::Bool(Some(false)));
        let _ = x;
    }

    #[test]
    fn infeasible_assumption_detected() {
        let (g, x, y, c) = int_graph();
        let mut env = FactEnv::new();
        env.set_synonym(x, Synonym::Const(ConstValue::Int(20)));
        env.set_synonym(y, Synonym::Const(ConstValue::Int(10)));
        // 20 < 10 cannot be true.
        assert!(!env.assume_condition(&g, c, true));
    }

    #[test]
    fn field_cache_with_alias_kill() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let fy = t.add_field(a, "y", Type::Int);
        let mut b = GraphBuilder::new("f", &[Type::Ref(a), Type::Ref(a)], Arc::new(t));
        let o1 = b.param(0);
        let o2 = b.param(1);
        b.ret(None);
        let g = b.finish();
        let _ = g;
        let mut env = FactEnv::new();
        env.cache_field(o1, fx, Synonym::Const(ConstValue::Int(1)));
        env.cache_field(o2, fx, Synonym::Const(ConstValue::Int(2)));
        env.cache_field(o1, fy, Synonym::Const(ConstValue::Int(3)));
        // A store to o2.x may alias o1.x (different base) but not o1.y.
        env.kill_field_aliases(o2, fx);
        assert_eq!(env.cached_field(o1, fx), None);
        assert_eq!(
            env.cached_field(o2, fx),
            Some(Synonym::Const(ConstValue::Int(2)))
        );
        assert_eq!(
            env.cached_field(o1, fy),
            Some(Synonym::Const(ConstValue::Int(3)))
        );
        env.kill_all_fields();
        assert_eq!(env.cached_field(o2, fx), None);
    }

    #[test]
    fn virtual_objects_track_fields() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let table = Arc::new(t);
        let mut b = GraphBuilder::new("v", &[], table);
        let alloc = b.new_object(a);
        b.ret(None);
        let g = b.finish();
        let mut env = FactEnv::new();
        env.add_virtual(alloc, a);
        // Default field value is the typed zero.
        assert_eq!(
            env.read_virtual_field(&g, alloc, fx),
            Some(Synonym::Const(ConstValue::Int(0)))
        );
        assert!(env.write_virtual_field(alloc, fx, Synonym::Const(ConstValue::Int(7))));
        assert_eq!(
            env.read_virtual_field(&g, alloc, fx),
            Some(Synonym::Const(ConstValue::Int(7)))
        );
        // Virtual objects are non-null with exact class.
        match env.stamp_of(&g, alloc) {
            Stamp::Obj(s) => {
                assert_eq!(s.nullness, Nullness::NonNull);
                assert_eq!(s.exact_class, Some(a));
            }
            s => panic!("unexpected stamp {s:?}"),
        }
        env.materialize(alloc);
        assert_eq!(env.read_virtual_field(&g, alloc, fx), None);
        assert!(!env.write_virtual_field(alloc, fx, Synonym::Const(ConstValue::Int(9))));
    }

    #[test]
    fn instanceof_assumption_refines() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let table = Arc::new(t);
        let mut b = GraphBuilder::new("i", &[Type::Ref(a)], table);
        let o = b.param(0);
        let test = b.instance_of(o, a);
        b.ret(None);
        let g = b.finish();
        let mut env = FactEnv::new();
        assert!(env.assume_condition(&g, test, true));
        match env.stamp_of(&g, o) {
            Stamp::Obj(s) => {
                assert_eq!(s.nullness, Nullness::NonNull);
                assert_eq!(s.exact_class, Some(a));
            }
            s => panic!("unexpected stamp {s:?}"),
        }
    }
}
