//! # dbds-opt — optimizations as applicability checks and action steps
//!
//! The optimization substrate of the DBDS reproduction. §2 of the paper
//! lists the optimizations that code duplication enables — constant
//! folding, conditional elimination, partial escape analysis with scalar
//! replacement, read elimination, and strength reduction. This crate
//! implements all of them, split (per §4.1, after Chang et al.) into
//!
//! - **applicability checks** (ACs): predicates deciding whether a pattern
//!   can be optimized under a set of facts, and
//! - **action steps**: descriptions of the replacement, returned as
//!   [`Verdict`]s rather than graph mutations.
//!
//! The shared fact container is [`FactEnv`] (synonym maps, stamps, read
//! caches, virtual objects). The DBDS simulation tier evaluates ACs
//! against it without touching the graph; the real passes in this crate
//! apply the verdicts:
//!
//! - [`canonicalize`] — dominator-order CF/SR/CE/read-elim with branch
//!   folding,
//! - [`scalar_replace`] — escape analysis + scalar replacement,
//! - [`remove_dead_code`] / [`simplify_cfg`] — cleanup,
//! - [`optimize_full`] — everything to a fixpoint (the baseline pipeline).
//!
//! [`SsaBuilder`] provides the on-demand φ construction both scalar
//! replacement and the duplication transform need.
//!
//! # Examples
//!
//! Figure 1's constant-folding opportunity, detected without mutating the
//! graph:
//!
//! ```
//! use dbds_ir::{parse_module, ConstValue};
//! use dbds_opt::{evaluate, FactEnv, Synonym, Verdict};
//!
//! let m = parse_module(
//!     "func @foo(x: int) {\n\
//!      entry:\n  two: int = const 2\n  sum: int = add two, x\n  return sum\n}",
//! )?;
//! let g = &m.graphs[0];
//! let sum = g.block_insts(g.entry())[2];
//! let x = g.param_values()[0];
//!
//! // Pretend x is the constant 0 on this path (a φ synonym).
//! let mut env = FactEnv::new();
//! env.set_synonym(x, Synonym::Const(ConstValue::Int(0)));
//! assert_eq!(
//!     evaluate(g, &env, sum).verdict,
//!     Verdict::Const(ConstValue::Int(2)),
//! );
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod env;
mod evaluate;
mod passes;
mod ssa_repair;

pub use env::{FactEnv, Resolved, Synonym, VirtualObject};
pub use evaluate::{evaluate, record_effects, Evaluation, OptKind, Verdict};
pub use passes::canonicalize::{canonicalize, CanonStats};
pub use passes::dce::{remove_dead_code, remove_dead_instructions, remove_unreachable_blocks};
pub use passes::gvn::global_value_numbering;
pub use passes::pipeline::{optimize_full, optimize_once, OptimizeStats};
pub use passes::scalar_replace::scalar_replace;
pub use passes::simplify::{merge_straightline_blocks, remove_single_input_phis, simplify_cfg};
pub use ssa_repair::{SsaBuilder, SsaRepairError};
