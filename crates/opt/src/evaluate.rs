//! Applicability checks and action steps.
//!
//! §4.1 of the paper splits every optimization into a *precondition* (an
//! applicability check, AC) and an *action step* that, instead of mutating
//! the IR, "return[s] new (sub)graphs containing the result of the
//! optimization". [`evaluate`] implements exactly that contract: given a
//! [`FactEnv`] it decides what would happen to one instruction and
//! describes the result as a [`Verdict`] without touching the graph. Both
//! the DBDS simulation tier and the real canonicalization pass consume the
//! same verdicts — the simulation feeds them into the cost model, the pass
//! applies them.
//!
//! The covered optimizations are the paper's §2 set: constant folding,
//! strength reduction, conditional elimination, read elimination, and the
//! PEA-style virtual-object reasoning, plus φ copy propagation.

use crate::env::{FactEnv, Resolved, Synonym};
use dbds_analysis::{try_fold_cmp, try_fold_instanceof, Stamp};
use dbds_ir::{BinOp, CmpOp, ConstValue, Graph, Inst, InstId};
use std::fmt;

/// What an optimization would do to an instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Verdict {
    /// No optimization applies.
    Keep,
    /// The instruction's value is the given constant.
    Const(ConstValue),
    /// The instruction is redundant with an existing value.
    Alias(InstId),
    /// The instruction can be replaced by a cheaper one: `lhs op rhs`
    /// where `rhs` is a new constant (covers the shift/mask strength
    /// reductions).
    Rewrite {
        /// The cheaper operator.
        op: BinOp,
        /// The surviving operand.
        lhs: InstId,
        /// The new constant operand.
        rhs: ConstValue,
    },
    /// The instruction disappears entirely (e.g. a store into a virtual
    /// object).
    Eliminated,
}

impl Verdict {
    /// Returns `true` when the verdict changes the instruction.
    pub fn is_progress(&self) -> bool {
        !matches!(self, Verdict::Keep)
    }
}

/// Which of the paper's §2 optimization classes produced a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OptKind {
    /// Constant folding (CF).
    ConstantFold,
    /// Strength reduction.
    StrengthReduce,
    /// Conditional elimination (CE).
    ConditionalElim,
    /// Read elimination.
    ReadElim,
    /// Partial escape analysis / scalar replacement (PEA).
    ScalarReplace,
    /// φ copy propagation.
    CopyProp,
}

impl OptKind {
    /// All kinds, in a fixed order.
    pub const ALL: [OptKind; 6] = [
        OptKind::ConstantFold,
        OptKind::StrengthReduce,
        OptKind::ConditionalElim,
        OptKind::ReadElim,
        OptKind::ScalarReplace,
        OptKind::CopyProp,
    ];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            OptKind::ConstantFold => "constant-fold",
            OptKind::StrengthReduce => "strength-reduce",
            OptKind::ConditionalElim => "conditional-elim",
            OptKind::ReadElim => "read-elim",
            OptKind::ScalarReplace => "scalar-replace",
            OptKind::CopyProp => "copy-prop",
        }
    }
}

impl fmt::Display for OptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of evaluating one instruction.
#[derive(Clone, PartialEq, Debug)]
pub struct Evaluation {
    /// What would happen.
    pub verdict: Verdict,
    /// The optimization class responsible (when the verdict is progress).
    pub kind: Option<OptKind>,
}

impl Evaluation {
    fn keep() -> Self {
        Evaluation {
            verdict: Verdict::Keep,
            kind: None,
        }
    }

    fn of(verdict: Verdict, kind: OptKind) -> Self {
        Evaluation {
            verdict,
            kind: Some(kind),
        }
    }
}

/// Runs the applicability checks for instruction `id` under `env` and, if
/// one holds, the corresponding action step. The graph is not modified.
pub fn evaluate(g: &Graph, env: &FactEnv, id: InstId) -> Evaluation {
    match g.inst(id).clone() {
        Inst::Const(_) | Inst::Param(_) | Inst::New { .. } | Inst::NewArray { .. } => {
            Evaluation::keep()
        }
        Inst::Phi { inputs } => eval_phi(g, env, id, &inputs),
        Inst::Binary { op, lhs, rhs } => eval_binary(g, env, op, lhs, rhs),
        Inst::Compare { op, lhs, rhs } => eval_compare(g, env, op, lhs, rhs),
        Inst::Not(x) => {
            let r = env.resolve_full(g, x);
            if let Some(b) = r.konst.and_then(ConstValue::as_bool) {
                return Evaluation::of(Verdict::Const(ConstValue::Bool(!b)), OptKind::ConstantFold);
            }
            if let Some(b) = env.stamp_of(g, x).as_bool_constant() {
                return Evaluation::of(
                    Verdict::Const(ConstValue::Bool(!b)),
                    OptKind::ConditionalElim,
                );
            }
            if let Inst::Not(y) = g.inst(r.id) {
                return Evaluation::of(Verdict::Alias(*y), OptKind::ConstantFold);
            }
            Evaluation::keep()
        }
        Inst::Neg(x) => {
            let r = env.resolve_full(g, x);
            if let Some(i) = r.konst.and_then(ConstValue::as_int) {
                return Evaluation::of(
                    Verdict::Const(ConstValue::Int(i.wrapping_neg())),
                    OptKind::ConstantFold,
                );
            }
            if let Inst::Neg(y) = g.inst(r.id) {
                return Evaluation::of(Verdict::Alias(*y), OptKind::ConstantFold);
            }
            Evaluation::keep()
        }
        Inst::InstanceOf { object, class } => {
            if let Stamp::Obj(s) = env.stamp_of(g, object) {
                if let Some(result) = try_fold_instanceof(&s, class) {
                    return Evaluation::of(
                        Verdict::Const(ConstValue::Bool(result)),
                        OptKind::ConditionalElim,
                    );
                }
            }
            Evaluation::keep()
        }
        Inst::LoadField { object, field } => {
            if let Some(syn) = env.read_virtual_field(g, object, field) {
                return Evaluation::of(syn_verdict(syn), OptKind::ScalarReplace);
            }
            if let Some(syn) = env.cached_field(object, field) {
                return Evaluation::of(syn_verdict(syn), OptKind::ReadElim);
            }
            Evaluation::keep()
        }
        Inst::StoreField { object, .. } => {
            if env.virtual_of(object).is_some() {
                return Evaluation::of(Verdict::Eliminated, OptKind::ScalarReplace);
            }
            Evaluation::keep()
        }
        Inst::ArrayLength(a) => {
            // alength(newarray n) == n.
            let r = env.resolve_full(g, a);
            if let Inst::NewArray { length } = g.inst(r.id) {
                return Evaluation::of(Verdict::Alias(*length), OptKind::ReadElim);
            }
            Evaluation::keep()
        }
        Inst::ArrayLoad { .. } | Inst::ArrayStore { .. } | Inst::Invoke { .. } => {
            Evaluation::keep()
        }
    }
}

fn syn_verdict(syn: Synonym) -> Verdict {
    match syn {
        Synonym::Const(c) => Verdict::Const(c),
        Synonym::Value(v) => Verdict::Alias(v),
    }
}

fn eval_phi(g: &Graph, env: &FactEnv, id: InstId, inputs: &[InstId]) -> Evaluation {
    // Copy propagation: a φ whose inputs all agree (ignoring
    // self-references through loop back edges) is that value.
    let mut rep: Option<Resolved> = None;
    for &input in inputs {
        let r = env.resolve_full(g, input);
        if r.id == id {
            continue; // self-reference
        }
        match &rep {
            None => rep = Some(r),
            Some(prev) => {
                let same = match (prev.konst, r.konst) {
                    (Some(a), Some(b)) => a == b,
                    (None, None) => prev.id == r.id,
                    _ => false,
                };
                if !same {
                    return Evaluation::keep();
                }
            }
        }
    }
    match rep {
        Some(Resolved { konst: Some(c), .. }) => {
            Evaluation::of(Verdict::Const(c), OptKind::CopyProp)
        }
        Some(Resolved { id: v, .. }) => Evaluation::of(Verdict::Alias(v), OptKind::CopyProp),
        None => Evaluation::keep(), // degenerate: only self-references
    }
}

fn eval_binary(g: &Graph, env: &FactEnv, op: BinOp, lhs: InstId, rhs: InstId) -> Evaluation {
    let rl = env.resolve_full(g, lhs);
    let rr = env.resolve_full(g, rhs);
    let cl = rl.konst.and_then(ConstValue::as_int);
    let cr = rr.konst.and_then(ConstValue::as_int);

    // Constant folding.
    if let (Some(a), Some(b)) = (cl, cr) {
        if let Some(v) = fold_binop(op, a, b) {
            return Evaluation::of(Verdict::Const(ConstValue::Int(v)), OptKind::ConstantFold);
        }
        return Evaluation::keep(); // division by constant zero: keep the trap
    }

    // Same-operand identities.
    if rl.id == rr.id && cl.is_none() {
        match op {
            BinOp::Sub | BinOp::Xor => {
                return Evaluation::of(Verdict::Const(ConstValue::Int(0)), OptKind::StrengthReduce)
            }
            BinOp::And | BinOp::Or => {
                return Evaluation::of(Verdict::Alias(rl.id), OptKind::StrengthReduce)
            }
            _ => {}
        }
    }

    // Identities with one constant operand. Normalize the constant to the
    // right for commutative operators.
    let (x, c, const_on_left) = match (cl, cr) {
        (None, Some(c)) => (rl.id, Some(c), false),
        (Some(c), None) => (rr.id, Some(c), true),
        _ => (rl.id, None, false),
    };
    if let Some(c) = c {
        if const_on_left && !op.is_commutative() {
            // Only a few left-constant identities are useful.
            match (op, c) {
                (BinOp::Sub, 0) => {
                    // 0 - x: leave to the canonical Neg? Keep simple: no-op.
                }
                (BinOp::Shl | BinOp::Shr | BinOp::UShr, 0) => {
                    return Evaluation::of(
                        Verdict::Const(ConstValue::Int(0)),
                        OptKind::StrengthReduce,
                    );
                }
                (BinOp::Div | BinOp::Rem, 0) => {
                    // 0 / x traps when x == 0; only fold when x is known
                    // non-zero.
                    if let Stamp::Int(range) = env.stamp_of(g, x) {
                        if !range.contains(0) {
                            return Evaluation::of(
                                Verdict::Const(ConstValue::Int(0)),
                                OptKind::ConditionalElim,
                            );
                        }
                    }
                }
                _ => {}
            }
            return Evaluation::keep();
        }
        match (op, c) {
            (BinOp::Add | BinOp::Sub, 0)
            | (BinOp::Mul | BinOp::Div, 1)
            | (BinOp::Or | BinOp::Xor, 0)
            | (BinOp::And, -1)
            | (BinOp::Shl | BinOp::Shr | BinOp::UShr, 0) => {
                return Evaluation::of(Verdict::Alias(x), OptKind::StrengthReduce)
            }
            (BinOp::Mul | BinOp::And, 0) => {
                return Evaluation::of(Verdict::Const(ConstValue::Int(0)), OptKind::StrengthReduce)
            }
            (BinOp::Rem, 1) => {
                return Evaluation::of(Verdict::Const(ConstValue::Int(0)), OptKind::StrengthReduce)
            }
            (BinOp::Mul, c) if is_power_of_two(c) => {
                return Evaluation::of(
                    Verdict::Rewrite {
                        op: BinOp::Shl,
                        lhs: x,
                        rhs: ConstValue::Int(c.trailing_zeros() as i64),
                    },
                    OptKind::StrengthReduce,
                )
            }
            // x / 2^k == x >> k and x % 2^k == x & (2^k − 1) only hold
            // for non-negative x (Figure 3 of the paper relies on the
            // stamp-guarded division reduction).
            (BinOp::Div, c) if is_power_of_two(c) && is_non_negative(env, g, x) => {
                return Evaluation::of(
                    Verdict::Rewrite {
                        op: BinOp::Shr,
                        lhs: x,
                        rhs: ConstValue::Int(c.trailing_zeros() as i64),
                    },
                    OptKind::StrengthReduce,
                );
            }
            (BinOp::Rem, c) if is_power_of_two(c) && is_non_negative(env, g, x) => {
                return Evaluation::of(
                    Verdict::Rewrite {
                        op: BinOp::And,
                        lhs: x,
                        rhs: ConstValue::Int(c - 1),
                    },
                    OptKind::StrengthReduce,
                );
            }
            _ => {}
        }
    }
    Evaluation::keep()
}

fn eval_compare(g: &Graph, env: &FactEnv, op: CmpOp, lhs: InstId, rhs: InstId) -> Evaluation {
    let rl = env.resolve_full(g, lhs);
    let rr = env.resolve_full(g, rhs);

    // Constant operands.
    if let (Some(a), Some(b)) = (rl.konst, rr.konst) {
        if let Some(result) = fold_const_cmp(op, a, b) {
            return Evaluation::of(
                Verdict::Const(ConstValue::Bool(result)),
                OptKind::ConstantFold,
            );
        }
    }

    // x op x.
    if rl.id == rr.id && rl.konst.is_none() {
        let result = match op {
            CmpOp::Eq | CmpOp::Le | CmpOp::Ge => true,
            CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => false,
        };
        return Evaluation::of(
            Verdict::Const(ConstValue::Bool(result)),
            OptKind::ConditionalElim,
        );
    }

    // Stamp-based folding — the conditional-elimination AC.
    let ls = env.stamp_of(g, lhs);
    let rs = env.stamp_of(g, rhs);
    if let Some(result) = try_fold_cmp(op, &ls, &rs) {
        return Evaluation::of(
            Verdict::Const(ConstValue::Bool(result)),
            OptKind::ConditionalElim,
        );
    }
    Evaluation::keep()
}

fn fold_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::UShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
    })
}

fn fold_const_cmp(op: CmpOp, a: ConstValue, b: ConstValue) -> Option<bool> {
    match (a, b) {
        (ConstValue::Int(x), ConstValue::Int(y)) => Some(op.eval_int(x, y)),
        (ConstValue::Bool(x), ConstValue::Bool(y)) => match op {
            CmpOp::Eq => Some(x == y),
            CmpOp::Ne => Some(x != y),
            _ => None,
        },
        (x, y) if x.is_null() && y.is_null() => match op {
            CmpOp::Eq => Some(true),
            CmpOp::Ne => Some(false),
            _ => None,
        },
        _ => None,
    }
}

fn is_power_of_two(c: i64) -> bool {
    c > 0 && (c & (c - 1)) == 0
}

fn is_non_negative(env: &FactEnv, g: &Graph, x: InstId) -> bool {
    match env.stamp_of(g, x) {
        Stamp::Int(r) => r.lo >= 0,
        _ => false,
    }
}

/// Updates `env` with the consequences of having processed instruction
/// `id` whose evaluation produced `eval`. This covers both the bookkeeping
/// of progress verdicts (new synonyms, virtual-field writes) and the
/// memory effects of kept instructions (cache fills, cache kills,
/// escape-driven materialization).
pub fn record_effects(g: &Graph, env: &mut FactEnv, id: InstId, eval: &Evaluation) {
    match &eval.verdict {
        Verdict::Const(c) => env.set_synonym(id, Synonym::Const(*c)),
        Verdict::Alias(v) => {
            if env.resolve(*v).id != id {
                env.set_synonym(id, Synonym::Value(*v));
            }
        }
        Verdict::Rewrite { .. } => {
            // Value-preserving replacement; no new facts.
        }
        Verdict::Eliminated => {
            if let Inst::StoreField {
                object,
                field,
                value,
            } = g.inst(id)
            {
                let syn = resolved_synonym(g, env, *value);
                env.write_virtual_field(*object, *field, syn);
            }
        }
        Verdict::Keep => match g.inst(id).clone() {
            Inst::New { class } => {
                // The caller decides whether the allocation is virtual;
                // default behaviour: not virtual. (The simulation tier
                // seeds virtual objects explicitly.)
                let _ = class;
            }
            Inst::LoadField { object, field } => {
                env.cache_field(object, field, Synonym::Value(id));
            }
            Inst::StoreField {
                object,
                field,
                value,
            } => {
                env.kill_field_aliases(object, field);
                let syn = resolved_synonym(g, env, value);
                env.cache_field(object, field, syn);
                // The stored reference escapes into the heap.
                if g.ty(value).is_reference() {
                    env.materialize(value);
                }
            }
            Inst::Invoke { args } => {
                env.kill_all_fields();
                for a in args {
                    if g.ty(a).is_reference() {
                        env.materialize(a);
                    }
                }
            }
            // A reference flowing into a φ escapes the tracked scope:
            // writes through the φ alias would otherwise be missed by
            // virtual-object reasoning.
            Inst::Phi { inputs } => {
                for input in inputs {
                    if g.ty(input).is_reference() {
                        env.materialize(input);
                    }
                }
            }
            _ => {}
        },
    }
}

fn resolved_synonym(g: &Graph, env: &FactEnv, v: InstId) -> Synonym {
    let r = env.resolve_full(g, v);
    match r.konst {
        Some(c) => Synonym::Const(c),
        None => Synonym::Value(r.id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, GraphBuilder, Type};
    use std::sync::Arc;

    fn build_binary(op: BinOp) -> (Graph, InstId, InstId, InstId) {
        let mut b = GraphBuilder::new("t", &[Type::Int, Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let y = b.param(1);
        let r = b.binop(op, x, y);
        b.ret(Some(r));
        (b.finish(), x, y, r)
    }

    fn with_consts(env: &mut FactEnv, pairs: &[(InstId, i64)]) {
        for &(v, c) in pairs {
            env.set_synonym(v, Synonym::Const(ConstValue::Int(c)));
        }
    }

    #[test]
    fn folds_figure1_addition() {
        // 2 + 0 → 2 (Figure 1 of the paper).
        let (g, x, y, r) = build_binary(BinOp::Add);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(x, 2), (y, 0)]);
        let e = evaluate(&g, &env, r);
        assert_eq!(e.verdict, Verdict::Const(ConstValue::Int(2)));
        assert_eq!(e.kind, Some(OptKind::ConstantFold));
    }

    #[test]
    fn add_zero_aliases() {
        let (g, _x, y, r) = build_binary(BinOp::Add);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(y, 0)]);
        let e = evaluate(&g, &env, r);
        match e.verdict {
            Verdict::Alias(v) => assert_eq!(v, g.param_values()[0]),
            v => panic!("unexpected {v:?}"),
        }
        assert_eq!(e.kind, Some(OptKind::StrengthReduce));
    }

    #[test]
    fn figure3_division_becomes_shift_with_stamp() {
        // Figure 3: x / φ where φ's synonym on one path is the constant 2.
        // Requires x ≥ 0 for the reduction.
        let (g, x, y, r) = build_binary(BinOp::Div);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(y, 2)]);
        // Without a non-negative stamp: no reduction.
        assert_eq!(evaluate(&g, &env, r).verdict, Verdict::Keep);
        env.set_stamp(x, Stamp::Int(dbds_analysis::IntRange::new(0, 1000)));
        let e = evaluate(&g, &env, r);
        assert_eq!(
            e.verdict,
            Verdict::Rewrite {
                op: BinOp::Shr,
                lhs: x,
                rhs: ConstValue::Int(1),
            }
        );
        assert_eq!(e.kind, Some(OptKind::StrengthReduce));
    }

    #[test]
    fn mul_power_of_two_always_shifts() {
        let (g, x, y, r) = build_binary(BinOp::Mul);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(y, 8)]);
        let e = evaluate(&g, &env, r);
        assert_eq!(
            e.verdict,
            Verdict::Rewrite {
                op: BinOp::Shl,
                lhs: x,
                rhs: ConstValue::Int(3),
            }
        );
    }

    #[test]
    fn rem_power_of_two_masks_when_non_negative() {
        let (g, x, y, r) = build_binary(BinOp::Rem);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(y, 16)]);
        env.set_stamp(x, Stamp::Int(dbds_analysis::IntRange::new(0, i64::MAX)));
        let e = evaluate(&g, &env, r);
        assert_eq!(
            e.verdict,
            Verdict::Rewrite {
                op: BinOp::And,
                lhs: x,
                rhs: ConstValue::Int(15),
            }
        );
    }

    #[test]
    fn div_by_zero_not_folded() {
        let (g, x, y, r) = build_binary(BinOp::Div);
        let mut env = FactEnv::new();
        with_consts(&mut env, &[(x, 10), (y, 0)]);
        assert_eq!(evaluate(&g, &env, r).verdict, Verdict::Keep);
    }

    #[test]
    fn x_minus_x_is_zero() {
        let mut b = GraphBuilder::new("t", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let r = b.sub(x, x);
        b.ret(Some(r));
        let g = b.finish();
        let env = FactEnv::new();
        assert_eq!(
            evaluate(&g, &env, r).verdict,
            Verdict::Const(ConstValue::Int(0))
        );
    }

    #[test]
    fn listing1_conditional_eliminates() {
        // p = 13 known; p > 12 folds to true.
        let mut b = GraphBuilder::new("ce", &[Type::Int], Arc::new(ClassTable::new()));
        let p = b.param(0);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, p, twelve);
        b.ret(None);
        let g = b.finish();
        let mut env = FactEnv::new();
        env.set_synonym(p, Synonym::Const(ConstValue::Int(13)));
        let e = evaluate(&g, &env, c);
        assert_eq!(e.verdict, Verdict::Const(ConstValue::Bool(true)));
    }

    #[test]
    fn stamp_based_compare_folds_as_conditional_elim() {
        let mut b = GraphBuilder::new("ce2", &[Type::Int], Arc::new(ClassTable::new()));
        let p = b.param(0);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, p, twelve);
        b.ret(None);
        let g = b.finish();
        let mut env = FactEnv::new();
        env.set_stamp(p, Stamp::Int(dbds_analysis::IntRange::new(i64::MIN, 0)));
        let e = evaluate(&g, &env, c);
        assert_eq!(e.verdict, Verdict::Const(ConstValue::Bool(false)));
        assert_eq!(e.kind, Some(OptKind::ConditionalElim));
    }

    #[test]
    fn phi_copy_propagation() {
        let mut b = GraphBuilder::new("cp", &[Type::Bool, Type::Int], Arc::new(ClassTable::new()));
        let c = b.param(0);
        let x = b.param(1);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, x], Type::Int);
        b.ret(Some(phi));
        let g = b.finish();
        let env = FactEnv::new();
        let e = evaluate(&g, &env, phi);
        assert_eq!(e.verdict, Verdict::Alias(x));
        assert_eq!(e.kind, Some(OptKind::CopyProp));
    }

    #[test]
    fn listing5_read_elimination() {
        // Read2 of a.x after Read1 of a.x with no intervening store.
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("re", &[Type::Ref(a)], Arc::new(t));
        let obj = b.param(0);
        let r1 = b.load(obj, fx);
        let r2 = b.load(obj, fx);
        b.ret(Some(r2));
        let g = b.finish();
        let mut env = FactEnv::new();
        let e1 = evaluate(&g, &env, r1);
        assert_eq!(e1.verdict, Verdict::Keep);
        record_effects(&g, &mut env, r1, &e1);
        let e2 = evaluate(&g, &env, r2);
        assert_eq!(e2.verdict, Verdict::Alias(r1));
        assert_eq!(e2.kind, Some(OptKind::ReadElim));
    }

    #[test]
    fn store_forwards_to_load_and_kills_aliases() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("sf", &[Type::Ref(a), Type::Ref(a)], Arc::new(t));
        let o1 = b.param(0);
        let o2 = b.param(1);
        let l1 = b.load(o1, fx);
        let five = b.iconst(5);
        let st = b.store(o2, fx, five);
        let l1b = b.load(o1, fx);
        let l2 = b.load(o2, fx);
        b.ret(Some(l2));
        let g = b.finish();
        let mut env = FactEnv::new();
        for id in [l1, five, st] {
            let e = evaluate(&g, &env, id);
            record_effects(&g, &mut env, id, &e);
        }
        // o1.x may have been clobbered by the store to o2.x (may-alias).
        assert_eq!(evaluate(&g, &env, l1b).verdict, Verdict::Keep);
        // o2.x is exactly the stored constant.
        assert_eq!(
            evaluate(&g, &env, l2).verdict,
            Verdict::Const(ConstValue::Int(5))
        );
    }

    #[test]
    fn invoke_kills_read_cache() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("ik", &[Type::Ref(a)], Arc::new(t));
        let obj = b.param(0);
        let l1 = b.load(obj, fx);
        let call = b.invoke(vec![obj]);
        let l2 = b.load(obj, fx);
        b.ret(Some(l2));
        let g = b.finish();
        let mut env = FactEnv::new();
        for id in [l1, call] {
            let e = evaluate(&g, &env, id);
            record_effects(&g, &mut env, id, &e);
        }
        assert_eq!(evaluate(&g, &env, l2).verdict, Verdict::Keep);
    }

    #[test]
    fn listing3_pea_load_from_virtual() {
        // p = new A(0); return p.x → 0.
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("pea", &[], Arc::new(t));
        let alloc = b.new_object(a);
        let load = b.load(alloc, fx);
        b.ret(Some(load));
        let g = b.finish();
        let mut env = FactEnv::new();
        env.add_virtual(alloc, a);
        let e = evaluate(&g, &env, load);
        assert_eq!(e.verdict, Verdict::Const(ConstValue::Int(0)));
        assert_eq!(e.kind, Some(OptKind::ScalarReplace));
    }

    #[test]
    fn store_to_virtual_eliminated_and_forwarded() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("pea2", &[Type::Int], Arc::new(t));
        let x = b.param(0);
        let alloc = b.new_object(a);
        let st = b.store(alloc, fx, x);
        let load = b.load(alloc, fx);
        b.ret(Some(load));
        let g = b.finish();
        let mut env = FactEnv::new();
        env.add_virtual(alloc, a);
        let e = evaluate(&g, &env, st);
        assert_eq!(e.verdict, Verdict::Eliminated);
        record_effects(&g, &mut env, st, &e);
        assert_eq!(evaluate(&g, &env, load).verdict, Verdict::Alias(x));
    }

    #[test]
    fn instanceof_folds_on_fresh_allocation() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let other = t.add_class("B");
        let mut b = GraphBuilder::new("io", &[], Arc::new(t));
        let alloc = b.new_object(a);
        let ta = b.instance_of(alloc, a);
        let tb = b.instance_of(alloc, other);
        b.ret(Some(ta));
        let g = b.finish();
        let env = FactEnv::new();
        assert_eq!(
            evaluate(&g, &env, ta).verdict,
            Verdict::Const(ConstValue::Bool(true))
        );
        assert_eq!(
            evaluate(&g, &env, tb).verdict,
            Verdict::Const(ConstValue::Bool(false))
        );
    }

    #[test]
    fn alength_of_newarray_aliases_length() {
        let mut b = GraphBuilder::new("al", &[Type::Int], Arc::new(ClassTable::new()));
        let n = b.param(0);
        let arr = b.new_array(n);
        let len = b.alength(arr);
        b.ret(Some(len));
        let g = b.finish();
        let env = FactEnv::new();
        assert_eq!(evaluate(&g, &env, len).verdict, Verdict::Alias(n));
    }
}
