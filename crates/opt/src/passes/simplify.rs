//! Control-flow simplification: degenerate φs and straight-line block
//! chains left behind by branch folding and duplication.

use dbds_ir::{Graph, Inst, InstId, Terminator};

/// Replaces φs in single-predecessor blocks with their only input.
/// Returns `true` when anything changed.
pub fn remove_single_input_phis(g: &mut Graph) -> bool {
    let mut changed = false;
    for b in g.blocks().collect::<Vec<_>>() {
        if g.preds(b).len() != 1 {
            continue;
        }
        let phis: Vec<InstId> = g.phis(b).to_vec();
        for phi in phis {
            let input = match g.inst(phi) {
                Inst::Phi { inputs } => inputs[0],
                _ => unreachable!(),
            };
            g.replace_all_uses(phi, input);
            g.remove_inst(phi);
            changed = true;
        }
    }
    changed
}

/// Merges blocks connected by a unique jump edge: when `b` ends in
/// `jump s`, `s`'s only predecessor is `b`, and `s` has no φs, `s` is
/// folded into `b`. Returns `true` when anything changed.
pub fn merge_straightline_blocks(g: &mut Graph) -> bool {
    let mut changed = false;
    loop {
        let mut merged = false;
        for b in g.blocks().collect::<Vec<_>>() {
            let target = match g.terminator(b) {
                Terminator::Jump { target } => *target,
                _ => continue,
            };
            if target == b || target == g.entry() {
                continue;
            }
            if g.preds(target) != [b] || !g.phis(target).is_empty() {
                continue;
            }
            g.merge_block_into_pred(target, b);
            merged = true;
            changed = true;
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Runs both simplifications to a fixpoint.
pub fn simplify_cfg(g: &mut Graph) -> bool {
    let mut changed = false;
    loop {
        let a = remove_single_input_phis(g);
        let b = merge_straightline_blocks(g);
        if !(a || b) {
            break;
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, GraphBuilder, Type, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn single_input_phi_is_replaced() {
        let mut b = GraphBuilder::new("p1", &[Type::Int], empty_table());
        let x = b.param(0);
        let b1 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.ret(None);
        let mut g = b.finish();
        // Manually create a single-input phi in b1.
        let phi = g.append_phi(b1, vec![x], Type::Int);
        g.set_terminator(b1, Terminator::Return { value: Some(phi) });
        assert!(remove_single_input_phis(&mut g));
        verify(&g).unwrap();
        assert!(matches!(
            g.terminator(b1),
            Terminator::Return { value: Some(v) } if *v == x
        ));
    }

    #[test]
    fn chains_collapse_into_one_block() {
        let mut b = GraphBuilder::new("ch", &[Type::Int], empty_table());
        let x = b.param(0);
        let (b1, b2, b3) = (b.new_block(), b.new_block(), b.new_block());
        let one = b.iconst(1);
        b.jump(b1);
        b.switch_to(b1);
        let a1 = b.add(x, one);
        b.jump(b2);
        b.switch_to(b2);
        let a2 = b.add(a1, one);
        b.jump(b3);
        b.switch_to(b3);
        let a3 = b.add(a2, one);
        b.ret(Some(a3));
        let mut g = b.finish();
        assert!(merge_straightline_blocks(&mut g));
        verify(&g).unwrap();
        assert_eq!(g.reachable_blocks().len(), 1);
        assert_eq!(execute(&g, &[Value::Int(0)]).outcome, Ok(Value::Int(3)));
    }

    #[test]
    fn merge_respects_multiple_preds() {
        // A real merge block must not be folded into one predecessor.
        let mut b = GraphBuilder::new("m", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        let mut g = b.finish();
        assert!(!simplify_cfg(&mut g));
        assert_eq!(g.reachable_blocks().len(), 4);
    }

    #[test]
    fn self_loop_is_not_merged() {
        let mut b = GraphBuilder::new("s", &[], empty_table());
        let b1 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b1);
        let mut g = b.finish();
        // b1 jumps to itself; entry jumps to b1 but b1 has 2 preds.
        assert!(!merge_straightline_blocks(&mut g));
    }

    #[test]
    fn fold_then_simplify_leaves_minimal_graph() {
        // After branch folding a diamond degenerates to a chain.
        let mut b = GraphBuilder::new("fs", &[Type::Int], empty_table());
        let x = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        let t = b.bconst(true);
        b.branch(t, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let zero = b.iconst(0);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        let mut g = b.finish();
        g.fold_branch(g.entry(), true);
        super::super::dce::remove_unreachable_blocks(&mut g);
        assert!(simplify_cfg(&mut g));
        verify(&g).unwrap();
        assert_eq!(g.reachable_blocks().len(), 1);
        assert_eq!(execute(&g, &[Value::Int(9)]).outcome, Ok(Value::Int(9)));
    }
}
