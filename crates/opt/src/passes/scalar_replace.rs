//! Escape analysis and scalar replacement.
//!
//! Reproduces the effect of Graal's partial escape analysis (Stadler et
//! al., the paper's §2 "PEA" opportunity): allocations that do not escape
//! are dissolved — loads of their fields become the last stored value
//! (with φs inserted across control flow via [`SsaBuilder`]), stores are
//! deleted, identity comparisons and type tests fold, and the allocation
//! itself disappears.
//!
//! The *partial* aspect of PEA — objects escaping on only one path — is
//! delivered by code duplication, exactly as in the paper: after DBDS
//! duplicates the merge, the φ that made the object escape is gone and
//! this pass removes the allocation on the non-escaping path.

use crate::ssa_repair::SsaBuilder;
use dbds_analysis::reverse_postorder;
use dbds_ir::{BlockId, ClassId, CmpOp, ConstValue, FieldId, Graph, Inst, InstId, Type};
use std::collections::HashMap;

/// Loads and `(store, stored value)` pairs of one field of an allocation.
type FieldAccesses = (Vec<InstId>, Vec<(InstId, InstId)>);

/// One classified use of an allocation.
#[derive(Debug)]
enum AllocUse {
    Load {
        inst: InstId,
        field: FieldId,
    },
    Store {
        inst: InstId,
        field: FieldId,
        value: InstId,
    },
    Test {
        inst: InstId,
    },
}

/// Runs scalar replacement over all allocations of `g`. Returns the
/// number of allocations removed.
pub fn scalar_replace(g: &mut Graph) -> usize {
    let allocations: Vec<(InstId, ClassId)> = g
        .blocks()
        .flat_map(|b| g.block_insts(b).to_vec())
        .filter_map(|i| match g.inst(i) {
            Inst::New { class } if g.block_of(i).is_some() => Some((i, *class)),
            _ => None,
        })
        .collect();
    let mut removed = 0;
    for (alloc, class) in allocations {
        if g.block_of(alloc).is_none() {
            continue; // removed while handling an earlier allocation
        }
        if let Some(uses) = classify_uses(g, alloc) {
            replace_allocation(g, alloc, class, uses);
            removed += 1;
        }
    }
    removed
}

/// Classifies every use of `alloc`. Returns `None` when the object
/// escapes (or a use cannot be folded away).
fn classify_uses(g: &Graph, alloc: InstId) -> Option<Vec<AllocUse>> {
    let mut uses = Vec::new();
    for b in g.blocks() {
        for &i in g.block_insts(b) {
            let mut mentions = false;
            g.inst(i).for_each_input(|input| {
                if input == alloc {
                    mentions = true;
                }
            });
            if !mentions {
                continue;
            }
            match g.inst(i) {
                Inst::LoadField { object, field } if *object == alloc => {
                    uses.push(AllocUse::Load {
                        inst: i,
                        field: *field,
                    });
                }
                Inst::StoreField {
                    object,
                    field,
                    value,
                } if *object == alloc && *value != alloc => {
                    uses.push(AllocUse::Store {
                        inst: i,
                        field: *field,
                        value: *value,
                    });
                }
                Inst::InstanceOf { object, .. } if *object == alloc => {
                    uses.push(AllocUse::Test { inst: i });
                }
                Inst::Compare {
                    op: CmpOp::Eq | CmpOp::Ne,
                    lhs,
                    rhs,
                } => {
                    // Identity comparison folds when the other side is a
                    // null constant, a (different) allocation, or the
                    // object itself.
                    let other = if *lhs == alloc { *rhs } else { *lhs };
                    let foldable = other == alloc
                        || matches!(g.inst(other), Inst::Const(c) if c.is_null())
                        || matches!(g.inst(other), Inst::New { .. });
                    if foldable {
                        uses.push(AllocUse::Test { inst: i });
                    } else {
                        return None; // unknown reference: would survive
                    }
                }
                _ => return None, // any other use is an escape
            }
        }
        let mut escapes_via_term = false;
        g.terminator(b).for_each_input(|input| {
            if input == alloc {
                escapes_via_term = true; // returned
            }
        });
        if escapes_via_term {
            return None;
        }
    }
    Some(uses)
}

fn replace_allocation(g: &mut Graph, alloc: InstId, class: ClassId, uses: Vec<AllocUse>) {
    let alloc_block = g.block_of(alloc).expect("live allocation");
    let table = g.class_table().clone();

    // Group loads/stores per field.
    let mut fields: HashMap<FieldId, FieldAccesses> = HashMap::new();
    let mut tests = Vec::new();
    for u in uses {
        match u {
            AllocUse::Load { inst, field } => fields.entry(field).or_default().0.push(inst),
            AllocUse::Store { inst, field, value } => {
                fields.entry(field).or_default().1.push((inst, value))
            }
            AllocUse::Test { inst } => tests.push(inst),
        }
    }

    let rpo = reverse_postorder(g);
    for (field, (loads, stores)) in fields {
        let field_ty = table.field(field).ty;
        // The zero-initialized default value, materialized right after the
        // allocation point so it dominates every use.
        let zero = zero_const(field_ty);
        let alloc_pos = g
            .block_insts(alloc_block)
            .iter()
            .position(|&i| i == alloc)
            .expect("alloc in its block");
        let default = g.insert_inst(alloc_block, alloc_pos + 1, Inst::Const(zero), field_ty);

        // Per-block events in position order: the allocation acts as a
        // store of the default value.
        #[derive(Clone, Copy)]
        enum Event {
            Def(InstId), // value defined (store / alloc default)
            Use(InstId), // load to rewrite
        }
        let mut events: HashMap<BlockId, Vec<(usize, Event)>> = HashMap::new();
        events
            .entry(alloc_block)
            .or_default()
            .push((alloc_pos + 1, Event::Def(default)));
        for &(store, value) in &stores {
            let b = g.block_of(store).expect("live store");
            let pos = g
                .block_insts(b)
                .iter()
                .position(|&i| i == store)
                .expect("store in its block");
            events.entry(b).or_default().push((pos, Event::Def(value)));
        }
        for &load in &loads {
            let b = g.block_of(load).expect("live load");
            let pos = g
                .block_insts(b)
                .iter()
                .position(|&i| i == load)
                .expect("load in its block");
            events.entry(b).or_default().push((pos, Event::Use(load)));
        }
        for evs in events.values_mut() {
            evs.sort_by_key(|&(pos, _)| pos);
        }

        // End-of-block definitions for the SSA builder.
        let mut defs: HashMap<BlockId, InstId> = HashMap::new();
        for (&b, evs) in &events {
            let last_def = evs.iter().rev().find_map(|&(_, e)| match e {
                Event::Def(v) => Some(v),
                Event::Use(_) => None,
            });
            if let Some(v) = last_def {
                defs.insert(b, v);
            }
        }
        let mut ssa = SsaBuilder::new(field_ty, defs);

        // Rewrite loads in RPO so earlier replacements are visible when a
        // later stored value happens to be an earlier load.
        let mut replacements: Vec<(InstId, InstId)> = Vec::new();
        for &b in &rpo {
            let Some(evs) = events.get(&b) else { continue };
            let mut current: Option<InstId> = None;
            for &(_, e) in evs {
                match e {
                    Event::Def(v) => current = Some(v),
                    Event::Use(load) => {
                        let v = match current {
                            Some(v) => v,
                            None => ssa.value_at_start(g, b),
                        };
                        replacements.push((load, v));
                    }
                }
            }
        }
        // Apply the replacements. A replacement target can itself be a
        // load that was replaced earlier (store p.x, load p.x chains), so
        // chase through the already-applied map.
        let mut applied: HashMap<InstId, InstId> = HashMap::new();
        for (load, v) in replacements {
            let mut target = v;
            while let Some(&t) = applied.get(&target) {
                target = t;
            }
            debug_assert_ne!(target, load, "load cannot define its own field");
            g.replace_all_uses(load, target);
            g.remove_inst(load);
            applied.insert(load, target);
        }
        drop(ssa);
        for (store, _) in stores {
            g.remove_inst(store);
        }
    }

    // Fold identity tests and type tests.
    for test in tests {
        let result = match g.inst(test).clone() {
            Inst::InstanceOf { class: tested, .. } => tested == class,
            Inst::Compare { op, lhs, rhs } => {
                let other = if lhs == alloc { rhs } else { lhs };
                let eq = if other == alloc {
                    true // alloc == alloc
                } else {
                    // null or a different allocation: never identical.
                    false
                };
                match op {
                    CmpOp::Eq => eq,
                    CmpOp::Ne => !eq,
                    _ => unreachable!("classified as foldable test"),
                }
            }
            other => unreachable!("unexpected test instruction {other:?}"),
        };
        let b = g.block_of(test).expect("live test");
        let pos = g
            .block_insts(b)
            .iter()
            .position(|&i| i == test)
            .expect("test in its block");
        let c = g.insert_inst(b, pos, Inst::Const(ConstValue::Bool(result)), Type::Bool);
        g.replace_all_uses(test, c);
        g.remove_inst(test);
    }

    assert!(
        !g.has_uses(alloc),
        "allocation still used after scalar replacement"
    );
    g.remove_inst(alloc);
}

fn zero_const(ty: Type) -> ConstValue {
    match ty {
        Type::Int => ConstValue::Int(0),
        Type::Bool => ConstValue::Bool(false),
        Type::Ref(c) => ConstValue::Null(c),
        Type::Arr => ConstValue::NullArr,
        Type::Void => unreachable!("fields cannot be void"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, GraphBuilder, Value};
    use std::sync::Arc;

    fn point_table() -> (Arc<ClassTable>, ClassId, FieldId, FieldId) {
        let mut t = ClassTable::new();
        let c = t.add_class("P");
        let fx = t.add_field(c, "x", Type::Int);
        let fy = t.add_field(c, "y", Type::Int);
        (Arc::new(t), c, fx, fy)
    }

    #[test]
    fn straightline_allocation_dissolves() {
        let (t, c, fx, fy) = point_table();
        let mut b = GraphBuilder::new("s", &[Type::Int], t);
        let x = b.param(0);
        let p = b.new_object(c);
        b.store(p, fx, x);
        let l1 = b.load(p, fx); // = x
        let l2 = b.load(p, fy); // = 0 (default)
        let s = b.add(l1, l2);
        b.ret(Some(s));
        let mut g = b.finish();
        assert_eq!(scalar_replace(&mut g), 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(7)]).outcome, Ok(Value::Int(7)));
        // No allocation, loads or stores remain.
        assert!(!g
            .blocks()
            .any(|bl| g.block_insts(bl).iter().any(|&i| matches!(
                g.inst(i),
                Inst::New { .. } | Inst::LoadField { .. } | Inst::StoreField { .. }
            ))));
    }

    #[test]
    fn listing4_shape_after_duplication() {
        // Listing 4 of the paper: in the then branch the object is fresh,
        // `return p.x` becomes `return 0`.
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("pea", &[], t);
        let p = b.new_object(c);
        let l = b.load(p, fx);
        b.ret(Some(l));
        let mut g = b.finish();
        assert_eq!(scalar_replace(&mut g), 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[]).outcome, Ok(Value::Int(0)));
    }

    #[test]
    fn branch_stores_get_phi() {
        // if (c) p.x = 1 else p.x = 2; return p.x → φ(1,2)
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("br", &[Type::Bool], t);
        let cond = b.param(0);
        let p = b.new_object(c);
        let one = b.iconst(1);
        let two = b.iconst(2);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(cond, bt, bf, 0.5);
        b.switch_to(bt);
        b.store(p, fx, one);
        b.jump(bm);
        b.switch_to(bf);
        b.store(p, fx, two);
        b.jump(bm);
        b.switch_to(bm);
        let l = b.load(p, fx);
        b.ret(Some(l));
        let mut g = b.finish();
        assert_eq!(scalar_replace(&mut g), 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Bool(true)]).outcome, Ok(Value::Int(1)));
        assert_eq!(
            execute(&g, &[Value::Bool(false)]).outcome,
            Ok(Value::Int(2))
        );
        // A φ was inserted at the merge.
        assert_eq!(g.phis(bm).len(), 1);
    }

    #[test]
    fn escaping_objects_survive() {
        let (t, c, fx, _) = point_table();
        // Escape via invoke.
        let mut b = GraphBuilder::new("esc", &[], t.clone());
        let p = b.new_object(c);
        let _call = b.invoke(vec![p]);
        let l = b.load(p, fx);
        b.ret(Some(l));
        let mut g = b.finish();
        assert_eq!(scalar_replace(&mut g), 0);
        verify(&g).unwrap();

        // Escape via return.
        let mut b2 = GraphBuilder::new("esc2", &[], t.clone());
        let p2 = b2.new_object(c);
        b2.ret(Some(p2));
        let mut g2 = b2.finish();
        assert_eq!(scalar_replace(&mut g2), 0);

        // Escape by being stored into another object.
        let mut tt = ClassTable::new();
        let holder = tt.add_class("H");
        let inner = tt.add_class("I");
        let fref = tt.add_field(holder, "r", Type::Ref(inner));
        let mut b3 = GraphBuilder::new("esc3", &[Type::Ref(holder)], Arc::new(tt));
        let h = b3.param(0);
        let o = b3.new_object(inner);
        b3.store(h, fref, o);
        b3.ret(None);
        let mut g3 = b3.finish();
        assert_eq!(scalar_replace(&mut g3), 0);
    }

    #[test]
    fn phi_use_counts_as_escape() {
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("phiesc", &[Type::Bool, Type::Ref(c)], t);
        let cond = b.param(0);
        let other = b.param(1);
        let p = b.new_object(c);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(cond, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![p, other], Type::Ref(c));
        let l = b.load(phi, fx);
        b.ret(Some(l));
        let mut g = b.finish();
        // The φ use makes p escape — exactly the Listing 3 situation that
        // needs duplication first.
        assert_eq!(scalar_replace(&mut g), 0);
        verify(&g).unwrap();
    }

    #[test]
    fn identity_tests_fold() {
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("id", &[], t);
        let p = b.new_object(c);
        let q = b.new_object(c);
        let null = b.null(c);
        let e1 = b.cmp(CmpOp::Eq, p, null); // false
        let e2 = b.cmp(CmpOp::Ne, p, q); // true
        let e3 = b.cmp(CmpOp::Eq, p, p); // true
        let io = b.instance_of(p, c); // true
        let _ = (e1, e2, e3, io);
        let l = b.load(p, fx);
        let _ = q;
        b.ret(Some(l));
        let mut g = b.finish();
        let n = scalar_replace(&mut g);
        assert_eq!(n, 2);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[]).outcome, Ok(Value::Int(0)));
    }

    #[test]
    fn store_load_store_load_sequence() {
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("seq", &[Type::Int], t);
        let x = b.param(0);
        let p = b.new_object(c);
        b.store(p, fx, x);
        let l1 = b.load(p, fx);
        let dbl = b.add(l1, l1);
        b.store(p, fx, dbl);
        let l2 = b.load(p, fx);
        b.ret(Some(l2));
        let mut g = b.finish();
        assert_eq!(scalar_replace(&mut g), 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(3)]).outcome, Ok(Value::Int(6)));
    }

    #[test]
    fn loop_carried_field_gets_phi() {
        // p.x starts at 0; loop adds 1 each iteration; return p.x.
        let (t, c, fx, _) = point_table();
        let mut b = GraphBuilder::new("loop", &[Type::Int], t);
        let n = b.param(0);
        let one = b.iconst(1);
        let zero = b.iconst(0);
        let p = b.new_object(c);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        let cur = b.load(p, fx);
        let next = b.add(cur, one);
        b.store(p, fx, next);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let cond = b.cmp(CmpOp::Lt, i, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        let result = b.load(p, fx);
        b.ret(Some(result));
        let mut g = b.finish();
        // Fix the loop counter phi's back-edge input.
        let iplus = g.append_inst(
            body,
            Inst::Binary {
                op: dbds_ir::BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = iplus;
        }
        verify(&g).unwrap();
        assert_eq!(scalar_replace(&mut g), 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(5)));
        assert_eq!(execute(&g, &[Value::Int(0)]).outcome, Ok(Value::Int(0)));
    }
}
