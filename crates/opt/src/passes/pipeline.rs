//! The full optimization pipeline: canonicalize → scalar-replace → DCE →
//! CFG simplify, iterated to a fixpoint.
//!
//! This is the "set of selected optimizations" the paper's backtracking
//! baseline applies after every tentative duplication (Algorithm 1), and
//! the cleanup the DBDS optimization tier runs after performing its
//! selected duplications.

use crate::passes::canonicalize::{canonicalize, CanonStats};
use crate::passes::dce::remove_dead_code;
use crate::passes::gvn::global_value_numbering;
use crate::passes::scalar_replace::scalar_replace;
use crate::passes::simplify::simplify_cfg;
use dbds_analysis::AnalysisCache;
use dbds_ir::Graph;

/// Upper bound on fixpoint rounds (each round is itself monotone, so this
/// is a safety net, not a tuning knob).
const MAX_ROUNDS: usize = 10;

/// Aggregate statistics of a full optimization run.
#[derive(Clone, Debug, Default)]
pub struct OptimizeStats {
    /// Rounds until fixpoint.
    pub rounds: usize,
    /// Accumulated canonicalization statistics.
    pub canon: CanonStats,
    /// Allocations removed by scalar replacement.
    pub scalar_replaced: usize,
    /// Whether anything changed at all.
    pub changed: bool,
}

/// Runs a single round of the pipeline (no fixpoint iteration). The DBDS
/// phase uses this as the cheap *partial* optimization step between
/// duplication iterations (§4.3 applies action steps locally rather than
/// re-optimizing the world).
pub fn optimize_once(g: &mut Graph, cache: &mut AnalysisCache) -> OptimizeStats {
    let mut stats = OptimizeStats {
        rounds: 1,
        ..OptimizeStats::default()
    };
    let c = canonicalize(g, cache);
    let gvn = global_value_numbering(g, cache);
    let sr = scalar_replace(g);
    let dce = remove_dead_code(g);
    let simp = simplify_cfg(g);
    stats.changed = c.changed() || gvn > 0 || sr > 0 || dce || simp;
    stats.canon = c;
    stats.scalar_replaced = sr;
    stats
}

/// Optimizes `g` to a fixpoint with the §2 optimization set.
pub fn optimize_full(g: &mut Graph, cache: &mut AnalysisCache) -> OptimizeStats {
    let mut stats = OptimizeStats::default();
    for round in 0..MAX_ROUNDS {
        stats.rounds = round + 1;
        let c = canonicalize(g, cache);
        let gvn = global_value_numbering(g, cache);
        let sr = scalar_replace(g);
        let dce = remove_dead_code(g);
        let simp = simplify_cfg(g);
        let changed = c.changed() || gvn > 0 || sr > 0 || dce || simp;
        stats.canon.merge(&c);
        stats.scalar_replaced += sr;
        stats.changed |= changed;
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
    use std::sync::Arc;

    #[test]
    fn pipeline_reaches_fixpoint_on_figure1_after_duplication_shape() {
        // The already-duplicated Figure 1b: two straightline returns.
        let mut b = GraphBuilder::new("f1b", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let two = b.iconst(2);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let s1 = b.add(two, x);
        b.ret(Some(s1));
        b.switch_to(bf);
        let s2 = b.add(two, zero); // constant-folds to 2 (Figure 1c)
        b.ret(Some(s2));
        let mut g = b.finish();
        let stats = optimize_full(&mut g, &mut AnalysisCache::new());
        assert!(stats.changed);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-1)]).outcome, Ok(Value::Int(2)));
        // The false branch now returns the constant 2 directly.
        assert!(matches!(
            g.terminator(bf),
            dbds_ir::Terminator::Return { value: Some(v) }
                if matches!(g.inst(*v), dbds_ir::Inst::Const(dbds_ir::ConstValue::Int(2)))
        ));
    }

    #[test]
    fn chained_opportunities_need_multiple_rounds() {
        // Scalar replacement exposes constants that canonicalization folds
        // in the next round, which lets DCE strip the rest.
        let mut t = ClassTable::new();
        let cls = t.add_class("Box");
        let fv = t.add_field(cls, "v", Type::Int);
        let mut b = GraphBuilder::new("ch", &[], Arc::new(t));
        let p = b.new_object(cls);
        let five = b.iconst(5);
        b.store(p, fv, five);
        let l = b.load(p, fv);
        let three = b.iconst(3);
        let s = b.add(l, three); // 8 after folding
        b.ret(Some(s));
        let mut g = b.finish();
        let stats = optimize_full(&mut g, &mut AnalysisCache::new());
        assert_eq!(stats.scalar_replaced, 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[]).outcome, Ok(Value::Int(8)));
        // Everything folded to `return 8`.
        assert_eq!(g.reachable_blocks().len(), 1);
        let kinds: Vec<_> = g
            .block_insts(g.entry())
            .iter()
            .map(|&i| g.inst(i).kind())
            .collect();
        assert!(kinds.iter().all(|k| *k == dbds_ir::InstKind::Const));
    }

    #[test]
    fn idempotent_on_optimized_graph() {
        let mut b = GraphBuilder::new("idem", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        let mut g = b.finish();
        let s1 = optimize_full(&mut g, &mut AnalysisCache::new());
        assert!(!s1.changed);
        assert_eq!(s1.rounds, 1);
    }
}
