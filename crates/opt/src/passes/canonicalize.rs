//! Global canonicalization: the real (mutating) consumer of the
//! applicability checks.
//!
//! Walks the dominator tree depth first, carrying a [`FactEnv`]. Within a
//! block every instruction is [`evaluate`]d and progress verdicts are
//! applied to the graph; branch conditions that become known constants are
//! folded (conditional elimination of the branch itself). Condition
//! refinements are pushed into branch successors that are only reachable
//! through that branch edge — this is the "depth first traversal of the
//! true branch knows `(a != null)` holds" scheme of §4.1.
//!
//! Flow-sensitive memory facts (the read-elimination cache, virtual
//! objects) propagate only along unique-predecessor edges; flow-insensitive
//! facts (synonyms, dominating-condition stamps) propagate to all dominated
//! blocks.

use crate::env::FactEnv;
use crate::evaluate::{evaluate, record_effects, OptKind, Verdict};
use dbds_analysis::{AnalysisCache, DomTree};
use dbds_ir::{BlockId, ConstValue, Graph, Inst, InstId, Terminator, Type};
use std::collections::HashMap;

/// Statistics of one canonicalization run.
#[derive(Clone, Debug, Default)]
pub struct CanonStats {
    /// Progress verdicts applied, per optimization class.
    pub applied: HashMap<OptKind, usize>,
    /// Branches folded to jumps.
    pub branch_folds: usize,
}

impl CanonStats {
    /// Total number of applied rewrites, including branch folds.
    pub fn total(&self) -> usize {
        self.applied.values().sum::<usize>() + self.branch_folds
    }

    /// Returns `true` when the run changed the graph.
    pub fn changed(&self) -> bool {
        self.total() > 0
    }

    /// Accumulates another run's statistics.
    pub fn merge(&mut self, other: &CanonStats) {
        for (k, n) in &other.applied {
            *self.applied.entry(*k).or_insert(0) += n;
        }
        self.branch_folds += other.branch_folds;
    }
}

/// A pool of materialized constants, all placed at the top of the entry
/// block so that they dominate every use.
pub(crate) struct ConstPool {
    pool: HashMap<ConstValue, InstId>,
}

impl ConstPool {
    pub(crate) fn new() -> Self {
        ConstPool {
            pool: HashMap::new(),
        }
    }

    /// Returns an instruction producing `c`, creating one if needed.
    pub(crate) fn get(&mut self, g: &mut Graph, c: ConstValue) -> InstId {
        if let Some(&id) = self.pool.get(&c) {
            if g.block_of(id).is_some() {
                return id;
            }
        }
        let at = g.param_values().len();
        let id = g.insert_inst(g.entry(), at, Inst::Const(c), c.ty());
        self.pool.insert(c, id);
        id
    }
}

/// Runs one canonicalization pass over `g`, pulling the dominator tree
/// through `cache`.
pub fn canonicalize(g: &mut Graph, cache: &mut AnalysisCache) -> CanonStats {
    let dt = cache.domtree(g);
    let mut stats = CanonStats::default();
    let mut pool = ConstPool::new();
    walk(g, &dt, g.entry(), FactEnv::new(), &mut stats, &mut pool);
    stats
}

fn walk(
    g: &mut Graph,
    dt: &DomTree,
    b: BlockId,
    mut env: FactEnv,
    stats: &mut CanonStats,
    pool: &mut ConstPool,
) {
    process_block(g, b, &mut env, stats, pool);

    // Fold the terminator if its condition is statically known.
    if let Terminator::Branch { cond, .. } = g.terminator(b) {
        let cond = *cond;
        let known = env
            .resolve_full(g, cond)
            .konst
            .and_then(ConstValue::as_bool)
            .or_else(|| env.stamp_of(g, cond).as_bool_constant());
        if let Some(t) = known {
            g.fold_branch(b, t);
            stats.branch_folds += 1;
        }
    }

    for &s in dt.children(b) {
        let preds = g.preds(s);
        if preds == [b] {
            let mut child_env = env.clone();
            if let Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                ..
            } = g.terminator(b)
            {
                let (cond, then_bb, else_bb) = (*cond, *then_bb, *else_bb);
                if s == then_bb {
                    let _ = child_env.assume_condition(g, cond, true);
                } else if s == else_bb {
                    let _ = child_env.assume_condition(g, cond, false);
                }
            }
            walk(g, dt, s, child_env, stats, pool);
        } else {
            walk(g, dt, s, env.clone_pure(), stats, pool);
        }
    }
}

/// Evaluates and rewrites the instructions of one block under `env`.
pub(crate) fn process_block(
    g: &mut Graph,
    b: BlockId,
    env: &mut FactEnv,
    stats: &mut CanonStats,
    pool: &mut ConstPool,
) {
    let snapshot: Vec<InstId> = g.block_insts(b).to_vec();
    for id in snapshot {
        if g.block_of(id) != Some(b) {
            continue; // removed by an earlier rewrite
        }
        let eval = evaluate(g, env, id);
        record_effects(g, env, id, &eval);
        if let Some(kind) = eval.kind {
            if eval.verdict.is_progress() {
                *stats.applied.entry(kind).or_insert(0) += 1;
            }
        }
        match eval.verdict {
            Verdict::Keep => {}
            Verdict::Const(c) => {
                let cid = pool.get(g, c);
                g.replace_all_uses(id, cid);
                g.remove_inst(id);
            }
            Verdict::Alias(v) => {
                g.replace_all_uses(id, v);
                g.remove_inst(id);
            }
            Verdict::Rewrite { op, lhs, rhs } => {
                let cid = pool.get(g, rhs);
                let pos = g
                    .block_insts(b)
                    .iter()
                    .position(|&i| i == id)
                    .expect("inst in its own block");
                let new = g.insert_inst(b, pos, Inst::Binary { op, lhs, rhs: cid }, Type::Int);
                g.replace_all_uses(id, new);
                g.remove_inst(id);
            }
            Verdict::Eliminated => {
                g.remove_inst(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn folds_constants_through_straightline_code() {
        let mut b = GraphBuilder::new("cf", &[], empty_table());
        let two = b.iconst(2);
        let three = b.iconst(3);
        let sum = b.add(two, three); // 5
        let sq = b.mul(sum, sum); // 25
        b.ret(Some(sq));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert!(stats.applied[&OptKind::ConstantFold] >= 2);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[]).outcome, Ok(Value::Int(25)));
        // The returned value is now a constant.
        match g.terminator(g.entry()) {
            Terminator::Return { value: Some(v) } => {
                assert!(matches!(g.inst(*v), Inst::Const(ConstValue::Int(25))));
            }
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn eliminates_dominated_condition() {
        // if (x > 10) { if (x > 5) return 1 else return 2 } return 3
        // The inner condition is implied by the outer one.
        let mut b = GraphBuilder::new("ce", &[Type::Int], empty_table());
        let x = b.param(0);
        let ten = b.iconst(10);
        let five = b.iconst(5);
        let outer = b.cmp(CmpOp::Gt, x, ten);
        let (bt, belse, binner_t, binner_f) =
            (b.new_block(), b.new_block(), b.new_block(), b.new_block());
        b.branch(outer, bt, belse, 0.5);
        b.switch_to(bt);
        let inner = b.cmp(CmpOp::Gt, x, five);
        b.branch(inner, binner_t, binner_f, 0.5);
        b.switch_to(binner_t);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(binner_f);
        let two = b.iconst(2);
        b.ret(Some(two));
        b.switch_to(belse);
        let three = b.iconst(3);
        b.ret(Some(three));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert!(stats.applied.contains_key(&OptKind::ConditionalElim));
        assert_eq!(stats.branch_folds, 1);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(20)]).outcome, Ok(Value::Int(1)));
        assert_eq!(execute(&g, &[Value::Int(0)]).outcome, Ok(Value::Int(3)));
        // The inner branch is gone.
        assert!(matches!(g.terminator(bt), Terminator::Jump { .. }));
    }

    #[test]
    fn null_check_eliminated_in_guarded_branch() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("nc", &[Type::Ref(a)], Arc::new(t));
        let obj = b.param(0);
        let null = b.null(a);
        let is_null = b.cmp(CmpOp::Eq, obj, null);
        let (bnull, bok, binner_null, bread) =
            (b.new_block(), b.new_block(), b.new_block(), b.new_block());
        b.branch(is_null, bnull, bok, 0.1);
        b.switch_to(bnull);
        let zero = b.iconst(0);
        b.ret(Some(zero));
        b.switch_to(bok);
        // A second identical null check: should fold to false.
        let is_null2 = b.cmp(CmpOp::Eq, obj, null);
        b.branch(is_null2, binner_null, bread, 0.1);
        b.switch_to(binner_null);
        let m1 = b.iconst(-1);
        b.ret(Some(m1));
        b.switch_to(bread);
        let v = b.load(obj, fx);
        b.ret(Some(v));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert!(stats.branch_folds >= 1);
        verify(&g).unwrap();
        assert!(matches!(g.terminator(bok), Terminator::Jump { target } if *target == bread));
    }

    #[test]
    fn read_elimination_within_extended_block() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("re", &[Type::Ref(a)], Arc::new(t));
        let obj = b.param(0);
        let r1 = b.load(obj, fx);
        let r2 = b.load(obj, fx);
        let s = b.add(r1, r2);
        b.ret(Some(s));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert_eq!(stats.applied.get(&OptKind::ReadElim), Some(&1));
        verify(&g).unwrap();
        // Only one load remains.
        let loads = g
            .block_insts(g.entry())
            .iter()
            .filter(|&&i| matches!(g.inst(i), Inst::LoadField { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn strength_reduction_rewrites_in_place() {
        let mut b = GraphBuilder::new("sr", &[Type::Int], empty_table());
        let x = b.param(0);
        let eight = b.iconst(8);
        let m = b.mul(x, eight);
        b.ret(Some(m));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert_eq!(stats.applied.get(&OptKind::StrengthReduce), Some(&1));
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(40)));
        assert!(g.block_insts(g.entry()).iter().any(|&i| matches!(
            g.inst(i),
            Inst::Binary {
                op: dbds_ir::BinOp::Shl,
                ..
            }
        )));
    }

    #[test]
    fn cache_does_not_leak_into_merges() {
        // load; branch; one side stores; merge re-loads → must NOT be
        // eliminated.
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("leak", &[Type::Ref(a), Type::Bool], Arc::new(t));
        let obj = b.param(0);
        let c = b.param(1);
        let _r1 = b.load(obj, fx);
        let (bs, bn, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bs, bn, 0.5);
        b.switch_to(bs);
        let seven = b.iconst(7);
        b.store(obj, fx, seven);
        b.jump(bm);
        b.switch_to(bn);
        b.jump(bm);
        b.switch_to(bm);
        let r2 = b.load(obj, fx);
        b.ret(Some(r2));
        let mut g = b.finish();
        canonicalize(&mut g, &mut AnalysisCache::new());
        verify(&g).unwrap();
        // r2 must survive.
        assert!(g
            .block_insts(bm)
            .iter()
            .any(|&i| matches!(g.inst(i), Inst::LoadField { .. })));
    }

    #[test]
    fn instanceof_after_guard_folds() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let mut b = GraphBuilder::new("io", &[Type::Ref(a)], Arc::new(t));
        let obj = b.param(0);
        let t1 = b.instance_of(obj, a);
        let (byes, bno) = (b.new_block(), b.new_block());
        b.branch(t1, byes, bno, 0.9);
        b.switch_to(byes);
        // Redundant second test.
        let t2 = b.instance_of(obj, a);
        let (byes2, bno2) = (b.new_block(), b.new_block());
        b.branch(t2, byes2, bno2, 0.9);
        b.switch_to(byes2);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(bno2);
        let two = b.iconst(2);
        b.ret(Some(two));
        b.switch_to(bno);
        let zero = b.iconst(0);
        b.ret(Some(zero));
        let mut g = b.finish();
        let stats = canonicalize(&mut g, &mut AnalysisCache::new());
        assert!(stats.branch_folds >= 1);
        verify(&g).unwrap();
        assert!(matches!(g.terminator(byes), Terminator::Jump { target } if *target == byes2));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = CanonStats::default();
        a.applied.insert(OptKind::ConstantFold, 2);
        a.branch_folds = 1;
        let mut b = CanonStats::default();
        b.applied.insert(OptKind::ConstantFold, 3);
        b.applied.insert(OptKind::ReadElim, 1);
        a.merge(&b);
        assert_eq!(a.applied[&OptKind::ConstantFold], 5);
        assert_eq!(a.applied[&OptKind::ReadElim], 1);
        assert_eq!(a.total(), 7);
        assert!(a.changed());
    }
}
