//! Mutating optimization passes built on the AC/action-step framework.

pub mod canonicalize;
pub mod dce;
pub mod gvn;
pub mod pipeline;
pub mod scalar_replace;
pub mod simplify;
