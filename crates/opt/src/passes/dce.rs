//! Dead-code elimination: unreachable blocks and unused pure
//! instructions.

use dbds_ir::{Graph, InstId, Terminator};
use std::collections::HashMap;

/// Disconnects and empties all blocks unreachable from the entry.
/// Returns `true` when anything changed.
pub fn remove_unreachable_blocks(g: &mut Graph) -> bool {
    let mut reachable = vec![false; g.block_count()];
    for b in g.reachable_blocks() {
        reachable[b.index()] = true;
    }
    let mut changed = false;
    for b in g.blocks().collect::<Vec<_>>() {
        if reachable[b.index()] {
            continue;
        }
        // Clear the terminator first — this removes outgoing edges (and
        // the φ inputs in the targets) *and* drops value operands that
        // are about to be detached (a dead `return v` must not keep
        // referencing v).
        if !matches!(g.terminator(b), Terminator::Deopt) {
            g.set_terminator(b, Terminator::Deopt);
            changed = true;
        }
        let insts: Vec<InstId> = g.block_insts(b).to_vec();
        for i in insts.into_iter().rev() {
            g.remove_inst(i);
            changed = true;
        }
    }
    changed
}

/// Removes pure instructions whose values are unused, cascading through
/// operand chains. Returns `true` when anything changed.
pub fn remove_dead_instructions(g: &mut Graph) -> bool {
    let mut changed = false;
    loop {
        // Count uses of every live instruction.
        let mut uses: HashMap<InstId, usize> = HashMap::new();
        let blocks: Vec<_> = g.blocks().collect();
        for &b in &blocks {
            for &i in g.block_insts(b) {
                g.inst(i).for_each_input(|input| {
                    *uses.entry(input).or_insert(0) += 1;
                });
            }
            g.terminator(b).for_each_input(|input| {
                *uses.entry(input).or_insert(0) += 1;
            });
        }
        let mut removed_any = false;
        for &b in &blocks {
            let snapshot: Vec<InstId> = g.block_insts(b).to_vec();
            for i in snapshot {
                if uses.get(&i).copied().unwrap_or(0) == 0 && g.inst(i).removable_if_unused() {
                    g.remove_inst(i);
                    removed_any = true;
                }
            }
        }
        if !removed_any {
            break;
        }
        changed = true;
    }
    changed
}

/// Runs both DCE phases.
pub fn remove_dead_code(g: &mut Graph) -> bool {
    let a = remove_unreachable_blocks(g);
    let b = remove_dead_instructions(g);
    a || b
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{verify, ClassTable, GraphBuilder, Inst, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn removes_unused_chain() {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let one = b.iconst(1);
        let dead1 = b.add(x, one);
        let _dead2 = b.mul(dead1, dead1);
        let live = b.sub(x, one);
        b.ret(Some(live));
        let mut g = b.finish();
        assert!(remove_dead_instructions(&mut g));
        verify(&g).unwrap();
        // x, one, live remain.
        assert_eq!(g.block_insts(g.entry()).len(), 3);
    }

    #[test]
    fn keeps_effectful_and_trapping_instructions() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let fx = t.add_field(a, "x", Type::Int);
        let mut b = GraphBuilder::new("k", &[Type::Ref(a), Type::Int], Arc::new(t));
        let obj = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let _unused_div = b.div(n, zero); // traps — must stay
        let _unused_store = b.store(obj, fx, n); // effect — must stay
        let _unused_load = b.load(obj, fx); // traps on null — must stay
        b.ret(None);
        let mut g = b.finish();
        assert!(!remove_dead_instructions(&mut g));
        verify(&g).unwrap();
    }

    #[test]
    fn unused_allocation_is_removed() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let mut b = GraphBuilder::new("al", &[], Arc::new(t));
        let _alloc = b.new_object(a);
        b.ret(None);
        let mut g = b.finish();
        assert!(remove_dead_instructions(&mut g));
        assert_eq!(g.live_inst_count(), 0);
    }

    #[test]
    fn disconnects_unreachable_blocks() {
        let mut b = GraphBuilder::new("u", &[Type::Int], empty_table());
        let x = b.param(0);
        let bm = b.new_block();
        b.jump(bm);
        b.switch_to(bm);
        // bm gets a second (unreachable) predecessor.
        b.ret(Some(x));
        let mut g = b.finish();
        // Build an unreachable block that jumps into a live one… requires
        // a target without phis.
        let dead = g.add_block();
        let c1 = g.append_inst(dead, Inst::Const(dbds_ir::ConstValue::Int(1)), Type::Int);
        let _ = c1;
        g.set_terminator(dead, Terminator::Jump { target: bm });
        assert_eq!(g.preds(bm).len(), 2);
        assert!(remove_unreachable_blocks(&mut g));
        assert_eq!(g.preds(bm).len(), 1);
        assert!(g.block_insts(dead).is_empty());
        verify(&g).unwrap();
    }

    #[test]
    fn phi_counts_as_use() {
        let mut b = GraphBuilder::new("p", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        let two = b.iconst(2);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![one, two], Type::Int);
        b.ret(Some(phi));
        let mut g = b.finish();
        assert!(!remove_dead_code(&mut g));
        assert!(g.block_of(one).is_some());
        assert!(g.block_of(two).is_some());
    }
}
