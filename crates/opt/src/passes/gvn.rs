//! Dominator-scoped global value numbering.
//!
//! Graal's canonicalization deduplicates structurally identical pure
//! nodes; this pass provides the same service for the reproduction: a
//! depth-first walk of the dominator tree carrying a scoped hash table of
//! *(opcode, operands)* keys. A pure instruction whose key was already
//! defined in a dominating position is replaced by the earlier value.
//!
//! Only pure, non-trapping instructions participate (no loads — memory
//! dedup is read elimination's job — and no allocations, which have
//! identity).

use dbds_analysis::{AnalysisCache, DomTree};
use dbds_ir::{BinOp, ClassId, CmpOp, ConstValue, FieldId, Graph, Inst, InstId};
use std::collections::HashMap;

/// A hashable structural key for a pure instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    Const(ConstValue),
    Binary(BinOp, InstId, InstId),
    Compare(CmpOp, InstId, InstId),
    Not(InstId),
    Neg(InstId),
    InstanceOf(InstId, ClassId),
    ArrayLength(InstId),
    /// Loads participate only when no effectful instruction can intervene,
    /// which this pass cannot prove — so they don't. Kept for clarity.
    #[allow(dead_code)]
    Load(InstId, FieldId),
}

fn key_of(g: &Graph, i: InstId) -> Option<Key> {
    Some(match g.inst(i) {
        Inst::Const(c) => Key::Const(*c),
        Inst::Binary { op, lhs, rhs } => {
            // Normalize commutative operands for better hit rates.
            let (a, b) = if op.is_commutative() && rhs < lhs {
                (*rhs, *lhs)
            } else {
                (*lhs, *rhs)
            };
            if matches!(op, BinOp::Div | BinOp::Rem) {
                // Trapping: only safe to dedup when the *earlier* one is
                // guaranteed to execute, which dominance gives us — but
                // the trap itself is an observable effect whose ordering
                // we keep simple by not deduplicating.
                return None;
            }
            Key::Binary(*op, a, b)
        }
        Inst::Compare { op, lhs, rhs } => {
            if matches!(op, CmpOp::Eq | CmpOp::Ne) && rhs < lhs {
                Key::Compare(*op, *rhs, *lhs)
            } else {
                Key::Compare(*op, *lhs, *rhs)
            }
        }
        Inst::Not(x) => Key::Not(*x),
        Inst::Neg(x) => Key::Neg(*x),
        Inst::InstanceOf { object, class } => Key::InstanceOf(*object, *class),
        Inst::ArrayLength(a) => Key::ArrayLength(*a),
        _ => return None,
    })
}

/// Runs GVN over `g`, pulling the dominator tree through `cache`.
/// Returns the number of instructions deduplicated.
pub fn global_value_numbering(g: &mut Graph, cache: &mut AnalysisCache) -> usize {
    let dt = cache.domtree(g);
    let mut removed = 0;
    walk(g, &dt, g.entry(), &HashMap::new(), &mut removed);
    removed
}

fn walk(
    g: &mut Graph,
    dt: &DomTree,
    b: dbds_ir::BlockId,
    inherited: &HashMap<Key, InstId>,
    removed: &mut usize,
) {
    let mut table = inherited.clone();
    for i in g.block_insts(b).to_vec() {
        if g.block_of(i) != Some(b) {
            continue;
        }
        let Some(key) = key_of(g, i) else { continue };
        match table.get(&key) {
            Some(&prior) => {
                g.replace_all_uses(i, prior);
                g.remove_inst(i);
                *removed += 1;
            }
            None => {
                table.insert(key, i);
            }
        }
    }
    for &child in dt.children(b).to_vec().iter() {
        walk(g, dt, child, &table, removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn dedups_within_a_block() {
        let mut b = GraphBuilder::new("g", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        let s = b.mul(a1, a2);
        b.ret(Some(s));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 1);
        verify(&g).unwrap();
        assert_eq!(
            execute(&g, &[Value::Int(3), Value::Int(4)]).outcome,
            Ok(Value::Int(49))
        );
    }

    #[test]
    fn commutative_operands_normalize() {
        let mut b = GraphBuilder::new("c", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let a1 = b.add(x, y);
        let a2 = b.add(y, x); // same value, swapped operands
        let s = b.sub(a1, a2); // 0 after dedup + folding
        b.ret(Some(s));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 1);
        verify(&g).unwrap();
        assert_eq!(
            execute(&g, &[Value::Int(3), Value::Int(4)]).outcome,
            Ok(Value::Int(0))
        );
    }

    #[test]
    fn non_commutative_operands_do_not_normalize() {
        let mut b = GraphBuilder::new("n", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let s1 = b.sub(x, y);
        let s2 = b.sub(y, x);
        let s = b.add(s1, s2);
        b.ret(Some(s));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 0);
        verify(&g).unwrap();
    }

    #[test]
    fn dedups_into_dominating_block_but_not_across_siblings() {
        let mut b = GraphBuilder::new("d", &[Type::Int, Type::Bool], empty_table());
        let x = b.param(0);
        let c = b.param(1);
        let outer = b.add(x, x); // dominates everything
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let t1 = b.add(x, x); // dedups with `outer`
        b.ret(Some(t1));
        b.switch_to(bf);
        let f1 = b.mul(x, x); // unique in its branch
        b.ret(Some(f1));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 1);
        verify(&g).unwrap();
        let _ = outer;
        assert_eq!(
            execute(&g, &[Value::Int(5), Value::Bool(true)]).outcome,
            Ok(Value::Int(10))
        );
        assert_eq!(
            execute(&g, &[Value::Int(5), Value::Bool(false)]).outcome,
            Ok(Value::Int(25))
        );
    }

    #[test]
    fn sibling_branches_do_not_share() {
        // The same expression in two sibling branches has no dominating
        // occurrence: GVN must leave both.
        let mut b = GraphBuilder::new("s", &[Type::Int, Type::Bool], empty_table());
        let x = b.param(0);
        let c = b.param(1);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let t1 = b.add(x, x);
        b.ret(Some(t1));
        b.switch_to(bf);
        let f1 = b.add(x, x);
        b.ret(Some(f1));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 0);
        verify(&g).unwrap();
    }

    #[test]
    fn divisions_and_memory_are_left_alone() {
        let mut t = ClassTable::new();
        let cls = t.add_class("A");
        let fx = t.add_field(cls, "x", Type::Int);
        let mut b = GraphBuilder::new("m", &[Type::Ref(cls), Type::Int], Arc::new(t));
        let obj = b.param(0);
        let n = b.param(1);
        let two = b.iconst(2);
        let d1 = b.div(n, two);
        let d2 = b.div(n, two);
        let l1 = b.load(obj, fx);
        let l2 = b.load(obj, fx);
        let s1 = b.add(d1, d2);
        let s2 = b.add(l1, l2);
        let s = b.add(s1, s2);
        b.ret(Some(s));
        let mut g = b.finish();
        assert_eq!(global_value_numbering(&mut g, &mut AnalysisCache::new()), 0);
        verify(&g).unwrap();
    }

    #[test]
    fn instanceof_and_compare_dedup() {
        let mut t = ClassTable::new();
        let cls = t.add_class("A");
        let mut b = GraphBuilder::new("io", &[Type::Ref(cls), Type::Int], Arc::new(t));
        let obj = b.param(0);
        let n = b.param(1);
        let i1 = b.instance_of(obj, cls);
        let i2 = b.instance_of(obj, cls);
        let zero = b.iconst(0);
        let c1 = b.cmp(CmpOp::Lt, n, zero);
        let c2 = b.cmp(CmpOp::Gt, zero, n); // not normalized (ordered swap)
        let e = b.cmp(CmpOp::Eq, i1, i2);
        let _ = (c1, c2, e);
        b.ret(None);
        let mut g = b.finish();
        let removed = global_value_numbering(&mut g, &mut AnalysisCache::new());
        assert_eq!(removed, 1); // only the instanceof pair
        verify(&g).unwrap();
    }
}
