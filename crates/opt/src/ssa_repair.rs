//! On-demand SSA reconstruction.
//!
//! §3.1 of the paper notes that "code duplication can require complex
//! analysis to generate valid φ instructions for usages in dominated
//! blocks". This module is that analysis: given a *variable* with one
//! known definition at the end of some blocks, it answers "which SSA value
//! holds the variable at this point?", inserting φs at join points on
//! demand (the classic SSA-updater scheme, in the style of Braun et al.).
//!
//! It is used by the duplication transform (the original and the copy of a
//! duplicated instruction are two definitions of one variable) and by
//! scalar replacement (every store to a field of a non-escaping allocation
//! is a definition of that field's variable).

use dbds_ir::{BlockId, Graph, Inst, InstId, Type};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A failure of the on-demand SSA reconstruction.
///
/// These are graph-invariant violations (a query from a point no
/// definition reaches, or a tracked φ slot that no longer holds a φ); the
/// phase driver converts them into bailouts instead of aborting the
/// compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SsaRepairError {
    /// No definition of the variable reaches the queried block.
    NoReachingDefinition(BlockId),
    /// An instruction the builder created as a φ is no longer one.
    NotAPhi(InstId),
}

impl fmt::Display for SsaRepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaRepairError::NoReachingDefinition(b) => {
                write!(f, "no definition of the variable reaches {b}")
            }
            SsaRepairError::NotAPhi(i) => write!(f, "{i} is tracked as a phi but is not one"),
        }
    }
}

impl Error for SsaRepairError {}

/// Incremental SSA reconstruction for a single variable.
#[derive(Debug)]
pub struct SsaBuilder {
    ty: Type,
    /// Value of the variable at the *end* of a block (after its last
    /// definition), for blocks that define it.
    def_at_end: HashMap<BlockId, InstId>,
    /// Memoized value of the variable at the *start* of a block.
    start_cache: HashMap<BlockId, InstId>,
    /// φs created by the reconstruction.
    new_phis: Vec<InstId>,
    /// Arbitrary existing value used to pre-fill placeholder φ inputs
    /// before they are patched.
    dummy: InstId,
}

impl SsaBuilder {
    /// Creates a builder for a variable of type `ty` with the given
    /// end-of-block definitions.
    ///
    /// # Panics
    ///
    /// Panics if `defs` is empty (a variable must be defined somewhere).
    pub fn new(ty: Type, defs: HashMap<BlockId, InstId>) -> Self {
        let dummy = *defs.values().next().expect("variable needs a definition");
        SsaBuilder {
            ty,
            def_at_end: defs,
            start_cache: HashMap::new(),
            new_phis: Vec::new(),
            dummy,
        }
    }

    /// Registers (or replaces) the end-of-block definition for `b`.
    pub fn set_def(&mut self, b: BlockId, v: InstId) {
        self.def_at_end.insert(b, v);
    }

    /// The φs inserted so far (some may have become trivial and been
    /// removed again; removed ones are filtered out).
    pub fn new_phis(&self, g: &Graph) -> Vec<InstId> {
        self.new_phis
            .iter()
            .copied()
            .filter(|&p| g.block_of(p).is_some())
            .collect()
    }

    /// The value of the variable at the end of `b`.
    ///
    /// # Panics
    ///
    /// Panics if no definition reaches `b`.
    pub fn value_at_end(&mut self, g: &mut Graph, b: BlockId) -> InstId {
        self.try_value_at_end(g, b)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The value of the variable at the start of `b`, inserting φs at
    /// joins as needed.
    ///
    /// # Panics
    ///
    /// Panics if no definition reaches `b` (e.g. asking at the entry).
    pub fn value_at_start(&mut self, g: &mut Graph, b: BlockId) -> InstId {
        self.try_value_at_start(g, b)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SsaBuilder::value_at_end`].
    ///
    /// # Errors
    ///
    /// Returns [`SsaRepairError`] when no definition reaches `b` or a
    /// tracked φ was replaced behind the builder's back.
    pub fn try_value_at_end(
        &mut self,
        g: &mut Graph,
        b: BlockId,
    ) -> Result<InstId, SsaRepairError> {
        if let Some(&v) = self.def_at_end.get(&b) {
            return Ok(v);
        }
        self.try_value_at_start(g, b)
    }

    /// Fallible form of [`SsaBuilder::value_at_start`].
    ///
    /// # Errors
    ///
    /// Returns [`SsaRepairError`] when no definition reaches `b` (e.g.
    /// asking at the entry) or a tracked φ was replaced behind the
    /// builder's back.
    pub fn try_value_at_start(
        &mut self,
        g: &mut Graph,
        b: BlockId,
    ) -> Result<InstId, SsaRepairError> {
        if let Some(&v) = self.start_cache.get(&b) {
            return Ok(v);
        }
        let preds: Vec<BlockId> = g.preds(b).to_vec();
        match preds.len() {
            0 => Err(SsaRepairError::NoReachingDefinition(b)),
            1 => {
                let v = self.try_value_at_end(g, preds[0])?;
                self.start_cache.insert(b, v);
                Ok(v)
            }
            _ => {
                // Install a placeholder φ first so that cyclic queries
                // (loops) terminate, then fill in its inputs.
                let phi = g.append_phi(b, vec![self.dummy; preds.len()], self.ty);
                self.start_cache.insert(b, phi);
                self.new_phis.push(phi);
                let mut inputs: Vec<InstId> = Vec::with_capacity(preds.len());
                for &p in &preds {
                    inputs.push(self.try_value_at_end(g, p)?);
                }
                match g.inst_mut(phi) {
                    Inst::Phi { inputs: slots } => slots.clone_from(&inputs),
                    _ => return Err(SsaRepairError::NotAPhi(phi)),
                }
                Ok(self.try_remove_trivial(g, phi))
            }
        }
    }

    /// If `phi` is trivial (all inputs agree, ignoring self-references),
    /// replaces it with the unique input and fixes all caches. Returns the
    /// representative value.
    fn try_remove_trivial(&mut self, g: &mut Graph, phi: InstId) -> InstId {
        let inputs = match g.inst(phi) {
            Inst::Phi { inputs } => inputs.clone(),
            _ => unreachable!(),
        };
        let mut unique: Option<InstId> = None;
        for input in inputs {
            if input == phi {
                continue;
            }
            match unique {
                None => unique = Some(input),
                Some(u) if u == input => {}
                Some(_) => return phi, // non-trivial
            }
        }
        let rep = match unique {
            Some(u) => u,
            None => return phi, // degenerate, keep
        };
        g.replace_all_uses(phi, rep);
        g.remove_inst(phi);
        for v in self.start_cache.values_mut() {
            if *v == phi {
                *v = rep;
            }
        }
        for v in self.def_at_end.values_mut() {
            if *v == phi {
                *v = rep;
            }
        }
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{verify, ClassTable, CmpOp, GraphBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn single_def_flows_through_chain() {
        let mut b = GraphBuilder::new("c", &[Type::Int], empty_table());
        let x = b.param(0);
        let (b1, b2) = (b.new_block(), b.new_block());
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(g.entry(), x);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        assert_eq!(ssa.value_at_start(&mut g, b2), x);
        assert!(ssa.new_phis(&g).is_empty());
    }

    #[test]
    fn two_defs_insert_phi_at_join() {
        let mut b = GraphBuilder::new("j", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        let two = b.iconst(2);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(bt, one);
        defs.insert(bf, two);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let v = ssa.value_at_start(&mut g, bm);
        // A φ merging 1 and 2 must have been created in bm.
        assert_eq!(g.block_of(v), Some(bm));
        match g.inst(v) {
            Inst::Phi { inputs } => assert_eq!(inputs, &vec![one, two]),
            other => panic!("expected phi, got {other:?}"),
        }
        assert_eq!(ssa.new_phis(&g), vec![v]);
        // Idempotent.
        assert_eq!(ssa.value_at_start(&mut g, bm), v);
        verify(&g).unwrap();
    }

    #[test]
    fn same_def_both_sides_stays_trivial() {
        let mut b = GraphBuilder::new("t", &[Type::Bool], empty_table());
        let c = b.param(0);
        let seven = b.iconst(7);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(bt, seven);
        defs.insert(bf, seven);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let v = ssa.value_at_start(&mut g, bm);
        assert_eq!(v, seven);
        assert!(ssa.new_phis(&g).is_empty());
        verify(&g).unwrap();
    }

    #[test]
    fn loop_gets_phi_with_back_edge() {
        // entry defines v0; body defines v1; query inside the loop header.
        let mut b = GraphBuilder::new("l", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let cond = b.cmp(CmpOp::Lt, zero, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(None);
        let mut g = b.finish();
        // Variable: defined as `zero` at entry, redefined as `one` in body.
        let mut defs = HashMap::new();
        defs.insert(g.entry(), zero);
        defs.insert(body, one);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let v = ssa.value_at_start(&mut g, header);
        match g.inst(v) {
            Inst::Phi { inputs } => {
                assert_eq!(inputs.len(), 2);
                assert!(inputs.contains(&zero));
                assert!(inputs.contains(&one));
            }
            other => panic!("expected phi, got {other:?}"),
        }
        assert_eq!(ssa.value_at_start(&mut g, exit), v);
        verify(&g).unwrap();
    }

    #[test]
    fn loop_invariant_variable_needs_no_phi() {
        // Defined only before the loop; queried inside: trivial φ removed.
        let mut b = GraphBuilder::new("li", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let cond = b.cmp(CmpOp::Lt, zero, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(g.entry(), zero);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let v = ssa.value_at_start(&mut g, body);
        assert_eq!(v, zero);
        assert!(ssa.new_phis(&g).is_empty(), "trivial phi should be removed");
        verify(&g).unwrap();
    }

    #[test]
    fn diamond_then_join_then_use_below() {
        // defs in bt/bf; uses both at bm and at a block below bm: the
        // same φ serves both.
        let mut b = GraphBuilder::new("d2", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm, below) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        let two = b.iconst(2);
        b.jump(bm);
        b.switch_to(bm);
        b.jump(below);
        b.switch_to(below);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(bt, one);
        defs.insert(bf, two);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let at_bm = ssa.value_at_start(&mut g, bm);
        let at_below = ssa.value_at_start(&mut g, below);
        assert_eq!(at_bm, at_below);
        assert_eq!(ssa.new_phis(&g).len(), 1);
        verify(&g).unwrap();
    }

    #[test]
    fn use_after_redef_sees_new_value() {
        let mut b = GraphBuilder::new("r", &[], empty_table());
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let b1 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.ret(None);
        let mut g = b.finish();
        let mut defs = HashMap::new();
        defs.insert(g.entry(), zero);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        assert_eq!(ssa.value_at_start(&mut g, b1), zero);
        // Redefine and invalidate: set_def changes the end-of-entry value.
        // (start_cache for b1 was already resolved; callers must query
        // before mutating defs — emulate a fresh builder.)
        let mut defs2 = HashMap::new();
        defs2.insert(g.entry(), one);
        let mut ssa2 = SsaBuilder::new(Type::Int, defs2);
        assert_eq!(ssa2.value_at_start(&mut g, b1), one);
        let _ = ssa;
    }

    #[test]
    #[should_panic(expected = "no definition")]
    fn panics_without_reaching_definition() {
        let mut b = GraphBuilder::new("p", &[], empty_table());
        let zero = b.iconst(0);
        b.ret(None);
        let mut g = b.finish();
        let entry = g.entry();
        let orphan_target = g.add_block();
        // A block whose only def is downstream cannot be queried at start.
        let mut defs = HashMap::new();
        defs.insert(orphan_target, zero);
        let mut ssa = SsaBuilder::new(Type::Int, defs);
        let _ = ssa.value_at_start(&mut g, entry);
    }
}
