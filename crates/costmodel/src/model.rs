//! The per-node cost table.
//!
//! Graal annotates every node class with `@NodeInfo(cycles = …, size = …)`
//! (§5.3, Listing 7 shows `AbstractNewObjectNode` at `CYCLES_8`/`SIZE_8`
//! for "tlab alloc + header init"). We reproduce the same idea as a dense
//! table over [`InstKind`]. The default table is calibrated so that the
//! worked example of Figure 4 comes out exactly as printed in the paper
//! (merge block costs 14 cycles; after duplication the weighted cost is
//! 12.2 cycles) and Figure 3's strength reduction saves `32 − 1 = 31`
//! cycles.

use dbds_ir::InstKind;

/// Abstract cost of one IR node: estimated cycles to execute and estimated
/// machine-code bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NodeCost {
    /// Estimated execution cycles.
    pub cycles: u32,
    /// Estimated code size in bytes.
    pub size: u32,
}

impl NodeCost {
    /// Creates a cost entry.
    pub const fn new(cycles: u32, size: u32) -> Self {
        NodeCost { cycles, size }
    }
}

/// A complete cycles/size table over all instruction kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    table: [NodeCost; InstKind::COUNT],
}

impl Default for CostModel {
    fn default() -> Self {
        let mut table = [NodeCost::new(1, 1); InstKind::COUNT];
        let mut set = |k: InstKind, cycles: u32, size: u32| {
            table[k as usize] = NodeCost::new(cycles, size);
        };
        // Constants and parameters fold into consuming instructions.
        set(InstKind::Const, 0, 1);
        set(InstKind::Param, 0, 0);
        // Simple ALU operations.
        set(InstKind::Add, 1, 1);
        set(InstKind::Sub, 1, 1);
        set(InstKind::And, 1, 1);
        set(InstKind::Or, 1, 1);
        set(InstKind::Xor, 1, 1);
        set(InstKind::Shl, 1, 1);
        set(InstKind::Shr, 1, 1);
        set(InstKind::UShr, 1, 1);
        set(InstKind::Not, 1, 1);
        set(InstKind::Neg, 1, 1);
        set(InstKind::Compare, 1, 1);
        set(InstKind::Mul, 2, 1);
        // Division is the paper's Figure 3 example: 32 cycles vs 1 for the
        // shift it strength-reduces to (CS = 31).
        set(InstKind::Div, 32, 1);
        set(InstKind::Rem, 32, 1);
        // φs coalesce into moves and are usually free.
        set(InstKind::Phi, 0, 0);
        // Allocation: Listing 7 — CYCLES_8 / SIZE_8.
        set(InstKind::New, 8, 8);
        set(InstKind::NewArray, 8, 8);
        // Memory: loads are cheap, stores carry write barriers (Figure 4
        // charges the store 10 cycles).
        set(InstKind::LoadField, 2, 1);
        set(InstKind::StoreField, 10, 2);
        set(InstKind::ArrayLoad, 2, 1);
        set(InstKind::ArrayStore, 10, 2);
        set(InstKind::ArrayLength, 2, 1);
        // Type check: class-word load plus compare.
        set(InstKind::InstanceOf, 4, 2);
        // Out-of-line call.
        set(InstKind::Invoke, 64, 4);
        // Control transfer.
        set(InstKind::Jump, 1, 1);
        set(InstKind::Branch, 2, 2);
        set(InstKind::Return, 2, 2);
        set(InstKind::Deopt, 0, 4);
        CostModel { table }
    }
}

impl CostModel {
    /// The default (paper-calibrated) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from an explicit table.
    pub fn from_table(table: [NodeCost; InstKind::COUNT]) -> Self {
        CostModel { table }
    }

    /// The cost entry of `kind`.
    pub fn cost(&self, kind: InstKind) -> NodeCost {
        self.table[kind as usize]
    }

    /// Estimated cycles of `kind`.
    pub fn cycles(&self, kind: InstKind) -> u32 {
        self.table[kind as usize].cycles
    }

    /// Estimated code size of `kind`.
    pub fn size(&self, kind: InstKind) -> u32 {
        self.table[kind as usize].size
    }

    /// Overrides the cost of one kind (useful for ablation studies).
    pub fn set_cost(&mut self, kind: InstKind, cost: NodeCost) {
        self.table[kind as usize] = cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_strength_reduction_saves_31_cycles() {
        let m = CostModel::new();
        assert_eq!(m.cycles(InstKind::Div) - m.cycles(InstKind::Shr), 31);
    }

    #[test]
    fn listing7_allocation_costs() {
        let m = CostModel::new();
        assert_eq!(m.cost(InstKind::New), NodeCost::new(8, 8));
    }

    #[test]
    fn every_kind_has_an_entry() {
        let m = CostModel::new();
        for k in InstKind::ALL {
            // Phi/Param/Const/Deopt may be zero-cycle but sizes are defined.
            let _ = m.cost(k);
        }
        assert_eq!(m.cycles(InstKind::Phi), 0);
        assert_eq!(m.cycles(InstKind::Param), 0);
    }

    #[test]
    fn overrides_apply() {
        let mut m = CostModel::new();
        m.set_cost(InstKind::Div, NodeCost::new(64, 2));
        assert_eq!(m.cycles(InstKind::Div), 64);
        assert_eq!(m.size(InstKind::Div), 2);
    }
}
