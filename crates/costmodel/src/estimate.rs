//! Graph-level cost estimation — the paper's *static performance
//! estimator*.
//!
//! Combines the per-node table with block execution frequencies to
//! estimate a graph's run time (probability-weighted cycles) and its code
//! size, and turns interpreter execution tallies into *dynamic* cycle
//! counts — the reproduction's peak-performance metric.

use crate::model::CostModel;
use dbds_analysis::{AnalysisCache, BlockFrequencies};
use dbds_ir::{BlockId, Graph, Inst, InstKind, KindCounts};

impl CostModel {
    /// Estimated cycles of the instruction `id` of `g`. Function
    /// parameters are free; everything else is kind-based.
    pub fn inst_cycles(&self, g: &Graph, id: dbds_ir::InstId) -> u32 {
        match g.inst(id) {
            Inst::Param(_) => 0,
            inst => self.cycles(inst.kind()),
        }
    }

    /// Static cycle estimate of one block: the sum over its instructions
    /// and terminator.
    pub fn block_cycles(&self, g: &Graph, b: BlockId) -> u64 {
        let mut sum: u64 = 0;
        for &i in g.block_insts(b) {
            sum += u64::from(self.inst_cycles(g, i));
        }
        sum + u64::from(self.cycles(g.terminator(b).kind()))
    }

    /// Static size estimate of one block, including the terminator.
    pub fn block_size(&self, g: &Graph, b: BlockId) -> u64 {
        let mut sum: u64 = 0;
        for &i in g.block_insts(b) {
            sum += u64::from(self.size(g.inst(i).kind()));
        }
        sum + u64::from(self.size(g.terminator(b).kind()))
    }

    /// Code-size estimate of the whole graph (reachable blocks only).
    /// This is the quantity the paper's code-size-increase budget is
    /// expressed in ("computed by size estimations not IR node count",
    /// §5.2).
    pub fn graph_size(&self, g: &Graph) -> u64 {
        let mut blocks = g.reachable_blocks();
        blocks.sort();
        blocks.iter().map(|&b| self.block_size(g, b)).sum()
    }

    /// Probability-weighted cycle estimate of the whole graph: the static
    /// performance estimate `Σ_b freq(b) · cycles(b)`.
    pub fn graph_weighted_cycles(&self, g: &Graph, freqs: &BlockFrequencies) -> f64 {
        let mut blocks = g.reachable_blocks();
        blocks.sort();
        blocks
            .iter()
            .map(|&b| freqs.freq(b) * self.block_cycles(g, b) as f64)
            .sum()
    }

    /// [`graph_weighted_cycles`](CostModel::graph_weighted_cycles) with the
    /// frequencies pulled through an [`AnalysisCache`]: the one-call form
    /// every estimator call site uses (simulation, backtracking search,
    /// harness validation).
    pub fn weighted_cycles(&self, g: &Graph, cache: &mut AnalysisCache) -> f64 {
        let freqs = cache.frequencies(g);
        self.graph_weighted_cycles(g, &freqs)
    }

    /// Turns an interpreter execution tally into dynamic cycles: the
    /// machine-independent peak-performance measurement used by the
    /// evaluation harness.
    pub fn dynamic_cycles(&self, counts: &KindCounts) -> u64 {
        InstKind::ALL
            .iter()
            .map(|&k| counts.get(k) * u64::from(self.cycles(k)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_analysis::{BlockFrequencies, DomTree, LoopForest};
    use dbds_ir::{execute, ClassTable, GraphBuilder, Type, Value};
    use std::sync::Arc;

    /// Builds the Figure 4 example: a merge whose block stores the φ of
    /// `param0 * 3` (90% predecessor) and `param0` (10% predecessor)…
    /// Transcribed to match the figure: the merge block contains
    /// `Mul(φ, 3)`, `Store`, `Return`.
    fn figure4() -> (dbds_ir::Graph, BlockId) {
        let mut t = ClassTable::new();
        let c = t.add_class("S");
        let f = t.add_field(c, "s", Type::Int);
        let mut b = GraphBuilder::new("fig4", &[Type::Int, Type::Bool], Arc::new(t));
        let p0 = b.param(0);
        let cond = b.param(1);
        let obj = b.new_object(c);
        let (b1, b2, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(cond, b1, b2, 0.9);
        b.switch_to(b1);
        let three = b.iconst(3);
        b.jump(bm);
        b.switch_to(b2);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![three, p0], Type::Int);
        let mul = b.mul(phi, three);
        b.store(obj, f, mul);
        b.ret(Some(mul));
        (b.finish(), bm)
    }

    #[test]
    fn figure4_merge_block_costs_14_cycles() {
        let (g, bm) = figure4();
        let m = CostModel::new();
        // φ(0) + mul(2) + store(10) + return(2) = 14, as printed in the
        // left half of Figure 4.
        assert_eq!(m.block_cycles(&g, bm), 14);
    }

    #[test]
    fn weighted_cycles_track_frequencies() {
        let (g, bm) = figure4();
        let m = CostModel::new();
        let mut cache = AnalysisCache::new();
        let total = m.weighted_cycles(&g, &mut cache);
        // The merge executes once per entry; its contribution is its full
        // static cost.
        assert!(total >= m.block_cycles(&g, bm) as f64);
        // Entry contribution: new(8) + branch(2) = 10; then-branch: const 0
        // + jump 1 weighted 0.9; else jump 1 weighted 0.1; merge 14.
        let expected = 10.0 + 0.9 * 1.0 + 0.1 * 1.0 + 14.0;
        assert!((total - expected).abs() < 1e-9, "total = {total}");
        // The cached form agrees with the explicit three-analysis chain.
        let dt = DomTree::compute(&g);
        let lf = LoopForest::compute(&g, &dt);
        let freqs = BlockFrequencies::compute(&g, &dt, &lf);
        assert_eq!(total, m.graph_weighted_cycles(&g, &freqs));
    }

    #[test]
    fn graph_size_counts_reachable_blocks_only() {
        let (mut g, _) = figure4();
        let m = CostModel::new();
        let before = m.graph_size(&g);
        let dead = g.add_block();
        let _ = dead;
        assert_eq!(m.graph_size(&g), before);
    }

    #[test]
    fn dynamic_cycles_match_hand_count() {
        let mut b = GraphBuilder::new("d", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let two = b.iconst(2);
        let q = b.div(x, two);
        b.ret(Some(q));
        let g = b.finish();
        let m = CostModel::new();
        let r = execute(&g, &[Value::Int(10)]);
        assert_eq!(r.outcome, Ok(Value::Int(5)));
        // param 0 + const 0 + div 32 + return 2 = 34.
        assert_eq!(m.dynamic_cycles(&r.counts), 34);
    }

    #[test]
    fn param_is_free_in_inst_cycles() {
        let mut b = GraphBuilder::new("p", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        let g = b.finish();
        let m = CostModel::new();
        assert_eq!(m.inst_cycles(&g, x), 0);
    }
}
