//! # dbds-costmodel — node cost model and static performance estimator
//!
//! Reproduces §5.3 of the DBDS paper: every IR node kind carries an
//! abstract `cycles`/`size` annotation ([`NodeCost`]); the
//! [`CostModel`] aggregates them into block-level and graph-level
//! estimates, weights blocks by profile-derived execution frequencies (the
//! *static performance estimator* the simulation tier uses to compute
//! *cycles saved*), and converts interpreter execution tallies into
//! dynamic cycle counts (the harness's peak-performance metric).
//!
//! # Examples
//!
//! ```
//! use dbds_costmodel::CostModel;
//! use dbds_ir::InstKind;
//!
//! let m = CostModel::new();
//! // Figure 3 of the paper: x / 2 → x >> 1 saves 31 cycles.
//! assert_eq!(m.cycles(InstKind::Div) - m.cycles(InstKind::Shr), 31);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod estimate;
mod model;

pub use model::{CostModel, NodeCost};
