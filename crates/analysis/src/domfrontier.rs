//! Dominance frontiers and post-dominance frontiers.
//!
//! Both directions use the Cooper–Harvey–Kennedy frontier construction:
//! for every join block, walk each predecessor's idom chain up to the
//! join's immediate dominator, adding the join to every frontier on the
//! way. The post-dominance frontier is the exact dual, computed over the
//! reversed CFG via [`PostDomTree`] (so every *split* block contributes,
//! walking immediate post-dominator chains from each successor; chains
//! may terminate at the virtual exit).
//!
//! `DF(b)` is where dominance of `b` ends — the blocks needing φs for
//! definitions in `b` (the SSA-repair placement set); `PDF(b)` is the set
//! of branches that decide whether `b` executes, which is exactly the
//! control-dependence relation read the other way around.

use crate::domtree::DomTree;
use crate::postdom::PostDomTree;
use dbds_ir::{BlockId, Graph};

/// Dominance and post-dominance frontiers over the reachable blocks of a
/// [`Graph`]. Frontier sets are sorted by block index and deduplicated.
#[derive(Clone, Debug)]
pub struct DomFrontiers {
    df: Vec<Vec<BlockId>>,
    pdf: Vec<Vec<BlockId>>,
}

impl DomFrontiers {
    /// Computes both frontiers of `g` from its dominator and
    /// post-dominator trees.
    pub fn compute(g: &Graph, dt: &DomTree, pd: &PostDomTree) -> Self {
        let n = g.block_count();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut pdf: Vec<Vec<BlockId>> = vec![Vec::new(); n];

        for &b in dt.reverse_postorder() {
            // Forward frontier: join blocks push themselves up each
            // predecessor's idom chain.
            if g.preds(b).len() >= 2 {
                let target = dt.idom(b);
                for &p in g.preds(b) {
                    if !dt.is_reachable(p) {
                        continue;
                    }
                    let mut runner = Some(p);
                    while runner != target {
                        let Some(r) = runner else { break };
                        df[r.index()].push(b);
                        runner = dt.idom(r);
                    }
                }
            }
            // Reverse frontier: split blocks push themselves up each
            // successor's ipdom chain (`None` is the virtual exit).
            if g.succs(b).len() >= 2 && pd.in_domain(b) {
                let target = pd.ipdom(b);
                for s in g.succs(b) {
                    if !pd.in_domain(s) {
                        continue;
                    }
                    let mut runner = Some(s);
                    while runner != target {
                        let Some(r) = runner else { break };
                        pdf[r.index()].push(b);
                        runner = pd.ipdom(r);
                    }
                }
            }
        }

        for set in df.iter_mut().chain(pdf.iter_mut()) {
            set.sort_unstable();
            set.dedup();
        }
        DomFrontiers { df, pdf }
    }

    /// The dominance frontier of `b` (sorted, deduplicated).
    pub fn df(&self, b: BlockId) -> &[BlockId] {
        &self.df[b.index()]
    }

    /// The post-dominance frontier of `b` (sorted, deduplicated).
    pub fn pdf(&self, b: BlockId) -> &[BlockId] {
        &self.pdf[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, Graph, GraphBuilder, Type};
    use std::sync::Arc;

    fn frontiers(g: &Graph) -> DomFrontiers {
        DomFrontiers::compute(g, &DomTree::compute(g), &PostDomTree::compute(g))
    }

    fn diamond() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("d", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        (b.finish(), bt, bf, bm)
    }

    #[test]
    fn diamond_frontiers() {
        let (g, bt, bf, bm) = diamond();
        let f = frontiers(&g);
        let e = g.entry();
        // The arms' dominance ends at the merge; entry and merge dominate
        // everything below themselves.
        assert_eq!(f.df(bt), &[bm]);
        assert_eq!(f.df(bf), &[bm]);
        assert!(f.df(e).is_empty());
        assert!(f.df(bm).is_empty());
        // Dually, the arms' post-dominance ends at the split.
        assert_eq!(f.pdf(bt), &[e]);
        assert_eq!(f.pdf(bf), &[e]);
        assert!(f.pdf(e).is_empty());
        assert!(f.pdf(bm).is_empty());
    }

    #[test]
    fn loop_header_is_in_its_own_frontier() {
        let mut b = GraphBuilder::new("l", &[Type::Int], Arc::new(ClassTable::new()));
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let g = b.finish();
        let f = frontiers(&g);
        // The back edge puts the header in its own frontier and the
        // body's.
        assert_eq!(f.df(header), &[header]);
        assert_eq!(f.df(body), &[header]);
        // The loop breaks post-dominance at the header's branch.
        assert_eq!(f.pdf(body), &[header]);
        assert_eq!(f.pdf(header), &[header]);
    }
}
