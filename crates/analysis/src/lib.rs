//! # dbds-analysis — control-flow analyses
//!
//! The analysis substrate of the DBDS reproduction: dominator trees
//! ([`DomTree`], the backbone of the paper's dominance-based simulation
//! traversal), natural-loop detection ([`LoopForest`]), profile-derived
//! block execution frequencies ([`BlockFrequencies`], the `p` of the
//! `shouldDuplicate` heuristic), and value [`Stamp`]s with the refinement
//! rules conditional elimination applies along dominating conditions.
//! The reverse-CFG structure is equally first-class: post-dominator
//! trees ([`PostDomTree`], over the reversed CFG with a virtual exit),
//! dominance/post-dominance frontiers ([`DomFrontiers`]) and the
//! control-dependence graph ([`ControlDepGraph`]) drive the
//! branch-splitting candidates and the reverse-CFG lints.
//!
//! # Examples
//!
//! ```
//! use dbds_analysis::DomTree;
//! use dbds_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @f(c: bool) {\n\
//!      entry:\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  return\n}",
//! )?;
//! let g = &m.graphs[0];
//! let dt = DomTree::compute(g);
//! let merge = g.merge_blocks()[0];
//! assert_eq!(dt.idom(merge), Some(g.entry()));
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod controldep;
mod domfrontier;
mod domtree;
mod frequency;
mod loops;
mod postdom;
mod stamps;

pub use cache::{AnalysisCache, CacheStats};
pub use controldep::ControlDepGraph;
pub use domfrontier::DomFrontiers;
pub use domtree::{reverse_postorder, DomTree};
pub use frequency::{edge_probability, BlockFrequencies, LOOP_FACTOR, MAX_FREQUENCY};
pub use loops::{LoopForest, LoopInfo};
pub use postdom::PostDomTree;
pub use stamps::{
    initial_stamp, refine_by_cmp, refine_by_instanceof, try_fold_cmp, try_fold_instanceof,
    IntRange, Nullness, RefStamp, Stamp,
};
