//! Value stamps: what a compiler statically knows about an SSA value.
//!
//! Graal attaches a *stamp* to every node (integer ranges, nullness, type
//! information) and conditional elimination refines stamps along dominating
//! conditions. This module reproduces the part of that machinery DBDS
//! needs: integer ranges, known booleans, and reference
//! nullness/exact-class facts, together with the refinement rules applied
//! when a comparison or type test is known to be true or false.

use dbds_ir::{ClassId, CmpOp, ConstValue, Graph, Inst, InstId, Type};

/// An inclusive signed 64-bit integer range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IntRange {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

impl IntRange {
    /// The full `i64` range.
    pub const FULL: IntRange = IntRange {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A range holding exactly `c`.
    pub fn constant(c: i64) -> Self {
        IntRange { lo: c, hi: c }
    }

    /// A range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        IntRange { lo, hi }
    }

    /// The single value of the range, if it has exactly one.
    pub fn as_constant(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Does the range contain `v`?
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Intersection; `None` when the ranges are disjoint.
    pub fn intersect(self, other: IntRange) -> Option<IntRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(IntRange { lo, hi })
    }

    /// Smallest range containing both.
    pub fn union(self, other: IntRange) -> IntRange {
        IntRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Whether a reference is known null, known non-null, or unknown.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Nullness {
    /// May or may not be null.
    Unknown,
    /// Definitely not null.
    NonNull,
    /// Definitely null.
    Null,
}

/// What is known about a reference value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefStamp {
    /// Nullness information.
    pub nullness: Nullness,
    /// Exact dynamic class, when known (only meaningful if the value can
    /// be non-null).
    pub exact_class: Option<ClassId>,
    /// Classes the value is known *not* to be an instance of.
    pub excluded: Vec<ClassId>,
}

impl RefStamp {
    /// The unconstrained reference stamp.
    pub fn top() -> Self {
        RefStamp {
            nullness: Nullness::Unknown,
            exact_class: None,
            excluded: Vec::new(),
        }
    }

    /// Stamp of a fresh allocation of `class`.
    pub fn exact(class: ClassId) -> Self {
        RefStamp {
            nullness: Nullness::NonNull,
            exact_class: Some(class),
            excluded: Vec::new(),
        }
    }

    /// Stamp of the null constant.
    pub fn null() -> Self {
        RefStamp {
            nullness: Nullness::Null,
            exact_class: None,
            excluded: Vec::new(),
        }
    }
}

/// What is statically known about one SSA value.
#[derive(Clone, PartialEq, Debug)]
pub enum Stamp {
    /// An integer in the given range.
    Int(IntRange),
    /// A boolean, possibly with a known value.
    Bool(Option<bool>),
    /// An object reference.
    Obj(RefStamp),
    /// An array reference (nullness only).
    Arr(Nullness),
    /// No value.
    Void,
}

impl Stamp {
    /// The unconstrained stamp for a value of type `ty`.
    pub fn top(ty: Type) -> Self {
        match ty {
            Type::Int => Stamp::Int(IntRange::FULL),
            Type::Bool => Stamp::Bool(None),
            Type::Ref(_) => Stamp::Obj(RefStamp::top()),
            Type::Arr => Stamp::Arr(Nullness::Unknown),
            Type::Void => Stamp::Void,
        }
    }

    /// The stamp of a constant.
    pub fn of_const(c: ConstValue) -> Self {
        match c {
            ConstValue::Int(i) => Stamp::Int(IntRange::constant(i)),
            ConstValue::Bool(b) => Stamp::Bool(Some(b)),
            ConstValue::Null(_) => Stamp::Obj(RefStamp::null()),
            ConstValue::NullArr => Stamp::Arr(Nullness::Null),
        }
    }

    /// The constant integer this stamp pins down, if any.
    pub fn as_int_constant(&self) -> Option<i64> {
        match self {
            Stamp::Int(r) => r.as_constant(),
            _ => None,
        }
    }

    /// The constant boolean this stamp pins down, if any.
    pub fn as_bool_constant(&self) -> Option<bool> {
        match self {
            Stamp::Bool(b) => *b,
            _ => None,
        }
    }
}

/// The stamp an instruction's result has from local information alone
/// (before any condition-based refinement).
pub fn initial_stamp(g: &Graph, id: InstId) -> Stamp {
    match g.inst(id) {
        Inst::Const(c) => Stamp::of_const(*c),
        Inst::New { class } => Stamp::Obj(RefStamp::exact(*class)),
        Inst::NewArray { .. } => Stamp::Arr(Nullness::NonNull),
        Inst::ArrayLength(_) => Stamp::Int(IntRange::new(0, i64::MAX)),
        _ => Stamp::top(g.ty(id)),
    }
}

/// Tries to decide `lhs op rhs` from the operand stamps alone.
pub fn try_fold_cmp(op: CmpOp, lhs: &Stamp, rhs: &Stamp) -> Option<bool> {
    match (lhs, rhs) {
        (Stamp::Int(a), Stamp::Int(b)) => fold_int_cmp(op, *a, *b),
        (Stamp::Bool(Some(a)), Stamp::Bool(Some(b))) => match op {
            CmpOp::Eq => Some(a == b),
            CmpOp::Ne => Some(a != b),
            _ => None,
        },
        (Stamp::Obj(a), Stamp::Obj(b)) => fold_ref_cmp(op, a, b),
        (Stamp::Arr(a), Stamp::Arr(b)) => match (op, a, b) {
            (CmpOp::Eq, Nullness::Null, Nullness::Null) => Some(true),
            (CmpOp::Ne, Nullness::Null, Nullness::Null) => Some(false),
            (CmpOp::Eq, Nullness::Null, Nullness::NonNull)
            | (CmpOp::Eq, Nullness::NonNull, Nullness::Null) => Some(false),
            (CmpOp::Ne, Nullness::Null, Nullness::NonNull)
            | (CmpOp::Ne, Nullness::NonNull, Nullness::Null) => Some(true),
            _ => None,
        },
        _ => None,
    }
}

fn fold_int_cmp(op: CmpOp, a: IntRange, b: IntRange) -> Option<bool> {
    match op {
        CmpOp::Eq => {
            if a.intersect(b).is_none() {
                Some(false)
            } else if a.as_constant().is_some() && a == b {
                Some(true)
            } else {
                None
            }
        }
        CmpOp::Ne => fold_int_cmp(CmpOp::Eq, a, b).map(|r| !r),
        CmpOp::Lt => {
            if a.hi < b.lo {
                Some(true)
            } else if a.lo >= b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if a.hi <= b.lo {
                Some(true)
            } else if a.lo > b.hi {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => fold_int_cmp(CmpOp::Le, a, b).map(|r| !r),
        CmpOp::Ge => fold_int_cmp(CmpOp::Lt, a, b).map(|r| !r),
    }
}

fn fold_ref_cmp(op: CmpOp, a: &RefStamp, b: &RefStamp) -> Option<bool> {
    let eq = match (a.nullness, b.nullness) {
        (Nullness::Null, Nullness::Null) => Some(true),
        (Nullness::Null, Nullness::NonNull) | (Nullness::NonNull, Nullness::Null) => Some(false),
        _ => {
            // Two non-null references with different exact classes cannot
            // be the same object.
            match (a.exact_class, b.exact_class) {
                (Some(ca), Some(cb))
                    if ca != cb
                        && a.nullness == Nullness::NonNull
                        && b.nullness == Nullness::NonNull =>
                {
                    Some(false)
                }
                _ => None,
            }
        }
    };
    match op {
        CmpOp::Eq => eq,
        CmpOp::Ne => eq.map(|r| !r),
        _ => None,
    }
}

/// Tries to decide `object instanceof class` from the object's stamp.
pub fn try_fold_instanceof(stamp: &RefStamp, class: ClassId) -> Option<bool> {
    if stamp.nullness == Nullness::Null {
        return Some(false);
    }
    if stamp.excluded.contains(&class) {
        return Some(false);
    }
    match stamp.exact_class {
        Some(c) if c != class => Some(false),
        Some(_) if stamp.nullness == Nullness::NonNull => Some(true),
        _ => None,
    }
}

/// Refines the operand stamps of `lhs op rhs` given that the comparison
/// evaluated to `truth`. Returns the refined `(lhs, rhs)` stamps; the
/// result equals the inputs when nothing new is learned. A `None` means
/// the path is infeasible (contradictory knowledge).
pub fn refine_by_cmp(op: CmpOp, truth: bool, lhs: &Stamp, rhs: &Stamp) -> Option<(Stamp, Stamp)> {
    let op = if truth { op } else { op.negate() };
    match (lhs, rhs) {
        (Stamp::Int(a), Stamp::Int(b)) => {
            let (a2, b2) = refine_int_cmp(op, *a, *b)?;
            Some((Stamp::Int(a2), Stamp::Int(b2)))
        }
        (Stamp::Bool(a), Stamp::Bool(b)) => {
            // x == true / x != false etc.
            let (a2, b2) = match op {
                CmpOp::Eq => match (a, b) {
                    (Some(x), Some(y)) if x != y => return None,
                    (Some(x), None) => (Some(*x), Some(*x)),
                    (None, Some(y)) => (Some(*y), Some(*y)),
                    _ => (*a, *b),
                },
                CmpOp::Ne => match (a, b) {
                    (Some(x), Some(y)) if x == y => return None,
                    (Some(x), None) => (Some(*x), Some(!*x)),
                    (None, Some(y)) => (Some(!*y), Some(*y)),
                    _ => (*a, *b),
                },
                _ => (*a, *b),
            };
            Some((Stamp::Bool(a2), Stamp::Bool(b2)))
        }
        (Stamp::Obj(a), Stamp::Obj(b)) => {
            let (a2, b2) = refine_ref_cmp(op, a, b)?;
            Some((Stamp::Obj(a2), Stamp::Obj(b2)))
        }
        (Stamp::Arr(a), Stamp::Arr(b)) => {
            let (a2, b2) = refine_arr_cmp(op, *a, *b)?;
            Some((Stamp::Arr(a2), Stamp::Arr(b2)))
        }
        _ => Some((lhs.clone(), rhs.clone())),
    }
}

fn refine_int_cmp(op: CmpOp, a: IntRange, b: IntRange) -> Option<(IntRange, IntRange)> {
    match op {
        CmpOp::Eq => {
            let m = a.intersect(b)?;
            Some((m, m))
        }
        CmpOp::Ne => {
            // Representable only when one side is a constant at the other
            // side's boundary.
            let mut a2 = a;
            let mut b2 = b;
            if let Some(c) = b.as_constant() {
                if a.lo == c && a.hi == c {
                    return None;
                }
                if a2.lo == c {
                    a2.lo += 1;
                }
                if a2.hi == c {
                    a2.hi -= 1;
                }
            }
            if let Some(c) = a.as_constant() {
                if b.lo == c && b.hi == c {
                    return None;
                }
                if b2.lo == c {
                    b2.lo += 1;
                }
                if b2.hi == c {
                    b2.hi -= 1;
                }
            }
            Some((a2, b2))
        }
        CmpOp::Lt => {
            // a < b: a ≤ b.hi-1, b ≥ a.lo+1.
            if b.hi == i64::MIN || a.lo == i64::MAX {
                return None;
            }
            let a2 = a.intersect(IntRange::new(i64::MIN, b.hi - 1))?;
            let b2 = b.intersect(IntRange::new(a.lo + 1, i64::MAX))?;
            Some((a2, b2))
        }
        CmpOp::Le => {
            let a2 = a.intersect(IntRange::new(i64::MIN, b.hi))?;
            let b2 = b.intersect(IntRange::new(a.lo, i64::MAX))?;
            Some((a2, b2))
        }
        CmpOp::Gt => {
            let (b2, a2) = refine_int_cmp(CmpOp::Lt, b, a)?;
            Some((a2, b2))
        }
        CmpOp::Ge => {
            let (b2, a2) = refine_int_cmp(CmpOp::Le, b, a)?;
            Some((a2, b2))
        }
    }
}

fn refine_ref_cmp(op: CmpOp, a: &RefStamp, b: &RefStamp) -> Option<(RefStamp, RefStamp)> {
    let mut a2 = a.clone();
    let mut b2 = b.clone();
    match op {
        CmpOp::Eq => {
            // Same object: merge knowledge.
            let nullness = match (a.nullness, b.nullness) {
                (Nullness::Null, Nullness::NonNull) | (Nullness::NonNull, Nullness::Null) => {
                    return None
                }
                (Nullness::Null, _) | (_, Nullness::Null) => Nullness::Null,
                (Nullness::NonNull, _) | (_, Nullness::NonNull) => Nullness::NonNull,
                _ => Nullness::Unknown,
            };
            let exact = match (a.exact_class, b.exact_class) {
                (Some(x), Some(y)) if x != y && nullness == Nullness::NonNull => return None,
                (Some(x), _) => Some(x),
                (_, y) => y,
            };
            a2.nullness = nullness;
            b2.nullness = nullness;
            a2.exact_class = exact;
            b2.exact_class = exact;
            for c in &b.excluded {
                if !a2.excluded.contains(c) {
                    a2.excluded.push(*c);
                }
            }
            for c in &a.excluded {
                if !b2.excluded.contains(c) {
                    b2.excluded.push(*c);
                }
            }
            Some((a2, b2))
        }
        CmpOp::Ne => {
            // x != null refines x to non-null (and vice versa).
            if a.nullness == Nullness::Null {
                if b.nullness == Nullness::Null {
                    return None;
                }
                b2.nullness = Nullness::NonNull;
            }
            if b.nullness == Nullness::Null {
                if a.nullness == Nullness::Null {
                    return None;
                }
                a2.nullness = Nullness::NonNull;
            }
            Some((a2, b2))
        }
        _ => Some((a2, b2)),
    }
}

fn refine_arr_cmp(op: CmpOp, a: Nullness, b: Nullness) -> Option<(Nullness, Nullness)> {
    match op {
        CmpOp::Eq => match (a, b) {
            (Nullness::Null, Nullness::NonNull) | (Nullness::NonNull, Nullness::Null) => None,
            (Nullness::Null, _) | (_, Nullness::Null) => Some((Nullness::Null, Nullness::Null)),
            (Nullness::NonNull, _) | (_, Nullness::NonNull) => {
                Some((Nullness::NonNull, Nullness::NonNull))
            }
            _ => Some((a, b)),
        },
        CmpOp::Ne => match (a, b) {
            (Nullness::Null, Nullness::Null) => None,
            (Nullness::Null, _) => Some((a, Nullness::NonNull)),
            (_, Nullness::Null) => Some((Nullness::NonNull, b)),
            _ => Some((a, b)),
        },
        _ => Some((a, b)),
    }
}

/// Refines an object's stamp given that `object instanceof class`
/// evaluated to `truth`. `None` means the path is infeasible.
pub fn refine_by_instanceof(stamp: &RefStamp, class: ClassId, truth: bool) -> Option<RefStamp> {
    let mut s = stamp.clone();
    if truth {
        match stamp.exact_class {
            Some(c) if c != class => return None,
            _ => {}
        }
        if stamp.nullness == Nullness::Null || stamp.excluded.contains(&class) {
            return None;
        }
        s.nullness = Nullness::NonNull;
        s.exact_class = Some(class);
    } else {
        // Not an instance: either null or a different class.
        if stamp.exact_class == Some(class) && stamp.nullness == Nullness::NonNull {
            return None;
        }
        if !s.excluded.contains(&class) {
            s.excluded.push(class);
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = IntRange::new(1, 10);
        assert!(r.contains(5));
        assert!(!r.contains(0));
        assert_eq!(IntRange::constant(4).as_constant(), Some(4));
        assert_eq!(r.as_constant(), None);
        assert_eq!(
            r.intersect(IntRange::new(5, 20)),
            Some(IntRange::new(5, 10))
        );
        assert_eq!(r.intersect(IntRange::new(11, 20)), None);
        assert_eq!(r.union(IntRange::new(20, 30)), IntRange::new(1, 30));
    }

    #[test]
    fn folds_int_comparisons() {
        let small = Stamp::Int(IntRange::new(0, 5));
        let big = Stamp::Int(IntRange::new(10, 20));
        assert_eq!(try_fold_cmp(CmpOp::Lt, &small, &big), Some(true));
        assert_eq!(try_fold_cmp(CmpOp::Gt, &small, &big), Some(false));
        assert_eq!(try_fold_cmp(CmpOp::Eq, &small, &big), Some(false));
        assert_eq!(try_fold_cmp(CmpOp::Ne, &small, &big), Some(true));
        let c5 = Stamp::Int(IntRange::constant(5));
        assert_eq!(try_fold_cmp(CmpOp::Eq, &c5, &c5), Some(true));
        let overlap = Stamp::Int(IntRange::new(3, 12));
        assert_eq!(try_fold_cmp(CmpOp::Lt, &small, &overlap), None);
    }

    #[test]
    fn folds_listing1_pattern() {
        // Listing 1: in the else branch p = 13, so `p > 12` is true.
        let p = Stamp::Int(IntRange::constant(13));
        let twelve = Stamp::Int(IntRange::constant(12));
        assert_eq!(try_fold_cmp(CmpOp::Gt, &p, &twelve), Some(true));
        // In the then branch p = i with i <= 0 refined: i > 0 false → i <= 0.
        let (i2, _) = refine_by_cmp(
            CmpOp::Gt,
            false,
            &Stamp::Int(IntRange::FULL),
            &Stamp::Int(IntRange::constant(0)),
        )
        .unwrap();
        assert_eq!(i2, Stamp::Int(IntRange::new(i64::MIN, 0)));
        assert_eq!(try_fold_cmp(CmpOp::Gt, &i2, &twelve), Some(false));
    }

    #[test]
    fn refines_lt() {
        let (a, b) = refine_by_cmp(
            CmpOp::Lt,
            true,
            &Stamp::Int(IntRange::FULL),
            &Stamp::Int(IntRange::constant(10)),
        )
        .unwrap();
        assert_eq!(a, Stamp::Int(IntRange::new(i64::MIN, 9)));
        assert_eq!(b, Stamp::Int(IntRange::constant(10)));
    }

    #[test]
    fn refine_eq_intersects() {
        let (a, b) = refine_by_cmp(
            CmpOp::Eq,
            true,
            &Stamp::Int(IntRange::new(0, 100)),
            &Stamp::Int(IntRange::new(50, 200)),
        )
        .unwrap();
        assert_eq!(a, Stamp::Int(IntRange::new(50, 100)));
        assert_eq!(a, b);
        // Contradiction → infeasible path.
        assert!(refine_by_cmp(
            CmpOp::Eq,
            true,
            &Stamp::Int(IntRange::new(0, 5)),
            &Stamp::Int(IntRange::new(10, 20)),
        )
        .is_none());
    }

    #[test]
    fn refine_ne_shaves_boundaries() {
        let (a, _) = refine_by_cmp(
            CmpOp::Ne,
            true,
            &Stamp::Int(IntRange::new(0, 10)),
            &Stamp::Int(IntRange::constant(0)),
        )
        .unwrap();
        assert_eq!(a, Stamp::Int(IntRange::new(1, 10)));
    }

    #[test]
    fn null_checks() {
        let unknown = Stamp::Obj(RefStamp::top());
        let null = Stamp::Obj(RefStamp::null());
        // (a == null) false → a non-null.
        let (a, _) = refine_by_cmp(CmpOp::Eq, false, &unknown, &null).unwrap();
        match a {
            Stamp::Obj(s) => assert_eq!(s.nullness, Nullness::NonNull),
            _ => panic!(),
        }
        // null == null folds.
        assert_eq!(try_fold_cmp(CmpOp::Eq, &null, &null), Some(true));
        // non-null vs null folds.
        let nn = Stamp::Obj(RefStamp::exact(ClassId(0)));
        assert_eq!(try_fold_cmp(CmpOp::Eq, &nn, &null), Some(false));
        assert_eq!(try_fold_cmp(CmpOp::Ne, &nn, &null), Some(true));
    }

    #[test]
    fn distinct_exact_classes_cannot_alias() {
        let a = Stamp::Obj(RefStamp::exact(ClassId(0)));
        let b = Stamp::Obj(RefStamp::exact(ClassId(1)));
        assert_eq!(try_fold_cmp(CmpOp::Eq, &a, &b), Some(false));
    }

    #[test]
    fn instanceof_folding_and_refinement() {
        let top = RefStamp::top();
        assert_eq!(try_fold_instanceof(&top, ClassId(0)), None);
        assert_eq!(
            try_fold_instanceof(&RefStamp::null(), ClassId(0)),
            Some(false)
        );
        let exact = RefStamp::exact(ClassId(1));
        assert_eq!(try_fold_instanceof(&exact, ClassId(1)), Some(true));
        assert_eq!(try_fold_instanceof(&exact, ClassId(2)), Some(false));

        // Refine: instanceof true pins the exact class.
        let refined = refine_by_instanceof(&top, ClassId(3), true).unwrap();
        assert_eq!(refined.nullness, Nullness::NonNull);
        assert_eq!(refined.exact_class, Some(ClassId(3)));
        assert_eq!(try_fold_instanceof(&refined, ClassId(3)), Some(true));

        // Refine: instanceof false excludes the class.
        let refined = refine_by_instanceof(&top, ClassId(3), false).unwrap();
        assert_eq!(try_fold_instanceof(&refined, ClassId(3)), Some(false));
        assert_eq!(try_fold_instanceof(&refined, ClassId(4)), None);

        // Contradictions.
        assert!(refine_by_instanceof(&exact, ClassId(2), true).is_none());
        assert!(refine_by_instanceof(&exact, ClassId(1), false).is_none());
    }

    #[test]
    fn bool_refinement() {
        let (a, _) = refine_by_cmp(
            CmpOp::Eq,
            true,
            &Stamp::Bool(None),
            &Stamp::Bool(Some(true)),
        )
        .unwrap();
        assert_eq!(a, Stamp::Bool(Some(true)));
        assert!(refine_by_cmp(
            CmpOp::Eq,
            true,
            &Stamp::Bool(Some(false)),
            &Stamp::Bool(Some(true))
        )
        .is_none());
    }

    #[test]
    fn initial_stamps() {
        use dbds_ir::{ClassTable, GraphBuilder};
        use std::sync::Arc;
        let mut t = ClassTable::new();
        let c = t.add_class("A");
        let mut b = GraphBuilder::new("s", &[Type::Int], Arc::new(t));
        let five = b.iconst(5);
        let obj = b.new_object(c);
        let len_src = b.new_array(five);
        let len = b.alength(len_src);
        let x = b.param(0);
        b.ret(Some(len));
        let g = b.finish();
        assert_eq!(initial_stamp(&g, five), Stamp::Int(IntRange::constant(5)));
        assert_eq!(initial_stamp(&g, obj), Stamp::Obj(RefStamp::exact(c)));
        assert_eq!(initial_stamp(&g, len_src), Stamp::Arr(Nullness::NonNull));
        assert_eq!(
            initial_stamp(&g, len),
            Stamp::Int(IntRange::new(0, i64::MAX))
        );
        assert_eq!(initial_stamp(&g, x), Stamp::Int(IntRange::FULL));
    }
}
