//! Post-dominator tree construction and queries.
//!
//! The post-dominator tree is the dominator tree of the *reversed* CFG
//! rooted at a virtual exit node. Because [`Graph`] terminators have at
//! most two successors, the reversed graph cannot be materialized as a
//! real `Graph`; instead the Cooper–Harvey–Kennedy iteration runs
//! directly over reversed edge queries (`succs` become predecessors and
//! vice versa), with the virtual exit held at an internal index past the
//! real blocks. Every reachable block with no successors is an exit; a
//! region that cannot reach any exit (an infinite loop) is handled by
//! deterministically attaching its earliest block (in forward reverse
//! postorder) to the virtual exit as a pseudo-exit, so the tree always
//! covers every entry-reachable block.

use crate::domtree::reverse_postorder;
use dbds_ir::{BlockId, Graph};

/// The internal parent index of a block whose immediate post-dominator is
/// the virtual exit.
const VIRTUAL: usize = usize::MAX - 1;
/// Marker for blocks outside the analysis domain (unreachable from the
/// entry block).
const OUTSIDE: usize = usize::MAX;

/// A post-dominator tree over the entry-reachable blocks of a [`Graph`].
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// Immediate post-dominator per block: a real block index, [`VIRTUAL`]
    /// when the parent is the virtual exit, or [`OUTSIDE`].
    ipdom: Vec<usize>,
    /// Children in the post-dominator tree, per real block.
    children: Vec<Vec<BlockId>>,
    /// Children of the virtual exit: real exits first (in forward RPO
    /// order), then pseudo-exits of infinite regions.
    roots: Vec<BlockId>,
    /// Pseudo-exits chosen for regions that cannot reach a real exit.
    pseudo_exits: Vec<BlockId>,
    /// Euler-tour entry time per block (virtual exit excluded; roots are
    /// tour roots).
    pre: Vec<usize>,
    /// Euler-tour exit time per block.
    post: Vec<usize>,
}

impl PostDomTree {
    /// Computes the post-dominator tree of `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.block_count();
        let forward_rpo = reverse_postorder(g);
        let mut in_domain = vec![false; n];
        for &b in &forward_rpo {
            in_domain[b.index()] = true;
        }

        // Exit set: reachable blocks with no successors, then pseudo-exits
        // until every reachable block can reach the (virtual) exit.
        let mut exits: Vec<BlockId> = forward_rpo
            .iter()
            .copied()
            .filter(|&b| g.succs(b).is_empty())
            .collect();
        let mut pseudo_exits = Vec::new();
        loop {
            let covered = can_reach(g, n, &exits, &in_domain);
            match forward_rpo.iter().find(|b| !covered[b.index()]) {
                None => break,
                Some(&b) => {
                    pseudo_exits.push(b);
                    exits.push(b);
                }
            }
        }

        // Reverse postorder of the reversed graph, starting at the virtual
        // exit whose reversed successors are the exit set.
        let rev_rpo = reversed_rpo(g, n, &exits, &in_domain);
        let mut rev_index = vec![OUTSIDE; n];
        for (i, &b) in rev_rpo.iter().enumerate() {
            rev_index[b.index()] = i + 1; // index 0 is the virtual exit
        }

        // CHK iteration over the reversed graph. `ipdom` is indexed by
        // real block; the virtual exit is its own fixed point.
        let is_exit = {
            let mut v = vec![false; n];
            for &e in &exits {
                v[e.index()] = true;
            }
            v
        };
        let mut ipdom = vec![OUTSIDE; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rev_rpo {
                // Reversed predecessors of `b` are its forward successors,
                // plus the virtual exit when `b` is an exit.
                let mut new_ipdom = if is_exit[b.index()] {
                    Some(VIRTUAL)
                } else {
                    None
                };
                for s in g.succs(b) {
                    if ipdom[s.index()] == OUTSIDE {
                        continue;
                    }
                    new_ipdom = Some(match new_ipdom {
                        None => s.index(),
                        Some(cur) => intersect(&ipdom, &rev_index, s.index(), cur),
                    });
                }
                if let Some(ni) = new_ipdom {
                    if ipdom[b.index()] != ni {
                        ipdom[b.index()] = ni;
                        changed = true;
                    }
                }
            }
        }

        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for &b in &rev_rpo {
            match ipdom[b.index()] {
                VIRTUAL => roots.push(b),
                OUTSIDE => {}
                p => children[p].push(b),
            }
        }

        // Euler tour rooted at the virtual exit (each root starts a
        // subtree) for O(1) post-dominance queries.
        let mut pre = vec![OUTSIDE; n];
        let mut post = vec![OUTSIDE; n];
        let mut clock = 0;
        for &r in &roots {
            let mut stack: Vec<(BlockId, usize)> = vec![(r, 0)];
            pre[r.index()] = clock;
            clock += 1;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let ch = &children[b.index()];
                if *next < ch.len() {
                    let c = ch[*next];
                    *next += 1;
                    pre[c.index()] = clock;
                    clock += 1;
                    stack.push((c, 0));
                } else {
                    post[b.index()] = clock;
                    clock += 1;
                    stack.pop();
                }
            }
        }

        PostDomTree {
            ipdom,
            children,
            roots,
            pseudo_exits,
            pre,
            post,
        }
    }

    /// The immediate post-dominator of `b`: `None` when `b`'s parent is
    /// the virtual exit (a real or pseudo exit) or `b` is unreachable.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.ipdom[b.index()] {
            VIRTUAL | OUTSIDE => None,
            p => Some(BlockId::from_index(p)),
        }
    }

    /// Is `b`'s immediate post-dominator the virtual exit?
    pub fn is_root(&self, b: BlockId) -> bool {
        self.ipdom[b.index()] == VIRTUAL
    }

    /// The children of `b` in the post-dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// The children of the virtual exit: real exits first, then
    /// pseudo-exits of infinite regions.
    pub fn roots(&self) -> &[BlockId] {
        &self.roots
    }

    /// Blocks deterministically attached to the virtual exit because
    /// their region cannot reach a real exit.
    pub fn pseudo_exits(&self) -> &[BlockId] {
        &self.pseudo_exits
    }

    /// Does `a` post-dominate `b` (reflexively)? O(1). Blocks outside the
    /// domain neither post-dominate nor are post-dominated.
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.in_domain(a) || !self.in_domain(b) {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Does `a` strictly post-dominate `b`?
    pub fn strictly_post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.post_dominates(a, b)
    }

    /// Is `b` in the analysis domain (reachable from the entry block)?
    pub fn in_domain(&self, b: BlockId) -> bool {
        self.ipdom[b.index()] != OUTSIDE
    }
}

/// Which blocks can reach a member of `exits` (forward edges), restricted
/// to `in_domain` blocks — a backward BFS over predecessor edges.
fn can_reach(g: &Graph, n: usize, exits: &[BlockId], in_domain: &[bool]) -> Vec<bool> {
    let mut covered = vec![false; n];
    let mut work: Vec<BlockId> = Vec::new();
    for &e in exits {
        if in_domain[e.index()] && !covered[e.index()] {
            covered[e.index()] = true;
            work.push(e);
        }
    }
    while let Some(b) = work.pop() {
        for &p in g.preds(b) {
            if in_domain[p.index()] && !covered[p.index()] {
                covered[p.index()] = true;
                work.push(p);
            }
        }
    }
    covered
}

/// Reverse postorder of the reversed graph from the virtual exit (whose
/// reversed successors are `exits`; every other block's reversed
/// successors are its forward predecessors). The virtual exit itself is
/// omitted from the returned order.
fn reversed_rpo(g: &Graph, n: usize, exits: &[BlockId], in_domain: &[bool]) -> Vec<BlockId> {
    let mut visited = vec![false; n];
    let mut post: Vec<BlockId> = Vec::new();
    // Drive the DFS from each exit in order, as if they were the virtual
    // exit's successor list.
    for &e in exits {
        if visited[e.index()] || !in_domain[e.index()] {
            continue;
        }
        visited[e.index()] = true;
        let mut stack: Vec<(BlockId, usize)> = vec![(e, 0)];
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let preds = g.preds(b);
            if *child < preds.len() {
                let p = preds[*child];
                *child += 1;
                if in_domain[p.index()] && !visited[p.index()] {
                    visited[p.index()] = true;
                    stack.push((p, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
    }
    post.reverse();
    post
}

fn intersect(ipdom: &[usize], rev_index: &[usize], a: usize, b: usize) -> usize {
    // Indices into `rev_index` space: the virtual exit is position 0.
    let pos = |x: usize| {
        if x == VIRTUAL {
            0
        } else {
            rev_index[x]
        }
    };
    let (mut a, mut b) = (a, b);
    while a != b {
        while pos(a) > pos(b) {
            a = ipdom[a];
        }
        while pos(b) > pos(a) {
            b = ipdom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    /// entry → {bt, bf} → bm (return)
    fn diamond() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        (b.finish(), bt, bf, bm)
    }

    #[test]
    fn diamond_ipdoms() {
        let (g, bt, bf, bm) = diamond();
        let pd = PostDomTree::compute(&g);
        let e = g.entry();
        assert_eq!(pd.ipdom(bm), None);
        assert!(pd.is_root(bm));
        assert_eq!(pd.ipdom(bt), Some(bm));
        assert_eq!(pd.ipdom(bf), Some(bm));
        assert_eq!(pd.ipdom(e), Some(bm)); // merge post-dominates the split
        assert!(pd.post_dominates(bm, e));
        assert!(!pd.post_dominates(bt, e));
        assert!(!pd.post_dominates(bt, bf));
        assert!(pd.post_dominates(bt, bt));
        assert!(pd.strictly_post_dominates(bm, bt));
        assert!(!pd.strictly_post_dominates(bm, bm));
        assert_eq!(pd.roots(), &[bm]);
        assert!(pd.pseudo_exits().is_empty());
    }

    #[test]
    fn chain_post_dominance() {
        let mut b = GraphBuilder::new("c", &[], empty_table());
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let g = b.finish();
        let pd = PostDomTree::compute(&g);
        assert!(pd.post_dominates(b2, g.entry()));
        assert!(pd.post_dominates(b1, g.entry()));
        assert_eq!(pd.ipdom(g.entry()), Some(b1));
        assert_eq!(pd.ipdom(b1), Some(b2));
        assert_eq!(pd.ipdom(b2), None);
        assert_eq!(pd.children(b2), &[b1]);
    }

    #[test]
    fn loop_exit_post_dominates_loop() {
        let mut b = GraphBuilder::new("l", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let g = b.finish();
        let pd = PostDomTree::compute(&g);
        assert!(pd.post_dominates(exit, header));
        assert!(pd.post_dominates(exit, body));
        assert!(pd.post_dominates(header, body));
        assert!(!pd.post_dominates(body, header));
        assert_eq!(pd.ipdom(body), Some(header));
        assert_eq!(pd.ipdom(header), Some(exit));
        assert_eq!(pd.roots(), &[exit]);
    }

    #[test]
    fn infinite_loop_gets_a_pseudo_exit() {
        // entry → {spin, done}; spin → spin (never exits); done returns.
        let mut b = GraphBuilder::new("inf", &[Type::Bool], empty_table());
        let c = b.param(0);
        let spin = b.new_block();
        let done = b.new_block();
        b.branch(c, spin, done, 0.5);
        b.switch_to(spin);
        b.jump(spin);
        b.switch_to(done);
        b.ret(None);
        let g = b.finish();
        let pd = PostDomTree::compute(&g);
        assert_eq!(pd.pseudo_exits(), &[spin]);
        assert!(pd.in_domain(spin));
        assert!(pd.is_root(spin));
        // The entry reaches both the spin region and the real exit, so
        // nothing below the virtual exit post-dominates it.
        assert_eq!(pd.ipdom(g.entry()), None);
        assert!(!pd.post_dominates(done, g.entry()));
        assert!(!pd.post_dominates(spin, g.entry()));
    }

    #[test]
    fn unreachable_blocks_are_outside() {
        let (mut g, _, _, _) = diamond();
        let orphan = g.add_block();
        let pd = PostDomTree::compute(&g);
        assert!(!pd.in_domain(orphan));
        assert!(!pd.post_dominates(orphan, g.entry()));
        assert!(!pd.post_dominates(g.entry(), orphan));
        assert_eq!(pd.ipdom(orphan), None);
        assert!(!pd.is_root(orphan));
    }
}
