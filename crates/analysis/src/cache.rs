//! Version-keyed caching of CFG analyses, in the style of LLVM's
//! `AnalysisManager` and Graal's cached `cfg.dominatorTree` (§5.1 of the
//! paper).
//!
//! An [`AnalysisCache`] memoizes the six CFG-level analyses — dominator
//! tree, loop forest, block frequencies, post-dominator tree, dominance
//! frontiers and the control-dependence graph — keyed by the graph's
//! [`cfg_version`](dbds_ir::Graph::cfg_version) mutation epoch. A lookup on
//! an unchanged graph is a pointer clone; the first lookup after a
//! structural mutation recomputes and replaces the stale entry. Pure
//! value rewrites (constant folding, use replacement) leave `cfg_version`
//! untouched, so all entries survive them.
//!
//! Entries are returned as [`Arc`]s so callers can hold several analyses
//! at once (the simulation walk needs dominators *and* frequencies) while
//! the cache stays mutably borrowable in between.
//!
//! # Examples
//!
//! ```
//! use dbds_analysis::AnalysisCache;
//! use dbds_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @f(c: bool) {\n\
//!      entry:\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  return\n}",
//! )?;
//! let g = &m.graphs[0];
//! let mut cache = AnalysisCache::new();
//! let dt = cache.domtree(g);
//! let again = cache.domtree(g);
//! assert!(std::sync::Arc::ptr_eq(&dt, &again));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

use crate::{BlockFrequencies, ControlDepGraph, DomFrontiers, DomTree, LoopForest, PostDomTree};
use dbds_ir::lint::{Diagnostic, LintId};
use dbds_ir::Graph;
use std::sync::Arc;

/// Hit/miss/invalidation counters of an [`AnalysisCache`].
///
/// The forward analyses (dominator tree, loops, frequencies) aggregate
/// into `hits`/`misses`/`invalidations`; the reverse-CFG analyses
/// (post-dominators, frontiers, control dependence) keep their own
/// `rev_*` counters so the long-standing forward-counter pins stay
/// meaningful. Every lookup is either a hit or a miss; invalidations
/// count the misses that discarded a stale entry (as opposed to
/// cold-start misses on an empty slot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Forward-analysis lookups served from a still-valid entry.
    pub hits: u64,
    /// Forward-analysis lookups that had to (re)compute.
    pub misses: u64,
    /// Forward entries discarded because the CFG epoch moved on.
    pub invalidations: u64,
    /// Reverse-CFG-analysis lookups served from a still-valid entry.
    pub rev_hits: u64,
    /// Reverse-CFG-analysis lookups that had to (re)compute.
    pub rev_misses: u64,
    /// Reverse-CFG entries discarded because the CFG epoch moved on.
    pub rev_invalidations: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` (for summing across phases).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.rev_hits += other.rev_hits;
        self.rev_misses += other.rev_misses;
        self.rev_invalidations += other.rev_invalidations;
    }
}

/// One memoized analysis result with the CFG epoch it was computed at.
#[derive(Debug)]
struct Slot<T> {
    version: u64,
    value: Arc<T>,
}

/// A version-keyed cache of the CFG-level analyses of one (or several,
/// sequentially processed) [`Graph`]s.
///
/// Validity is purely stamp-based: because version stamps are globally
/// unique and never reused (see [`Graph::version`]), a stored entry whose
/// stamp equals the graph's current `cfg_version` is guaranteed to
/// describe exactly this graph state — even across clone/restore
/// backtracking, where the same stamp can reappear after `*g = backup`.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    domtree: Option<Slot<DomTree>>,
    loops: Option<Slot<LoopForest>>,
    frequencies: Option<Slot<BlockFrequencies>>,
    postdom: Option<Slot<PostDomTree>>,
    frontiers: Option<Slot<DomFrontiers>>,
    controldep: Option<Slot<ControlDepGraph>>,
    stats: CacheStats,
}

/// Looks up `$slot` under the stamp discipline, recomputing with `$make`
/// on a miss and charging `$hits`/`$misses`/`$invals`.
macro_rules! cached {
    ($self:ident, $g:ident, $slot:ident, $hits:ident, $misses:ident, $invals:ident, $make:expr) => {{
        let version = $g.cfg_version();
        if let Some(slot) = &$self.$slot {
            if slot.version == version {
                $self.stats.$hits += 1;
                return Arc::clone(&slot.value);
            }
            $self.stats.$invals += 1;
        }
        $self.stats.$misses += 1;
        let value = Arc::new($make);
        $self.$slot = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }};
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The dominator tree of `g`, recomputing only if the CFG changed
    /// since the last lookup.
    pub fn domtree(&mut self, g: &Graph) -> Arc<DomTree> {
        cached!(
            self,
            g,
            domtree,
            hits,
            misses,
            invalidations,
            DomTree::compute(g)
        )
    }

    /// The loop forest of `g`, recomputing only if the CFG changed since
    /// the last lookup. Pulls the dominator tree through the cache.
    pub fn loops(&mut self, g: &Graph) -> Arc<LoopForest> {
        cached!(self, g, loops, hits, misses, invalidations, {
            let dt = self.domtree(g);
            LoopForest::compute(g, &dt)
        })
    }

    /// The block execution frequencies of `g`, recomputing only if the
    /// CFG (including branch probabilities) changed since the last
    /// lookup. Pulls dominators and loops through the cache.
    pub fn frequencies(&mut self, g: &Graph) -> Arc<BlockFrequencies> {
        cached!(self, g, frequencies, hits, misses, invalidations, {
            let dt = self.domtree(g);
            let loops = self.loops(g);
            BlockFrequencies::compute(g, &dt, &loops)
        })
    }

    /// The post-dominator tree of `g`, recomputing only if the CFG
    /// changed since the last lookup. Counted under the `rev_*` stats.
    pub fn postdom(&mut self, g: &Graph) -> Arc<PostDomTree> {
        cached!(
            self,
            g,
            postdom,
            rev_hits,
            rev_misses,
            rev_invalidations,
            PostDomTree::compute(g)
        )
    }

    /// The dominance and post-dominance frontiers of `g`. Pulls the
    /// dominator and post-dominator trees through the cache; counted
    /// under the `rev_*` stats.
    pub fn frontiers(&mut self, g: &Graph) -> Arc<DomFrontiers> {
        cached!(
            self,
            g,
            frontiers,
            rev_hits,
            rev_misses,
            rev_invalidations,
            {
                let dt = self.domtree(g);
                let pd = self.postdom(g);
                DomFrontiers::compute(g, &dt, &pd)
            }
        )
    }

    /// The control-dependence graph of `g`. Pulls the post-dominator
    /// tree through the cache; counted under the `rev_*` stats.
    pub fn control_dep(&mut self, g: &Graph) -> Arc<ControlDepGraph> {
        cached!(
            self,
            g,
            controldep,
            rev_hits,
            rev_misses,
            rev_invalidations,
            {
                let pd = self.postdom(g);
                ControlDepGraph::compute(g, &pd)
            }
        )
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops all entries (counters are kept). Lookups after this are
    /// cold-start misses, not invalidations.
    pub fn clear(&mut self) {
        self.domtree = None;
        self.loops = None;
        self.frequencies = None;
        self.postdom = None;
        self.frontiers = None;
        self.controldep = None;
    }

    /// Audits every entry that claims to describe the current graph state
    /// against a from-scratch recomputation, returning one
    /// [`LintId::StaleAnalysis`] diagnostic per divergent block.
    ///
    /// Validity in this cache is purely stamp-based, so a divergence means
    /// the stamping discipline itself broke (a mutation that should have
    /// bumped `cfg_version` but did not, or a reused stamp) — exactly the
    /// class of bug no unit test of an individual analysis can see. Stale
    /// entries (stamp ≠ current version) are skipped: they are invalid by
    /// contract and the next lookup replaces them anyway.
    ///
    /// The audit is driven by [`AUDIT_REGISTRY`], one entry per memoized
    /// analysis, sharing fresh base analyses lazily — adding a slot
    /// without registering an auditor fails the registry meta-test.
    ///
    /// Read-only: the audit never touches the slots or the counters.
    pub fn audit(&self, g: &Graph) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut fresh = FreshAnalyses::new(g);
        for &(_, audit) in AUDIT_REGISTRY {
            audit(self, &mut fresh, &mut out);
        }
        out
    }
}

/// Lazily computed fresh analyses shared by the audit registry, so the
/// base analyses are recomputed at most once per audit no matter how many
/// registered auditors need them.
struct FreshAnalyses<'g> {
    g: &'g Graph,
    version: u64,
    dt: Option<DomTree>,
    loops: Option<LoopForest>,
    pd: Option<PostDomTree>,
}

impl<'g> FreshAnalyses<'g> {
    fn new(g: &'g Graph) -> Self {
        FreshAnalyses {
            g,
            version: g.cfg_version(),
            dt: None,
            loops: None,
            pd: None,
        }
    }

    fn dt(&mut self) -> &DomTree {
        if self.dt.is_none() {
            self.dt = Some(DomTree::compute(self.g));
        }
        self.dt.as_ref().expect("just computed")
    }

    fn loops(&mut self) -> &LoopForest {
        if self.loops.is_none() {
            self.dt();
            let dt = self.dt.as_ref().expect("just computed");
            self.loops = Some(LoopForest::compute(self.g, dt));
        }
        self.loops.as_ref().expect("just computed")
    }

    fn pd(&mut self) -> &PostDomTree {
        if self.pd.is_none() {
            self.pd = Some(PostDomTree::compute(self.g));
        }
        self.pd.as_ref().expect("just computed")
    }
}

/// One registered auditor: diffs a cached slot (when stamped current)
/// against fresh recomputation.
type AuditFn = fn(&AnalysisCache, &mut FreshAnalyses<'_>, &mut Vec<Diagnostic>);

/// The audit registry: every memoized analysis of [`AnalysisCache`] with
/// its divergence check. Keep in sync with the cache's slots — the
/// `registry_covers_every_slot` meta-test destructures the cache so a new
/// slot cannot be added without updating both.
const AUDIT_REGISTRY: &[(&str, AuditFn)] = &[
    ("domtree", audit_domtree),
    ("loops", audit_loops),
    ("frequencies", audit_frequencies),
    ("postdom", audit_postdom),
    ("frontiers", audit_frontiers),
    ("controldep", audit_controldep),
];

fn stale_at(b: Option<dbds_ir::BlockId>, message: String) -> Diagnostic {
    Diagnostic::new(LintId::StaleAnalysis, b, None, message)
}

fn audit_domtree(cache: &AnalysisCache, fresh: &mut FreshAnalyses<'_>, out: &mut Vec<Diagnostic>) {
    let Some(slot) = cache
        .domtree
        .as_ref()
        .filter(|s| s.version == fresh.version)
    else {
        return;
    };
    let g = fresh.g;
    let fresh = fresh.dt();
    for b in g.blocks() {
        if slot.value.idom(b) != fresh.idom(b) {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached domtree stamped current disagrees at {b}: idom {:?} vs recomputed {:?}",
                    slot.value.idom(b),
                    fresh.idom(b)
                ),
            ));
        }
    }
    if slot.value.reverse_postorder() != fresh.reverse_postorder() {
        out.push(stale_at(
            None,
            "cached domtree stamped current has a divergent reverse postorder".to_string(),
        ));
    }
}

fn audit_loops(cache: &AnalysisCache, fresh: &mut FreshAnalyses<'_>, out: &mut Vec<Diagnostic>) {
    let Some(slot) = cache.loops.as_ref().filter(|s| s.version == fresh.version) else {
        return;
    };
    let g = fresh.g;
    let fresh = fresh.loops();
    for b in g.blocks() {
        if slot.value.depth(b) != fresh.depth(b) || slot.value.is_header(b) != fresh.is_header(b) {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached loop forest stamped current disagrees at {b}: depth {} header {} vs recomputed depth {} header {}",
                    slot.value.depth(b),
                    slot.value.is_header(b),
                    fresh.depth(b),
                    fresh.is_header(b)
                ),
            ));
        }
    }
}

fn audit_frequencies(
    cache: &AnalysisCache,
    fresh: &mut FreshAnalyses<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(slot) = cache
        .frequencies
        .as_ref()
        .filter(|s| s.version == fresh.version)
    else {
        return;
    };
    let g = fresh.g;
    fresh.loops();
    let (dt, loops) = (
        fresh.dt.as_ref().expect("just computed"),
        fresh.loops.as_ref().expect("just computed"),
    );
    let recomputed = BlockFrequencies::compute(g, dt, loops);
    // Exact comparison is deliberate: recomputing the same input is
    // deterministic, so any difference is a staleness bug.
    for b in g.blocks() {
        if slot.value.freq(b).to_bits() != recomputed.freq(b).to_bits() {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached frequencies stamped current disagree at {b}: {} vs recomputed {}",
                    slot.value.freq(b),
                    recomputed.freq(b)
                ),
            ));
        }
    }
}

fn audit_postdom(cache: &AnalysisCache, fresh: &mut FreshAnalyses<'_>, out: &mut Vec<Diagnostic>) {
    let Some(slot) = cache
        .postdom
        .as_ref()
        .filter(|s| s.version == fresh.version)
    else {
        return;
    };
    let g = fresh.g;
    let fresh = fresh.pd();
    for b in g.blocks() {
        if slot.value.ipdom(b) != fresh.ipdom(b)
            || slot.value.is_root(b) != fresh.is_root(b)
            || slot.value.in_domain(b) != fresh.in_domain(b)
        {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached postdom stamped current disagrees at {b}: ipdom {:?} vs recomputed {:?}",
                    slot.value.ipdom(b),
                    fresh.ipdom(b)
                ),
            ));
        }
    }
    if slot.value.roots() != fresh.roots() {
        out.push(stale_at(
            None,
            "cached postdom stamped current has divergent virtual-exit roots".to_string(),
        ));
    }
}

fn audit_frontiers(
    cache: &AnalysisCache,
    fresh: &mut FreshAnalyses<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(slot) = cache
        .frontiers
        .as_ref()
        .filter(|s| s.version == fresh.version)
    else {
        return;
    };
    let g = fresh.g;
    fresh.dt();
    fresh.pd();
    let (dt, pd) = (
        fresh.dt.as_ref().expect("just computed"),
        fresh.pd.as_ref().expect("just computed"),
    );
    let recomputed = DomFrontiers::compute(g, dt, pd);
    for b in g.blocks() {
        if slot.value.df(b) != recomputed.df(b) || slot.value.pdf(b) != recomputed.pdf(b) {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached frontiers stamped current disagree at {b}: df {:?}/pdf {:?} vs recomputed df {:?}/pdf {:?}",
                    slot.value.df(b),
                    slot.value.pdf(b),
                    recomputed.df(b),
                    recomputed.pdf(b)
                ),
            ));
        }
    }
}

fn audit_controldep(
    cache: &AnalysisCache,
    fresh: &mut FreshAnalyses<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let Some(slot) = cache
        .controldep
        .as_ref()
        .filter(|s| s.version == fresh.version)
    else {
        return;
    };
    let g = fresh.g;
    let recomputed = ControlDepGraph::compute(g, fresh.pd());
    for b in g.blocks() {
        if slot.value.dependents(b) != recomputed.dependents(b)
            || slot.value.controllers(b) != recomputed.controllers(b)
        {
            out.push(stale_at(
                Some(b),
                format!(
                    "cached control-dependence stamped current disagrees at {b}: dependents {:?} vs recomputed {:?}",
                    slot.value.dependents(b),
                    recomputed.dependents(b)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::parse_module;

    fn diamond() -> Graph {
        let m = parse_module(
            "func @f(c: bool) {\n\
             entry:\n  branch c, bt, bf, prob 0.5\n\
             bt:\n  jump bm\n\
             bf:\n  jump bm\n\
             bm:\n  return\n}",
        )
        .unwrap();
        m.graphs.into_iter().next().unwrap()
    }

    #[test]
    fn repeat_lookups_hit() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        let f1 = cache.frequencies(&g);
        // First call misses all three (frequencies pulls domtree + loops);
        // the loops→domtree pull already hits.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 1);
        let f2 = cache.frequencies(&g);
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn reverse_analyses_hit_under_their_own_counters() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.frequencies(&g);
        let before = cache.stats();
        let cd1 = cache.control_dep(&g);
        let f1 = cache.frontiers(&g);
        // control_dep misses + pulls postdom (miss); frontiers misses +
        // hits postdom, and pulls the already-warm domtree as a forward
        // hit. No forward misses.
        assert_eq!(cache.stats().rev_misses, 3);
        assert_eq!(cache.stats().rev_hits, 1);
        assert_eq!(cache.stats().misses, before.misses);
        let cd2 = cache.control_dep(&g);
        let f2 = cache.frontiers(&g);
        assert!(Arc::ptr_eq(&cd1, &cd2));
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.stats().rev_hits, 3);
        assert_eq!(cache.stats().rev_misses, 3);
        assert_eq!(cache.stats().rev_invalidations, 0);
    }

    #[test]
    fn cfg_mutation_invalidates() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        let p1 = cache.postdom(&g);
        g.add_block();
        let d2 = cache.domtree(&g);
        let p2 = cache.postdom(&g);
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().rev_misses, 2);
        assert_eq!(cache.stats().rev_invalidations, 1);
    }

    #[test]
    fn value_mutation_preserves_cfg_analyses() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        let c1 = cache.control_dep(&g);
        let entry = g.entry();
        use dbds_ir::{ConstValue, Inst, Type};
        g.append_inst(entry, Inst::Const(ConstValue::Int(7)), Type::Int);
        let d2 = cache.domtree(&g);
        let c2 = cache.control_dep(&g);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert!(Arc::ptr_eq(&c1, &c2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().rev_hits, 1);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().rev_invalidations, 0);
    }

    #[test]
    fn restored_backup_revalidates_old_entry() {
        // Backtracking pattern: clone, diverge, restore. The entry cached
        // for the backup's stamp must be valid again after the restore.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let backup = g.clone();
        let d_before = cache.domtree(&g);
        g.add_block();
        cache.domtree(&g);
        g = backup;
        let d_after = cache.domtree(&g);
        // The diverged entry replaced the slot, so this recomputes — but it
        // must recompute (stamp differs), never serve the diverged tree.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(
            d_before.idom(g.merge_blocks()[0]),
            d_after.idom(g.merge_blocks()[0])
        );
    }

    #[test]
    fn audit_accepts_consistent_cache() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.frequencies(&g);
        cache.frontiers(&g);
        cache.control_dep(&g);
        assert!(cache.audit(&g).is_empty());
        // An empty cache is trivially consistent too.
        assert!(AnalysisCache::new().audit(&g).is_empty());
    }

    #[test]
    fn audit_skips_entries_with_stale_stamps() {
        // A stale stamp is not a finding: it is invalid by contract and
        // the next lookup replaces it.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        cache.postdom(&g);
        g.add_block();
        assert!(cache.audit(&g).is_empty());
    }

    #[test]
    fn audit_detects_stamp_forgery() {
        // Fail-first corpus entry for LintId::StaleAnalysis: simulate a
        // stamping-discipline bug by computing the domtree, mutating the
        // CFG in a way that changes dominators, then forging the cached
        // entry's stamp to the new epoch. The audit must notice the
        // cached tree no longer matches a fresh recomputation.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        // bm (the merge) is currently dominated by entry. Retarget bf's
        // jump so bm's only pred is bt, changing bm's idom to bt.
        use dbds_ir::Terminator;
        let bf = g.blocks().nth(2).unwrap();
        let ret = g.blocks().nth(3).unwrap();
        assert_eq!(g.succs(bf), vec![ret]);
        let bt = g.blocks().nth(1).unwrap();
        g.set_terminator(bf, Terminator::Jump { target: bt });
        let forged_version = g.cfg_version();
        let slot = cache.domtree.as_mut().unwrap();
        slot.version = forged_version; // the bug under test
        let findings = cache.audit(&g);
        assert!(
            !findings.is_empty(),
            "forged stamp must surface as StaleAnalysis"
        );
        assert!(findings
            .iter()
            .all(|d| d.lint == dbds_ir::LintId::StaleAnalysis));
    }

    #[test]
    fn audit_detects_forged_reverse_entries() {
        // The same forgery through the registry's reverse-CFG auditors:
        // retargeting bf to bt changes post-dominance, frontiers and
        // control dependence; a forged stamp on each slot must surface.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        cache.frontiers(&g);
        cache.control_dep(&g);
        use dbds_ir::Terminator;
        let bt = g.blocks().nth(1).unwrap();
        let bf = g.blocks().nth(2).unwrap();
        g.set_terminator(bf, Terminator::Jump { target: bt });
        let forged_version = g.cfg_version();
        for v in [
            &mut cache.postdom.as_mut().unwrap().version,
            &mut cache.frontiers.as_mut().unwrap().version,
            &mut cache.controldep.as_mut().unwrap().version,
        ] {
            *v = forged_version;
        }
        let findings = cache.audit(&g);
        assert!(
            !findings.is_empty(),
            "forged reverse-analysis stamps must surface as StaleAnalysis"
        );
        assert!(findings
            .iter()
            .all(|d| d.lint == dbds_ir::LintId::StaleAnalysis));
    }

    #[test]
    fn registry_covers_every_slot() {
        // Destructure so adding a slot without touching this test (and
        // the registry) is a compile error.
        let AnalysisCache {
            domtree,
            loops,
            frequencies,
            postdom,
            frontiers,
            controldep,
            stats: _,
        } = AnalysisCache::new();
        let slots = [
            ("domtree", domtree.is_none()),
            ("loops", loops.is_none()),
            ("frequencies", frequencies.is_none()),
            ("postdom", postdom.is_none()),
            ("frontiers", frontiers.is_none()),
            ("controldep", controldep.is_none()),
        ];
        assert_eq!(
            slots.len(),
            AUDIT_REGISTRY.len(),
            "every memoized slot needs a registered auditor"
        );
        for ((slot, _), (audit, _)) in slots.iter().zip(AUDIT_REGISTRY) {
            assert_eq!(slot, audit, "registry order must mirror the slots");
        }
    }

    #[test]
    fn clear_forces_cold_misses() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        cache.postdom(&g);
        cache.clear();
        cache.domtree(&g);
        cache.postdom(&g);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().rev_misses, 2);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().rev_invalidations, 0);
    }
}
