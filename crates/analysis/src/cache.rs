//! Version-keyed caching of CFG analyses, in the style of LLVM's
//! `AnalysisManager` and Graal's cached `cfg.dominatorTree` (§5.1 of the
//! paper).
//!
//! An [`AnalysisCache`] memoizes the three CFG-level analyses — dominator
//! tree, loop forest, block frequencies — keyed by the graph's
//! [`cfg_version`](dbds_ir::Graph::cfg_version) mutation epoch. A lookup on
//! an unchanged graph is a pointer clone; the first lookup after a
//! structural mutation recomputes and replaces the stale entry. Pure
//! value rewrites (constant folding, use replacement) leave `cfg_version`
//! untouched, so all three analyses survive them.
//!
//! Entries are returned as [`Arc`]s so callers can hold several analyses
//! at once (the simulation walk needs dominators *and* frequencies) while
//! the cache stays mutably borrowable in between.
//!
//! # Examples
//!
//! ```
//! use dbds_analysis::AnalysisCache;
//! use dbds_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @f(c: bool) {\n\
//!      entry:\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  return\n}",
//! )?;
//! let g = &m.graphs[0];
//! let mut cache = AnalysisCache::new();
//! let dt = cache.domtree(g);
//! let again = cache.domtree(g);
//! assert!(std::sync::Arc::ptr_eq(&dt, &again));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

use crate::{BlockFrequencies, DomTree, LoopForest};
use dbds_ir::Graph;
use std::sync::Arc;

/// Hit/miss/invalidation counters of an [`AnalysisCache`].
///
/// Aggregated over all three analyses. Every lookup is either a hit or a
/// miss; `invalidations` counts the misses that discarded a stale entry
/// (as opposed to cold-start misses on an empty slot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a still-valid entry.
    pub hits: u64,
    /// Lookups that had to (re)compute the analysis.
    pub misses: u64,
    /// Stale entries discarded because the graph's CFG epoch moved on.
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` (for summing across phases).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// One memoized analysis result with the CFG epoch it was computed at.
#[derive(Debug)]
struct Slot<T> {
    version: u64,
    value: Arc<T>,
}

/// A version-keyed cache of the CFG-level analyses of one (or several,
/// sequentially processed) [`Graph`]s.
///
/// Validity is purely stamp-based: because version stamps are globally
/// unique and never reused (see [`Graph::version`]), a stored entry whose
/// stamp equals the graph's current `cfg_version` is guaranteed to
/// describe exactly this graph state — even across clone/restore
/// backtracking, where the same stamp can reappear after `*g = backup`.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    domtree: Option<Slot<DomTree>>,
    loops: Option<Slot<LoopForest>>,
    frequencies: Option<Slot<BlockFrequencies>>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The dominator tree of `g`, recomputing only if the CFG changed
    /// since the last lookup.
    pub fn domtree(&mut self, g: &Graph) -> Arc<DomTree> {
        let version = g.cfg_version();
        if let Some(slot) = &self.domtree {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let value = Arc::new(DomTree::compute(g));
        self.domtree = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The loop forest of `g`, recomputing only if the CFG changed since
    /// the last lookup. Pulls the dominator tree through the cache.
    pub fn loops(&mut self, g: &Graph) -> Arc<LoopForest> {
        let version = g.cfg_version();
        if let Some(slot) = &self.loops {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let dt = self.domtree(g);
        let value = Arc::new(LoopForest::compute(g, &dt));
        self.loops = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The block execution frequencies of `g`, recomputing only if the
    /// CFG (including branch probabilities) changed since the last
    /// lookup. Pulls dominators and loops through the cache.
    pub fn frequencies(&mut self, g: &Graph) -> Arc<BlockFrequencies> {
        let version = g.cfg_version();
        if let Some(slot) = &self.frequencies {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let dt = self.domtree(g);
        let loops = self.loops(g);
        let value = Arc::new(BlockFrequencies::compute(g, &dt, &loops));
        self.frequencies = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops all entries (counters are kept). Lookups after this are
    /// cold-start misses, not invalidations.
    pub fn clear(&mut self) {
        self.domtree = None;
        self.loops = None;
        self.frequencies = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::parse_module;

    fn diamond() -> Graph {
        let m = parse_module(
            "func @f(c: bool) {\n\
             entry:\n  branch c, bt, bf, prob 0.5\n\
             bt:\n  jump bm\n\
             bf:\n  jump bm\n\
             bm:\n  return\n}",
        )
        .unwrap();
        m.graphs.into_iter().next().unwrap()
    }

    #[test]
    fn repeat_lookups_hit() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        let f1 = cache.frequencies(&g);
        // First call misses all three (frequencies pulls domtree + loops);
        // the loops→domtree pull already hits.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 1);
        let f2 = cache.frequencies(&g);
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn cfg_mutation_invalidates() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        g.add_block();
        let d2 = cache.domtree(&g);
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn value_mutation_preserves_cfg_analyses() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        let entry = g.entry();
        use dbds_ir::{ConstValue, Inst, Type};
        g.append_inst(entry, Inst::Const(ConstValue::Int(7)), Type::Int);
        let d2 = cache.domtree(&g);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn restored_backup_revalidates_old_entry() {
        // Backtracking pattern: clone, diverge, restore. The entry cached
        // for the backup's stamp must be valid again after the restore.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let backup = g.clone();
        let d_before = cache.domtree(&g);
        g.add_block();
        cache.domtree(&g);
        g = backup;
        let d_after = cache.domtree(&g);
        // The diverged entry replaced the slot, so this recomputes — but it
        // must recompute (stamp differs), never serve the diverged tree.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(
            d_before.idom(g.merge_blocks()[0]),
            d_after.idom(g.merge_blocks()[0])
        );
    }

    #[test]
    fn clear_forces_cold_misses() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        cache.clear();
        cache.domtree(&g);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 0);
    }
}
