//! Version-keyed caching of CFG analyses, in the style of LLVM's
//! `AnalysisManager` and Graal's cached `cfg.dominatorTree` (§5.1 of the
//! paper).
//!
//! An [`AnalysisCache`] memoizes the three CFG-level analyses — dominator
//! tree, loop forest, block frequencies — keyed by the graph's
//! [`cfg_version`](dbds_ir::Graph::cfg_version) mutation epoch. A lookup on
//! an unchanged graph is a pointer clone; the first lookup after a
//! structural mutation recomputes and replaces the stale entry. Pure
//! value rewrites (constant folding, use replacement) leave `cfg_version`
//! untouched, so all three analyses survive them.
//!
//! Entries are returned as [`Arc`]s so callers can hold several analyses
//! at once (the simulation walk needs dominators *and* frequencies) while
//! the cache stays mutably borrowable in between.
//!
//! # Examples
//!
//! ```
//! use dbds_analysis::AnalysisCache;
//! use dbds_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @f(c: bool) {\n\
//!      entry:\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  return\n}",
//! )?;
//! let g = &m.graphs[0];
//! let mut cache = AnalysisCache::new();
//! let dt = cache.domtree(g);
//! let again = cache.domtree(g);
//! assert!(std::sync::Arc::ptr_eq(&dt, &again));
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

use crate::{BlockFrequencies, DomTree, LoopForest};
use dbds_ir::lint::{Diagnostic, LintId};
use dbds_ir::Graph;
use std::sync::Arc;

/// Hit/miss/invalidation counters of an [`AnalysisCache`].
///
/// Aggregated over all three analyses. Every lookup is either a hit or a
/// miss; `invalidations` counts the misses that discarded a stale entry
/// (as opposed to cold-start misses on an empty slot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a still-valid entry.
    pub hits: u64,
    /// Lookups that had to (re)compute the analysis.
    pub misses: u64,
    /// Stale entries discarded because the graph's CFG epoch moved on.
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self` (for summing across phases).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// One memoized analysis result with the CFG epoch it was computed at.
#[derive(Debug)]
struct Slot<T> {
    version: u64,
    value: Arc<T>,
}

/// A version-keyed cache of the CFG-level analyses of one (or several,
/// sequentially processed) [`Graph`]s.
///
/// Validity is purely stamp-based: because version stamps are globally
/// unique and never reused (see [`Graph::version`]), a stored entry whose
/// stamp equals the graph's current `cfg_version` is guaranteed to
/// describe exactly this graph state — even across clone/restore
/// backtracking, where the same stamp can reappear after `*g = backup`.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    domtree: Option<Slot<DomTree>>,
    loops: Option<Slot<LoopForest>>,
    frequencies: Option<Slot<BlockFrequencies>>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The dominator tree of `g`, recomputing only if the CFG changed
    /// since the last lookup.
    pub fn domtree(&mut self, g: &Graph) -> Arc<DomTree> {
        let version = g.cfg_version();
        if let Some(slot) = &self.domtree {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let value = Arc::new(DomTree::compute(g));
        self.domtree = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The loop forest of `g`, recomputing only if the CFG changed since
    /// the last lookup. Pulls the dominator tree through the cache.
    pub fn loops(&mut self, g: &Graph) -> Arc<LoopForest> {
        let version = g.cfg_version();
        if let Some(slot) = &self.loops {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let dt = self.domtree(g);
        let value = Arc::new(LoopForest::compute(g, &dt));
        self.loops = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The block execution frequencies of `g`, recomputing only if the
    /// CFG (including branch probabilities) changed since the last
    /// lookup. Pulls dominators and loops through the cache.
    pub fn frequencies(&mut self, g: &Graph) -> Arc<BlockFrequencies> {
        let version = g.cfg_version();
        if let Some(slot) = &self.frequencies {
            if slot.version == version {
                self.stats.hits += 1;
                return Arc::clone(&slot.value);
            }
            self.stats.invalidations += 1;
        }
        self.stats.misses += 1;
        let dt = self.domtree(g);
        let loops = self.loops(g);
        let value = Arc::new(BlockFrequencies::compute(g, &dt, &loops));
        self.frequencies = Some(Slot {
            version,
            value: Arc::clone(&value),
        });
        value
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops all entries (counters are kept). Lookups after this are
    /// cold-start misses, not invalidations.
    pub fn clear(&mut self) {
        self.domtree = None;
        self.loops = None;
        self.frequencies = None;
    }

    /// Audits every entry that claims to describe the current graph state
    /// against a from-scratch recomputation, returning one
    /// [`LintId::StaleAnalysis`] diagnostic per divergent block.
    ///
    /// Validity in this cache is purely stamp-based, so a divergence means
    /// the stamping discipline itself broke (a mutation that should have
    /// bumped `cfg_version` but did not, or a reused stamp) — exactly the
    /// class of bug no unit test of an individual analysis can see. Stale
    /// entries (stamp ≠ current version) are skipped: they are invalid by
    /// contract and the next lookup replaces them anyway.
    ///
    /// Read-only: the audit never touches the slots or the counters.
    pub fn audit(&self, g: &Graph) -> Vec<Diagnostic> {
        let version = g.cfg_version();
        let mut out = Vec::new();
        let current = |v: u64| v == version;

        let any_current = self.domtree.as_ref().is_some_and(|s| current(s.version))
            || self.loops.as_ref().is_some_and(|s| current(s.version))
            || self
                .frequencies
                .as_ref()
                .is_some_and(|s| current(s.version));
        if !any_current {
            return out; // empty / all-stale cache audits for free
        }
        // One fresh recomputation shared across the three diffs.
        let fresh_dt = DomTree::compute(g);

        if let Some(slot) = self.domtree.as_ref().filter(|s| current(s.version)) {
            let fresh = &fresh_dt;
            for b in g.blocks() {
                if slot.value.idom(b) != fresh.idom(b) {
                    out.push(Diagnostic::new(
                        LintId::StaleAnalysis,
                        Some(b),
                        None,
                        format!(
                            "cached domtree stamped current disagrees at {b}: idom {:?} vs recomputed {:?}",
                            slot.value.idom(b),
                            fresh.idom(b)
                        ),
                    ));
                }
            }
            if slot.value.reverse_postorder() != fresh.reverse_postorder() {
                out.push(Diagnostic::new(
                    LintId::StaleAnalysis,
                    None,
                    None,
                    "cached domtree stamped current has a divergent reverse postorder".to_string(),
                ));
            }
        }
        if let Some(slot) = self.loops.as_ref().filter(|s| current(s.version)) {
            let fresh = LoopForest::compute(g, &fresh_dt);
            for b in g.blocks() {
                if slot.value.depth(b) != fresh.depth(b)
                    || slot.value.is_header(b) != fresh.is_header(b)
                {
                    out.push(Diagnostic::new(
                        LintId::StaleAnalysis,
                        Some(b),
                        None,
                        format!(
                            "cached loop forest stamped current disagrees at {b}: depth {} header {} vs recomputed depth {} header {}",
                            slot.value.depth(b),
                            slot.value.is_header(b),
                            fresh.depth(b),
                            fresh.is_header(b)
                        ),
                    ));
                }
            }
        }
        if let Some(slot) = self.frequencies.as_ref().filter(|s| current(s.version)) {
            let fresh_loops = LoopForest::compute(g, &fresh_dt);
            let fresh = BlockFrequencies::compute(g, &fresh_dt, &fresh_loops);
            // Exact comparison is deliberate: recomputing the same input
            // is deterministic, so any difference is a staleness bug.
            for b in g.blocks() {
                if slot.value.freq(b).to_bits() != fresh.freq(b).to_bits() {
                    out.push(Diagnostic::new(
                        LintId::StaleAnalysis,
                        Some(b),
                        None,
                        format!(
                            "cached frequencies stamped current disagree at {b}: {} vs recomputed {}",
                            slot.value.freq(b),
                            fresh.freq(b)
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::parse_module;

    fn diamond() -> Graph {
        let m = parse_module(
            "func @f(c: bool) {\n\
             entry:\n  branch c, bt, bf, prob 0.5\n\
             bt:\n  jump bm\n\
             bf:\n  jump bm\n\
             bm:\n  return\n}",
        )
        .unwrap();
        m.graphs.into_iter().next().unwrap()
    }

    #[test]
    fn repeat_lookups_hit() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        let f1 = cache.frequencies(&g);
        // First call misses all three (frequencies pulls domtree + loops);
        // the loops→domtree pull already hits.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 1);
        let f2 = cache.frequencies(&g);
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn cfg_mutation_invalidates() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        g.add_block();
        let d2 = cache.domtree(&g);
        assert!(!Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn value_mutation_preserves_cfg_analyses() {
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let d1 = cache.domtree(&g);
        let entry = g.entry();
        use dbds_ir::{ConstValue, Inst, Type};
        g.append_inst(entry, Inst::Const(ConstValue::Int(7)), Type::Int);
        let d2 = cache.domtree(&g);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().invalidations, 0);
    }

    #[test]
    fn restored_backup_revalidates_old_entry() {
        // Backtracking pattern: clone, diverge, restore. The entry cached
        // for the backup's stamp must be valid again after the restore.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        let backup = g.clone();
        let d_before = cache.domtree(&g);
        g.add_block();
        cache.domtree(&g);
        g = backup;
        let d_after = cache.domtree(&g);
        // The diverged entry replaced the slot, so this recomputes — but it
        // must recompute (stamp differs), never serve the diverged tree.
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(
            d_before.idom(g.merge_blocks()[0]),
            d_after.idom(g.merge_blocks()[0])
        );
    }

    #[test]
    fn audit_accepts_consistent_cache() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.frequencies(&g);
        assert!(cache.audit(&g).is_empty());
        // An empty cache is trivially consistent too.
        assert!(AnalysisCache::new().audit(&g).is_empty());
    }

    #[test]
    fn audit_skips_entries_with_stale_stamps() {
        // A stale stamp is not a finding: it is invalid by contract and
        // the next lookup replaces it.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        g.add_block();
        assert!(cache.audit(&g).is_empty());
    }

    #[test]
    fn audit_detects_stamp_forgery() {
        // Fail-first corpus entry for LintId::StaleAnalysis: simulate a
        // stamping-discipline bug by computing the domtree, mutating the
        // CFG in a way that changes dominators, then forging the cached
        // entry's stamp to the new epoch. The audit must notice the
        // cached tree no longer matches a fresh recomputation.
        let mut g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        // bm (the merge) is currently dominated by entry. Retarget bf's
        // jump so bm's only pred is bt, changing bm's idom to bt.
        use dbds_ir::Terminator;
        let bf = g.blocks().nth(2).unwrap();
        let ret = g.blocks().nth(3).unwrap();
        assert_eq!(g.succs(bf), vec![ret]);
        let bt = g.blocks().nth(1).unwrap();
        g.set_terminator(bf, Terminator::Jump { target: bt });
        let forged_version = g.cfg_version();
        let slot = cache.domtree.as_mut().unwrap();
        slot.version = forged_version; // the bug under test
        let findings = cache.audit(&g);
        assert!(
            !findings.is_empty(),
            "forged stamp must surface as StaleAnalysis"
        );
        assert!(findings
            .iter()
            .all(|d| d.lint == dbds_ir::LintId::StaleAnalysis));
    }

    #[test]
    fn clear_forces_cold_misses() {
        let g = diamond();
        let mut cache = AnalysisCache::new();
        cache.domtree(&g);
        cache.clear();
        cache.domtree(&g);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 0);
    }
}
