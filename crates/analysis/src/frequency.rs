//! Relative basic-block execution frequencies.
//!
//! The paper scales each duplication candidate's benefit by "a basic
//! block's execution frequency relative to the maximum frequency of a
//! compilation unit" (§5.3), derived from HotSpot branch profiles. We
//! reproduce that with the classic Wu–Larus-style estimate: branch
//! probabilities stored on [`dbds_ir::Terminator::Branch`] are propagated
//! forward through the CFG in reverse postorder with back edges ignored,
//! and every natural-loop header is scaled by its expected trip count.
//! The trip count is derived from the profile itself — a loop whose
//! header exits with probability `q` runs `1/q` iterations in expectation
//! — clamped to [`MIN_TRIP`]..=[`MAX_TRIP`]; loops that exit elsewhere
//! fall back to [`LOOP_FACTOR`]. Scaling *during* propagation keeps the
//! flow conserved: the code after a loop runs as often as the code before
//! it, no matter how hot the loop body is.

use crate::domtree::DomTree;
use crate::loops::LoopForest;
use dbds_ir::{BlockId, Graph, Terminator};

/// Assumed iterations per loop when the profile gives no exit estimate.
pub const LOOP_FACTOR: f64 = 10.0;

/// Lower clamp for profile-derived trip counts.
pub const MIN_TRIP: f64 = 1.0;

/// Upper clamp for profile-derived trip counts.
pub const MAX_TRIP: f64 = 100.0;

/// Cap on the total frequency of any block.
pub const MAX_FREQUENCY: f64 = 1.0e12;

/// Estimated execution frequencies for every reachable block.
#[derive(Clone, Debug)]
pub struct BlockFrequencies {
    freq: Vec<f64>,
    max: f64,
}

impl BlockFrequencies {
    /// Computes frequencies for `g` from its branch probabilities.
    pub fn compute(g: &Graph, dt: &DomTree, loops: &LoopForest) -> Self {
        let n = g.block_count();

        // Expected trip count per loop header.
        let mut trip = vec![1.0f64; n];
        for l in loops.loops() {
            let in_loop = |b: BlockId| l.blocks.contains(&b);
            let exit_prob: f64 = g
                .succs(l.header)
                .into_iter()
                .filter(|&s| !in_loop(s))
                .map(|s| edge_probability(g, l.header, s))
                .sum();
            let t = if exit_prob > 0.0 {
                (1.0 / exit_prob).clamp(MIN_TRIP, MAX_TRIP)
            } else {
                LOOP_FACTOR
            };
            // Nested loops multiply: each enclosing loop already scaled
            // the header's incoming frequency, so the per-header factor
            // composes naturally during propagation.
            trip[l.header.index()] = t;
        }

        let mut freq = vec![0.0f64; n];
        freq[g.entry().index()] = 1.0;
        for &b in dt.reverse_postorder().iter().skip(1) {
            let mut f = 0.0;
            for &p in g.preds(b) {
                if !dt.is_reachable(p) || dt.rpo_index(p) >= dt.rpo_index(b) {
                    continue; // back edge or dead predecessor
                }
                f += freq[p.index()] * edge_probability(g, p, b);
            }
            // Loop headers run once per entry times the expected trips;
            // exits then see freq(header) × exit_prob ≈ the entry
            // frequency, conserving flow through the loop.
            f *= trip[b.index()];
            freq[b.index()] = f.min(MAX_FREQUENCY);
        }
        let max = dt
            .reverse_postorder()
            .iter()
            .map(|&b| freq[b.index()])
            .fold(0.0f64, f64::max);
        BlockFrequencies { freq, max }
    }

    /// Estimated execution frequency of `b` (the entry block is 1.0).
    /// Returns 0 for unreachable blocks.
    pub fn freq(&self, b: BlockId) -> f64 {
        self.freq[b.index()]
    }

    /// The maximum frequency in the compilation unit.
    pub fn max_freq(&self) -> f64 {
        self.max
    }

    /// Frequency of `b` relative to the unit's maximum, in `[0, 1]`. This
    /// is the probability term `p` of the paper's `shouldDuplicate`
    /// heuristic.
    pub fn relative(&self, b: BlockId) -> f64 {
        if self.max == 0.0 {
            0.0
        } else {
            self.freq[b.index()] / self.max
        }
    }
}

/// The probability of taking the edge `from → to`.
pub fn edge_probability(g: &Graph, from: BlockId, to: BlockId) -> f64 {
    match g.terminator(from) {
        Terminator::Jump { .. } => 1.0,
        Terminator::Branch {
            then_bb,
            else_bb,
            prob_then,
            ..
        } => {
            // Successors are guaranteed distinct.
            if *then_bb == to {
                *prob_then
            } else if *else_bb == to {
                1.0 - *prob_then
            } else {
                0.0
            }
        }
        Terminator::Return { .. } | Terminator::Deopt => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn analyze(g: &Graph) -> BlockFrequencies {
        let dt = DomTree::compute(g);
        let lf = LoopForest::compute(g, &dt);
        BlockFrequencies::compute(g, &dt, &lf)
    }

    /// Builds `entry → header{branch body 0.9 / exit 0.1} ← body` and
    /// returns `(graph, header, body, exit)`.
    fn simple_loop(prob_body: f64) -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("l", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, prob_body);
        b.switch_to(exit);
        b.ret(Some(i));
        (b.finish(), header, body, exit)
    }

    #[test]
    fn diamond_splits_by_probability() {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.9);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        let g = b.finish();
        let f = analyze(&g);
        assert!((f.freq(g.entry()) - 1.0).abs() < 1e-12);
        assert!((f.freq(bt) - 0.9).abs() < 1e-12);
        assert!((f.freq(bf) - 0.1).abs() < 1e-12);
        assert!((f.freq(bm) - 1.0).abs() < 1e-12);
        assert!((f.relative(bf) - 0.1).abs() < 1e-12);
        assert!((f.max_freq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_trip_count_follows_exit_probability() {
        let (g, header, body, exit) = simple_loop(0.9);
        let f = analyze(&g);
        // Exit probability 0.1 → expected 10 trips.
        assert!((f.freq(header) - 10.0).abs() < 1e-9);
        assert!((f.freq(body) - 9.0).abs() < 1e-9);
        // Flow conservation: the exit runs once per function entry.
        assert!((f.freq(exit) - 1.0).abs() < 1e-9);
        assert_eq!(f.max_freq(), f.freq(header));
    }

    #[test]
    fn code_after_a_hot_loop_is_not_starved() {
        // The bug this guards against: propagating the raw exit-edge
        // probability makes everything after a loop look nearly dead.
        let (g, _, _, exit) = simple_loop(0.99);
        let f = analyze(&g);
        assert!(
            (f.freq(exit) - 1.0).abs() < 1e-9,
            "exit frequency {} must equal the entry frequency",
            f.freq(exit)
        );
    }

    #[test]
    fn trip_counts_are_clamped() {
        let (g, header, _, _) = simple_loop(0.9999); // 10000 expected trips
        let f = analyze(&g);
        assert!((f.freq(header) - MAX_TRIP).abs() < 1e-9);
    }

    #[test]
    fn nested_loops_compose() {
        // outer header oh (exit 0.1) contains inner header ih (exit 0.1):
        // ih runs ≈ 10 × 10 per entry.
        let mut b = GraphBuilder::new("n", &[Type::Bool, Type::Bool], empty_table());
        let c1 = b.param(0);
        let c2 = b.param(1);
        let oh = b.new_block();
        let ih = b.new_block();
        let ibody = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        b.jump(oh);
        b.switch_to(olatch);
        b.jump(oh);
        b.switch_to(oh);
        b.branch(c1, ih, exit, 0.9);
        b.switch_to(ibody);
        b.jump(ih);
        b.switch_to(ih);
        b.branch(c2, ibody, olatch, 0.9);
        b.switch_to(exit);
        b.ret(None);
        let g = b.finish();
        let f = analyze(&g);
        assert!((f.freq(oh) - 10.0).abs() < 1e-9);
        assert!((f.freq(ih) - 90.0).abs() < 1e-9);
        // Flow returns to the outer latch once per outer iteration…
        assert!((f.freq(olatch) - 9.0).abs() < 1e-9);
        // …and leaves the nest exactly once per entry.
        assert!((f.freq(exit) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loop_exiting_outside_header_uses_fallback_factor() {
        // header jumps into body; body decides: continue (back edge) or
        // exit. The header has no exit edge, so the fallback applies.
        let mut b = GraphBuilder::new("f", &[Type::Bool], empty_table());
        let c = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.jump(body);
        b.switch_to(body);
        b.branch(c, header, exit, 0.9);
        b.switch_to(exit);
        b.ret(None);
        let g = b.finish();
        let f = analyze(&g);
        assert!((f.freq(header) - LOOP_FACTOR).abs() < 1e-9);
    }

    #[test]
    fn edge_probabilities() {
        let mut b = GraphBuilder::new("e", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.7);
        b.switch_to(bt);
        b.ret(None);
        b.switch_to(bf);
        b.ret(None);
        let g = b.finish();
        assert!((edge_probability(&g, g.entry(), bt) - 0.7).abs() < 1e-12);
        assert!((edge_probability(&g, g.entry(), bf) - 0.3).abs() < 1e-12);
        assert_eq!(edge_probability(&g, bt, bf), 0.0);
    }
}
