//! Natural-loop detection.
//!
//! Finds back edges (`latch → header` where the header dominates the
//! latch), the blocks of each natural loop, and the per-block loop depth.
//! Block frequencies use the depth to scale loop bodies the way HotSpot
//! profiles would.

use crate::domtree::DomTree;
use dbds_ir::{BlockId, Graph};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of the back edges into `header`.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, including the header.
    pub blocks: Vec<BlockId>,
}

/// All natural loops of a graph, plus per-block nesting depth.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    depth: Vec<u32>,
}

impl LoopForest {
    /// Detects the natural loops of `g`.
    ///
    /// Loops sharing a header are merged into one [`LoopInfo`] with
    /// multiple latches (the usual convention).
    pub fn compute(g: &Graph, dt: &DomTree) -> Self {
        let n = g.block_count();
        let mut loops: Vec<LoopInfo> = Vec::new();
        // Group back edges by header, in RPO order for determinism.
        for &b in dt.reverse_postorder() {
            for s in g.succs(b) {
                if dt.dominates(s, b) {
                    // b -> s is a back edge with header s.
                    match loops.iter_mut().find(|l| l.header == s) {
                        Some(l) => l.latches.push(b),
                        None => loops.push(LoopInfo {
                            header: s,
                            latches: vec![b],
                            blocks: Vec::new(),
                        }),
                    }
                }
            }
        }
        // Collect loop bodies: backwards reachability from the latches,
        // stopping at the header.
        for l in &mut loops {
            let mut in_loop = vec![false; n];
            in_loop[l.header.index()] = true;
            let mut stack: Vec<BlockId> = l.latches.clone();
            for &latch in &l.latches {
                in_loop[latch.index()] = true;
            }
            while let Some(b) = stack.pop() {
                for &p in g.preds(b) {
                    if dt.is_reachable(p) && !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            l.blocks = (0..n)
                .map(BlockId::from_index)
                .filter(|b| in_loop[b.index()])
                .collect();
        }
        let mut depth = vec![0u32; n];
        for l in &loops {
            for &b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        LoopForest { loops, depth }
    }

    /// The detected loops, outermost-header-first in RPO order.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Returns `true` if `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.loops.iter().any(|l| l.header == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn simple_loop() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("l", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        (b.finish(), header, body, exit)
    }

    #[test]
    fn finds_single_loop() {
        let (g, header, body, exit) = simple_loop();
        let dt = DomTree::compute(&g);
        let lf = LoopForest::compute(&g, &dt);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, header);
        assert_eq!(l.latches, vec![body]);
        assert!(l.blocks.contains(&header) && l.blocks.contains(&body));
        assert!(!l.blocks.contains(&exit));
        assert_eq!(lf.depth(header), 1);
        assert_eq!(lf.depth(body), 1);
        assert_eq!(lf.depth(exit), 0);
        assert_eq!(lf.depth(g.entry()), 0);
        assert!(lf.is_header(header));
        assert!(!lf.is_header(body));
    }

    #[test]
    fn straightline_has_no_loops() {
        let mut b = GraphBuilder::new("s", &[], empty_table());
        b.ret(None);
        let g = b.finish();
        let dt = DomTree::compute(&g);
        let lf = LoopForest::compute(&g, &dt);
        assert!(lf.loops().is_empty());
    }

    #[test]
    fn nested_loops_have_depth_two() {
        // entry -> oh; oh -> ih | exit; ih -> ibody | oh_latch(back to oh);
        // ibody -> ih (back edge)
        let mut b = GraphBuilder::new("n", &[Type::Bool, Type::Bool], empty_table());
        let c1 = b.param(0);
        let c2 = b.param(1);
        let oh = b.new_block();
        let ih = b.new_block();
        let ibody = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        b.jump(oh);
        b.switch_to(olatch);
        b.jump(oh);
        b.switch_to(oh);
        b.branch(c1, ih, exit, 0.9);
        b.switch_to(ibody);
        b.jump(ih);
        b.switch_to(ih);
        b.branch(c2, ibody, olatch, 0.9);
        b.switch_to(exit);
        b.ret(None);
        let g = b.finish();
        let dt = DomTree::compute(&g);
        let lf = LoopForest::compute(&g, &dt);
        assert_eq!(lf.loops().len(), 2);
        assert_eq!(lf.depth(ih), 2);
        assert_eq!(lf.depth(ibody), 2);
        assert_eq!(lf.depth(oh), 1);
        assert_eq!(lf.depth(olatch), 1);
        assert_eq!(lf.depth(exit), 0);
    }

    #[test]
    fn two_latches_one_header() {
        // header with two back edges from distinct latches.
        let mut b = GraphBuilder::new("t", &[Type::Bool, Type::Bool], empty_table());
        let c1 = b.param(0);
        let c2 = b.param(1);
        let h = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let mid = b.new_block();
        let exit = b.new_block();
        b.jump(h);
        b.switch_to(l1);
        b.jump(h);
        b.switch_to(l2);
        b.jump(h);
        b.switch_to(h);
        b.branch(c1, mid, exit, 0.9);
        b.switch_to(mid);
        b.branch(c2, l1, l2, 0.5);
        b.switch_to(exit);
        b.ret(None);
        let g = b.finish();
        let dt = DomTree::compute(&g);
        let lf = LoopForest::compute(&g, &dt);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, h);
        assert_eq!(l.latches.len(), 2);
        assert_eq!(lf.depth(mid), 1);
    }
}
