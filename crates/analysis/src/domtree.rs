//! Dominator tree construction and queries.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm over a reverse
//! postorder of the CFG, then numbers the dominator tree with an Euler
//! interval so that [`DomTree::dominates`] is O(1). The DBDS simulation
//! tier (§4.1 of the paper) is a depth-first traversal of this tree.

use dbds_ir::{BlockId, Graph};

/// A dominator tree over the reachable blocks of a [`Graph`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the entry block and for
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Reverse postorder of the reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    rpo_index: Vec<usize>,
    /// Euler-tour entry time per block in the dominator tree.
    pre: Vec<usize>,
    /// Euler-tour exit time per block in the dominator tree.
    post: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.block_count();
        let rpo = reverse_postorder(g);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[g.entry().index()] = Some(g.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in g.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's self-idom is an algorithmic artifact; expose None.
        idom[g.entry().index()] = None;

        let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in &rpo {
            if let Some(p) = idom[b.index()] {
                children[p.index()].push(b);
            }
        }

        // Euler tour for O(1) dominance queries.
        let mut pre = vec![usize::MAX; n];
        let mut post = vec![usize::MAX; n];
        let mut clock = 0;
        let mut stack: Vec<(BlockId, usize)> = vec![(g.entry(), 0)];
        pre[g.entry().index()] = clock;
        clock += 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ch = &children[b.index()];
            if *next < ch.len() {
                let c = ch[*next];
                *next += 1;
                pre[c.index()] = clock;
                clock += 1;
                stack.push((c, 0));
            } else {
                post[b.index()] = clock;
                clock += 1;
                stack.pop();
            }
        }

        DomTree {
            idom,
            children,
            rpo,
            rpo_index,
            pre,
            post,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry block or an
    /// unreachable block).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// The children of `b` in the dominator tree, ordered by reverse
    /// postorder of the CFG.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Does `a` dominate `b` (reflexively)? O(1). Unreachable blocks
    /// neither dominate nor are dominated.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        self.pre[a.index()] <= self.pre[b.index()] && self.post[b.index()] <= self.post[a.index()]
    }

    /// Does `a` strictly dominate `b`?
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Is `b` reachable from the entry block?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// The reverse postorder of the reachable blocks (entry first).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in reverse postorder.
    ///
    /// # Panics
    ///
    /// Panics if `b` is unreachable.
    pub fn rpo_index(&self, b: BlockId) -> usize {
        let i = self.rpo_index[b.index()];
        assert_ne!(i, usize::MAX, "{b} is unreachable");
        i
    }

    /// Depth-first preorder of the dominator tree (entry first). This is
    /// the traversal order of the DBDS simulation tier.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut order: Vec<BlockId> = self.rpo.clone();
        order.sort_by_key(|b| self.pre[b.index()]);
        order
    }
}

fn intersect(idom: &[Option<BlockId>], rpo_index: &[usize], a: BlockId, b: BlockId) -> BlockId {
    let (mut a, mut b) = (a, b);
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// Computes a reverse postorder of the blocks reachable from the entry.
pub fn reverse_postorder(g: &Graph) -> Vec<BlockId> {
    let n = g.block_count();
    let mut visited = vec![false; n];
    let mut post: Vec<BlockId> = Vec::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(g.entry(), 0)];
    visited[g.entry().index()] = true;
    while let Some(&mut (b, ref mut child)) = stack.last_mut() {
        let succs = g.succs(b);
        if *child < succs.len() {
            let s = succs[*child];
            *child += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    /// entry → {bt, bf} → bm → exit
    fn diamond() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        (b.finish(), bt, bf, bm)
    }

    #[test]
    fn diamond_idoms() {
        let (g, bt, bf, bm) = diamond();
        let dt = DomTree::compute(&g);
        let e = g.entry();
        assert_eq!(dt.idom(e), None);
        assert_eq!(dt.idom(bt), Some(e));
        assert_eq!(dt.idom(bf), Some(e));
        assert_eq!(dt.idom(bm), Some(e)); // merge dominated by split, not branches
        assert!(dt.dominates(e, bm));
        assert!(!dt.dominates(bt, bm));
        assert!(!dt.dominates(bt, bf));
        assert!(dt.dominates(bt, bt));
        assert!(dt.strictly_dominates(e, bt));
        assert!(!dt.strictly_dominates(e, e));
    }

    #[test]
    fn chain_dominance() {
        let mut b = GraphBuilder::new("c", &[], empty_table());
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.jump(b2);
        b.switch_to(b2);
        b.ret(None);
        let g = b.finish();
        let dt = DomTree::compute(&g);
        assert!(dt.dominates(g.entry(), b2));
        assert!(dt.dominates(b1, b2));
        assert_eq!(dt.idom(b2), Some(b1));
        assert_eq!(dt.children(g.entry()), &[b1]);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = GraphBuilder::new("l", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let g = b.finish();
        let dt = DomTree::compute(&g);
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert!(!dt.dominates(body, header));
        assert_eq!(dt.idom(body), Some(header));
    }

    #[test]
    fn unreachable_blocks_are_outside() {
        let (mut g, _, _, _) = diamond();
        let orphan = g.add_block();
        let dt = DomTree::compute(&g);
        assert!(!dt.is_reachable(orphan));
        assert!(!dt.dominates(g.entry(), orphan));
        assert!(!dt.dominates(orphan, g.entry()));
        assert_eq!(dt.idom(orphan), None);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_forward_edges() {
        let (g, bt, bf, bm) = diamond();
        let dt = DomTree::compute(&g);
        let rpo = dt.reverse_postorder();
        assert_eq!(rpo[0], g.entry());
        assert!(dt.rpo_index(bt) < dt.rpo_index(bm));
        assert!(dt.rpo_index(bf) < dt.rpo_index(bm));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn preorder_visits_parents_before_children() {
        let (g, ..) = diamond();
        let dt = DomTree::compute(&g);
        let pre = dt.preorder();
        assert_eq!(pre[0], g.entry());
        let pos = |b: BlockId| pre.iter().position(|&x| x == b).unwrap();
        for &b in &pre {
            if let Some(p) = dt.idom(b) {
                assert!(pos(p) < pos(b));
            }
        }
    }
}
