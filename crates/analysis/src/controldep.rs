//! Control-dependence graph derived from the post-dominator tree.
//!
//! Ferrante–Ottenstein–Warren: block `b` is control dependent on branch
//! `a` iff `b` post-dominates some successor of `a` but does not strictly
//! post-dominate `a` itself — i.e. `a`'s branch decides whether `b`
//! executes. The construction walks, for every split block `a` and each
//! of its successors `s`, the immediate-post-dominator chain from `s` up
//! to (exclusive) `ipdom(a)`; every block on the walk is control
//! dependent on `a`. This is the same chain walk as the post-dominance
//! frontier, recorded edge-wise in both directions.

use crate::postdom::PostDomTree;
use dbds_ir::{BlockId, Graph};

/// The control-dependence relation over the reachable blocks of a
/// [`Graph`]. Both adjacency directions are precomputed, sorted by block
/// index and deduplicated.
#[derive(Clone, Debug)]
pub struct ControlDepGraph {
    /// Per branch block `a`: the blocks control dependent on `a`.
    dependents: Vec<Vec<BlockId>>,
    /// Per block `b`: the branch blocks `b` is control dependent on.
    controllers: Vec<Vec<BlockId>>,
}

impl ControlDepGraph {
    /// Computes the control-dependence graph of `g` from its
    /// post-dominator tree.
    pub fn compute(g: &Graph, pd: &PostDomTree) -> Self {
        let n = g.block_count();
        let mut dependents: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut controllers: Vec<Vec<BlockId>> = vec![Vec::new(); n];

        for a in g.blocks() {
            if g.succs(a).len() < 2 || !pd.in_domain(a) {
                continue;
            }
            let target = pd.ipdom(a);
            for s in g.succs(a) {
                if !pd.in_domain(s) {
                    continue;
                }
                let mut runner = Some(s);
                while runner != target {
                    let Some(r) = runner else { break };
                    dependents[a.index()].push(r);
                    controllers[r.index()].push(a);
                    runner = pd.ipdom(r);
                }
            }
        }

        for set in dependents.iter_mut().chain(controllers.iter_mut()) {
            set.sort_unstable();
            set.dedup();
        }
        ControlDepGraph {
            dependents,
            controllers,
        }
    }

    /// The blocks whose execution is decided by the branch in `a`
    /// (sorted, deduplicated).
    pub fn dependents(&self, a: BlockId) -> &[BlockId] {
        &self.dependents[a.index()]
    }

    /// The branch blocks that decide whether `b` executes (sorted,
    /// deduplicated).
    pub fn controllers(&self, b: BlockId) -> &[BlockId] {
        &self.controllers[b.index()]
    }

    /// Is `b` control dependent on `a`?
    pub fn depends_on(&self, b: BlockId, a: BlockId) -> bool {
        self.dependents[a.index()].binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, Graph, GraphBuilder, Type};
    use std::sync::Arc;

    fn cdg(g: &Graph) -> ControlDepGraph {
        ControlDepGraph::compute(g, &PostDomTree::compute(g))
    }

    #[test]
    fn diamond_arms_depend_on_the_split() {
        let mut b = GraphBuilder::new("d", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        b.ret(None);
        let g = b.finish();
        let d = cdg(&g);
        let e = g.entry();
        assert_eq!(d.dependents(e), &[bt, bf]);
        assert!(d.depends_on(bt, e));
        assert!(d.depends_on(bf, e));
        // The merge runs either way: not control dependent on the split.
        assert!(!d.depends_on(bm, e));
        assert!(d.controllers(bm).is_empty());
        assert_eq!(d.controllers(bt), &[e]);
    }

    #[test]
    fn loop_header_depends_on_itself() {
        let mut b = GraphBuilder::new("l", &[Type::Int], Arc::new(ClassTable::new()));
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let g = b.finish();
        let d = cdg(&g);
        // Whether another iteration runs is decided by the header's own
        // branch: header and body are control dependent on the header.
        assert_eq!(d.dependents(header), &[header, body]);
        assert!(d.depends_on(header, header));
        assert!(!d.depends_on(exit, header));
    }
}
