//! Property test for the versioned [`AnalysisCache`]: after an arbitrary
//! interleaving of queries and graph mutations, every analysis pulled
//! from the cache must be identical to a fresh `::compute` on the current
//! graph. This pins down the invalidation contract — a stale entry served
//! after a CFG mutation would show up as a divergent dominator, loop
//! depth, or block frequency.

use dbds_analysis::{AnalysisCache, BlockFrequencies, DomTree, LoopForest};
use dbds_ir::{ClassTable, Graph, Terminator, Type};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a random CFG over `n` blocks from a shape seed (same scheme as
/// `dominance_props.rs`): every block gets a terminator chosen from
/// jump/branch/return so the graph is always well-formed.
fn random_cfg(n: usize, choices: &[u8]) -> Graph {
    let mut g = Graph::new("rand", &[Type::Bool], Arc::new(ClassTable::new()));
    let cond = g.param_values()[0];
    let mut blocks = vec![g.entry()];
    for _ in 1..n {
        blocks.push(g.add_block());
    }
    for (i, &b) in blocks.iter().enumerate() {
        let c = choices.get(i).copied().unwrap_or(0);
        let t1 = blocks[(i + 1 + c as usize) % n];
        let t2 = blocks[(i + 2 + (c as usize) * 3) % n];
        let term = match c % 4 {
            0 | 1 if t1 != b || c % 4 == 0 => Terminator::Jump { target: t1 },
            2 if t1 != t2 => Terminator::Branch {
                cond,
                then_bb: t1,
                else_bb: t2,
                prob_then: 0.5,
            },
            _ => Terminator::Return { value: None },
        };
        g.set_terminator(b, term);
    }
    g
}

/// One random structural mutation, selected by `(kind, bsel, csel)`.
fn mutate(g: &mut Graph, kind: u8, bsel: u8, csel: u8) {
    let blocks: Vec<_> = g.blocks().collect();
    let b = blocks[bsel as usize % blocks.len()];
    match kind % 3 {
        0 => {
            // Retarget the block's terminator.
            let cond = g.param_values()[0];
            let t1 = blocks[(bsel as usize + 1 + csel as usize) % blocks.len()];
            let t2 = blocks[(csel as usize * 5 + 2) % blocks.len()];
            let term = match csel % 3 {
                0 => Terminator::Jump { target: t1 },
                1 if t1 != t2 => Terminator::Branch {
                    cond,
                    then_bb: t1,
                    else_bb: t2,
                    prob_then: 0.7,
                },
                _ => Terminator::Return { value: None },
            };
            g.set_terminator(b, term);
        }
        1 => {
            // Reweigh an existing branch (frequencies must follow).
            if matches!(g.terminator(b), Terminator::Branch { .. }) {
                g.set_branch_probability(b, 0.1 + 0.8 * (csel as f64 / 8.0));
            } else {
                g.set_terminator(b, Terminator::Return { value: None });
            }
        }
        _ => {
            // Grow the block set (analyses size tables by block count).
            let fresh = g.add_block();
            g.set_terminator(fresh, Terminator::Return { value: None });
            if csel.is_multiple_of(2) {
                g.set_terminator(b, Terminator::Jump { target: fresh });
            }
        }
    }
}

/// Asserts the cached view of `g` equals analyses computed from scratch.
fn assert_cache_is_fresh(g: &Graph, cache: &mut AnalysisCache) {
    let dt_fresh = DomTree::compute(g);
    let lf_fresh = LoopForest::compute(g, &dt_fresh);
    let fr_fresh = BlockFrequencies::compute(g, &dt_fresh, &lf_fresh);
    let dt = cache.domtree(g);
    let lf = cache.loops(g);
    let fr = cache.frequencies(g);
    for b in g.blocks() {
        assert_eq!(dt.idom(b), dt_fresh.idom(b), "idom({b}) diverged");
        assert_eq!(
            dt.is_reachable(b),
            dt_fresh.is_reachable(b),
            "reachability({b}) diverged"
        );
        assert_eq!(lf.depth(b), lf_fresh.depth(b), "loop depth({b}) diverged");
        assert_eq!(
            lf.is_header(b),
            lf_fresh.is_header(b),
            "header({b}) diverged"
        );
        // The computation is deterministic, so cached-vs-fresh must agree
        // bit-for-bit, not just approximately.
        assert_eq!(fr.freq(b).to_bits(), fr_fresh.freq(b).to_bits());
    }
    assert_eq!(dt.reverse_postorder(), dt_fresh.reverse_postorder());
    assert_eq!(lf.loops().len(), lf_fresh.loops().len());
}

proptest! {
    /// Random mutation interleavings never let the cache serve a stale
    /// analysis.
    #[test]
    fn cached_analyses_equal_fresh_computes(
        n in 2usize..12,
        choices in proptest::collection::vec(0u8..8, 16),
        muts in proptest::collection::vec((0u8..3, 0u8..16, 0u8..8), 1..8),
    ) {
        let mut g = random_cfg(n, &choices);
        let mut cache = AnalysisCache::new();
        // Cold start agrees.
        assert_cache_is_fresh(&g, &mut cache);
        for (kind, bsel, csel) in muts {
            // Warm the cache (possibly a hit), mutate, re-check.
            let _ = cache.frequencies(&g);
            mutate(&mut g, kind, bsel, csel);
            assert_cache_is_fresh(&g, &mut cache);
        }
        // Repeated queries on the now-stable graph are hits and still
        // agree with a fresh compute.
        let before = cache.stats();
        assert_cache_is_fresh(&g, &mut cache);
        let after = cache.stats();
        prop_assert_eq!(after.misses, before.misses);
        prop_assert!(after.hits > before.hits);
    }
}
