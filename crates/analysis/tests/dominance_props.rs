//! Property tests: the Cooper–Harvey–Kennedy dominator tree agrees with
//! the *definition* of dominance — `a` dominates `b` iff every entry→`b`
//! path passes through `a`, i.e. removing `a` makes `b` unreachable —
//! and the reverse-CFG analyses agree with their definitions: the
//! post-dominator tree with path-to-exit cuts, and the control-dependence
//! graph with the naive Ferrante–Ottenstein–Warren edge scan.

use dbds_analysis::{ControlDepGraph, DomTree, PostDomTree};
use dbds_ir::{BlockId, ClassTable, Graph, Terminator, Type};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a random CFG over `n` blocks from a shape seed. Every block
/// gets a terminator chosen from jump/branch/return so the graph is
/// always well-formed (no φs are involved).
fn random_cfg(n: usize, choices: &[u8]) -> Graph {
    let mut g = Graph::new("rand", &[Type::Bool], Arc::new(ClassTable::new()));
    let cond = g.param_values()[0];
    let mut blocks = vec![g.entry()];
    for _ in 1..n {
        blocks.push(g.add_block());
    }
    for (i, &b) in blocks.iter().enumerate() {
        let c = choices.get(i).copied().unwrap_or(0);
        let t1 = blocks[(i + 1 + c as usize) % n];
        let t2 = blocks[(i + 2 + (c as usize) * 3) % n];
        let term = match c % 4 {
            0 | 1 if t1 != b || c % 4 == 0 => {
                // jumps (self-loops allowed)
                Terminator::Jump { target: t1 }
            }
            2 if t1 != t2 => Terminator::Branch {
                cond,
                then_bb: t1,
                else_bb: t2,
                prob_then: 0.5,
            },
            _ => Terminator::Return { value: None },
        };
        g.set_terminator(b, term);
    }
    g
}

/// Definition-based dominance: `b` unreachable when paths may not pass
/// through `a`.
fn dominates_by_definition(g: &Graph, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return reachable(g, None).contains(&b);
    }
    let without_a = reachable(g, Some(a));
    let with_all = reachable(g, None);
    with_all.contains(&b) && !without_a.contains(&b)
}

fn reachable(g: &Graph, blocked: Option<BlockId>) -> Vec<BlockId> {
    let mut seen = vec![false; g.block_count()];
    let mut stack = Vec::new();
    if Some(g.entry()) != blocked {
        seen[g.entry().index()] = true;
        stack.push(g.entry());
    }
    let mut out = Vec::new();
    while let Some(b) = stack.pop() {
        out.push(b);
        for s in g.succs(b) {
            if Some(s) != blocked && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    out
}

/// Whether `b` can reach any block in `exits` on a path avoiding
/// `blocked`. The exit set is the implementation's own (real exits plus
/// the deterministically chosen pseudo-exits of infinite regions), so the
/// definition below quantifies over exactly the paths the virtual exit
/// sees.
fn reaches_exit_avoiding(g: &Graph, from: BlockId, exits: &[BlockId], blocked: BlockId) -> bool {
    if from == blocked {
        return false;
    }
    let mut seen = vec![false; g.block_count()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        if exits.contains(&b) {
            return true;
        }
        for s in g.succs(b) {
            if s != blocked && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chk_matches_definition(n in 2usize..10, choices in proptest::collection::vec(0u8..8, 10)) {
        let g = random_cfg(n, &choices);
        let dt = DomTree::compute(&g);
        for a in g.blocks() {
            for b in g.blocks() {
                prop_assert_eq!(
                    dt.dominates(a, b),
                    dominates_by_definition(&g, a, b),
                    "{} dom {} disagrees on graph:\n{}",
                    a,
                    b,
                    g
                );
            }
        }
    }

    #[test]
    fn idom_is_the_closest_strict_dominator(n in 2usize..10, choices in proptest::collection::vec(0u8..8, 10)) {
        let g = random_cfg(n, &choices);
        let dt = DomTree::compute(&g);
        for b in g.blocks() {
            if let Some(idom) = dt.idom(b) {
                // idom strictly dominates b…
                prop_assert!(dt.strictly_dominates(idom, b));
                // …and every other strict dominator dominates the idom.
                for a in g.blocks() {
                    if a != b && dt.strictly_dominates(a, b) {
                        prop_assert!(dt.dominates(a, idom), "{a} sdom {b} but not dom {idom}");
                    }
                }
            }
        }
    }

    #[test]
    fn postdom_matches_definition(n in 2usize..10, choices in proptest::collection::vec(0u8..8, 10)) {
        let g = random_cfg(n, &choices);
        let pd = PostDomTree::compute(&g);
        // The virtual exit's children: real exits plus the pseudo-exits
        // the implementation attached for infinite regions.
        let exits: Vec<BlockId> = g
            .blocks()
            .filter(|&b| pd.in_domain(b) && g.succs(b).is_empty())
            .chain(pd.pseudo_exits().iter().copied())
            .collect();
        for a in g.blocks() {
            for b in g.blocks() {
                let by_definition = pd.in_domain(a)
                    && pd.in_domain(b)
                    && !reaches_exit_avoiding(&g, b, &exits, a);
                prop_assert_eq!(
                    pd.post_dominates(a, b),
                    by_definition,
                    "{} pdom {} disagrees on graph:\n{}",
                    a,
                    b,
                    g
                );
            }
        }
    }

    #[test]
    fn control_deps_match_the_naive_edge_scan(n in 2usize..10, choices in proptest::collection::vec(0u8..8, 10)) {
        // Ferrante–Ottenstein–Warren: `b` is control-dependent on `a`
        // iff some edge `a -> s` exists with `b` post-dominating `s` but
        // not strictly post-dominating `a`. Like the implementation, the
        // scan covers real branch blocks only — a pseudo-exit's implicit
        // virtual-exit edge is an analysis artifact, not a decision.
        let g = random_cfg(n, &choices);
        let pd = PostDomTree::compute(&g);
        let cdg = ControlDepGraph::compute(&g, &pd);
        for a in g.blocks() {
            for b in g.blocks() {
                let naive = pd.in_domain(a)
                    && pd.in_domain(b)
                    && g.succs(a).len() >= 2
                    && g.succs(a).into_iter().any(|s| {
                        pd.in_domain(s)
                            && pd.post_dominates(b, s)
                            && !pd.strictly_post_dominates(b, a)
                    });
                prop_assert_eq!(
                    cdg.depends_on(b, a),
                    naive,
                    "{} cdep {} disagrees on graph:\n{}",
                    b,
                    a,
                    g
                );
            }
        }
    }

    #[test]
    fn rpo_orders_dominators_first(n in 2usize..10, choices in proptest::collection::vec(0u8..8, 10)) {
        let g = random_cfg(n, &choices);
        let dt = DomTree::compute(&g);
        for &a in dt.reverse_postorder() {
            for &b in dt.reverse_postorder() {
                if dt.strictly_dominates(a, b) {
                    prop_assert!(dt.rpo_index(a) < dt.rpo_index(b));
                }
            }
        }
    }
}
