//! Pins the ABA-safety contract between the undo log and the
//! [`AnalysisCache`]: `rollback_txn` restores the graph's version stamps
//! to their `begin_txn` values, so cache entries validated *before* the
//! transaction revalidate as pure hits *after* the rollback — exactly as
//! if the mutations had never happened. Stamps are globally unique and
//! never reused, so a hit after rollback can only mean the graph really
//! is back in the stamped state.

use dbds_analysis::AnalysisCache;
use dbds_ir::{ClassTable, Graph, Terminator, Type};
use std::sync::Arc;

/// Entry → A → return, plus a detached spare block to mutate towards.
fn straight_line() -> (Graph, dbds_ir::BlockId) {
    let mut g = Graph::new("s", &[Type::Int], Arc::new(ClassTable::new()));
    let a = g.add_block();
    let spare = g.add_block();
    g.set_terminator(g.entry(), Terminator::Jump { target: a });
    g.set_terminator(a, Terminator::Return { value: None });
    g.set_terminator(spare, Terminator::Return { value: None });
    (g, a)
}

#[test]
fn pre_txn_entries_revalidate_as_pure_hits_after_rollback() {
    let (mut g, a) = straight_line();
    let mut cache = AnalysisCache::new();

    // Populate every analysis — forward and reverse — against the
    // pre-txn stamps.
    let dom_before = cache.domtree(&g);
    cache.loops(&g);
    cache.frequencies(&g);
    let pd_before = cache.postdom(&g);
    cache.frontiers(&g);
    cache.control_dep(&g);
    let warm = cache.stats();
    assert_eq!(warm.misses, 3, "three forward cold computes expected");
    assert_eq!(warm.rev_misses, 3, "three reverse cold computes expected");

    // Structural mutation inside a transaction, with no cache lookups in
    // between: the cache never observes the diverged state.
    let stamp_before = g.cfg_version();
    g.begin_txn();
    let spare = g.blocks().nth(2).expect("spare block exists");
    g.set_terminator(a, Terminator::Jump { target: spare });
    assert_ne!(g.cfg_version(), stamp_before);
    g.rollback_txn();
    assert_eq!(g.cfg_version(), stamp_before);

    // Every lookup is now a pure hit: the restored stamps match the
    // cached entries exactly.
    let dom_after = cache.domtree(&g);
    cache.loops(&g);
    cache.frequencies(&g);
    let pd_after = cache.postdom(&g);
    cache.frontiers(&g);
    cache.control_dep(&g);
    let replayed = cache.stats();
    assert_eq!(
        replayed.hits,
        warm.hits + 3,
        "rollback must restore validity"
    );
    assert_eq!(replayed.misses, warm.misses, "no recompute after rollback");
    assert_eq!(
        replayed.rev_hits,
        warm.rev_hits + 3,
        "rollback must restore reverse-entry validity"
    );
    assert_eq!(
        replayed.rev_misses, warm.rev_misses,
        "no reverse recompute after rollback"
    );
    assert!(
        Arc::ptr_eq(&dom_before, &dom_after),
        "same cached entry served"
    );
    assert!(
        Arc::ptr_eq(&pd_before, &pd_after),
        "same cached reverse entry served"
    );
    assert!(cache.audit(&g).is_empty(), "audit clean after rollback");
}

#[test]
fn mid_txn_entries_are_superseded_and_audit_stays_clean() {
    let (mut g, a) = straight_line();
    let mut cache = AnalysisCache::new();
    cache.domtree(&g);
    cache.control_dep(&g);
    let warm = cache.stats();

    // This time the cache *does* observe the in-transaction state: the
    // entries it holds afterwards are keyed on the diverged stamp.
    g.begin_txn();
    let spare = g.blocks().nth(2).expect("spare block exists");
    g.set_terminator(a, Terminator::Jump { target: spare });
    cache.domtree(&g);
    cache.control_dep(&g);
    g.rollback_txn();

    // The mid-txn stamp is dead forever (stamps are never reused), so
    // the lookups recompute against the rolled-back graph and the audit
    // finds nothing stale.
    cache.domtree(&g);
    cache.control_dep(&g);
    assert_eq!(
        cache.stats().misses,
        warm.misses + 2,
        "mid-txn entry superseded"
    );
    // Each cold `control_dep` pulls `postdom` through the cache, so a
    // superseded round costs two reverse misses.
    assert_eq!(
        cache.stats().rev_misses,
        warm.rev_misses + 4,
        "mid-txn reverse entries superseded"
    );
    assert!(cache.audit(&g).is_empty(), "audit clean after recompute");
}
