//! # dbds-core — dominance-based duplication simulation
//!
//! The paper's primary contribution (Leopoldseder et al., *Dominance-Based
//! Duplication Simulation (DBDS): Code Duplication to Enable Compiler
//! Optimizations*, CGO 2018): a three-tier algorithm that decides *which*
//! control-flow merges to tail-duplicate.
//!
//! 1. **Simulation** ([`simulate`]) — a dominator-tree DFS launches a
//!    *duplication simulation traversal* per predecessor→merge pair,
//!    mapping φs through synonym maps and pricing every applicability
//!    check that fires with the static performance estimator. No IR is
//!    copied.
//! 2. **Trade-off** ([`select`], [`should_duplicate`]) — candidates are
//!    ranked by probability-weighted benefit and accepted while
//!    `b × p × 256 > c` and the code-size budgets hold.
//! 3. **Optimization** ([`duplicate`], [`run_dbds`]) — accepted
//!    duplications are performed (with full SSA repair) and the enabled
//!    optimizations applied.
//!
//! The crate also ships the paper's comparison strategies: the
//! [`run_backtracking`] baseline (Algorithm 1, whole-graph copies) and
//! the *dupalot* configuration (every beneficial duplication, no cost
//! model), both reachable through [`compile`] with an [`OptLevel`].
//!
//! # Examples
//!
//! Reproduce Figure 1 end to end:
//!
//! ```
//! use dbds_core::{compile, DbdsConfig, OptLevel};
//! use dbds_costmodel::CostModel;
//! use dbds_ir::{execute, parse_module, Value};
//!
//! let mut g = parse_module(
//!     "func @foo(x: int) {\n\
//!      entry:\n  zero: int = const 0\n  c: bool = cmp gt x, zero\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  p: int = phi [bt: x, bf: zero]\n  two: int = const 2\n  sum: int = add two, p\n  return sum\n}",
//! )?
//! .graphs
//! .remove(0);
//!
//! let stats = compile(&mut g, &CostModel::new(), OptLevel::Dbds, &DbdsConfig::default());
//! assert!(stats.duplications >= 1);
//! assert_eq!(execute(&g, &[Value::Int(-3)]).outcome, Ok(Value::Int(2)));
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod backtracking;
mod bailout;
#[cfg(feature = "fault-injection")]
pub mod faultinject;
pub mod lint;
pub mod par;
mod phase;
mod simulation;
mod tradeoff;
mod transform;

/// No-op stand-ins for the fault-injection hooks when the
/// `fault-injection` feature is compiled out: every injection point and
/// budget poll folds to nothing.
#[cfg(not(feature = "fault-injection"))]
pub(crate) mod faultinject {
    use crate::bailout::BailoutReason;
    use dbds_ir::Graph;

    #[inline(always)]
    pub(crate) fn fault_point(_site: &str, _g: Option<&mut Graph>) {}

    #[inline(always)]
    pub(crate) fn take_pending_exhaustion() -> Option<BailoutReason> {
        None
    }

    /// Mirror of the real module's ahead-of-execution fault decision.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[allow(dead_code)]
    pub(crate) enum PlannedFault {
        Panic,
        ExhaustFuel,
        ExhaustDeadline,
    }

    #[inline(always)]
    pub(crate) fn take_site_plan(_site: &'static str) -> Option<PlannedFault> {
        None
    }

    /// Unreachable without the feature: no plan ever fires.
    #[inline(always)]
    pub(crate) fn injected_panic(_site: &str) -> ! {
        unreachable!("fault-injection is compiled out")
    }
}

pub use backtracking::{run_backtracking, BacktrackStats};
pub use bailout::{
    checkpoint, isolate, transact, BailoutReason, BailoutRecord, Budget, GuardConfig, Tier,
};
pub use lint::{lint_frontier, lint_simulation};
pub use par::WorkerLoad;
pub use phase::{compile, run_dbds, DbdsConfig, OptLevel, PhaseStats, PoolPlan};
pub use simulation::{
    audit_opportunities, count_mispredictions, simulate, simulate_paths, simulate_paths_budgeted,
    simulate_paths_parallel, CandidateKind, Opportunity, SimulationOutcome, SimulationResult,
    BRANCH_SPLIT_DEFAULT,
};
pub use tradeoff::{
    select, select_with_rejections, select_with_rejections_parallel, should_duplicate,
    PricedSelection, Selection, SelectionMode, TradeoffConfig,
};
pub use transform::{duplicate, try_duplicate, Duplication, TransformError};
