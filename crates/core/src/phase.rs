//! The iterative DBDS phase driver (§5.2) and the compilation entry
//! point used by the evaluation harness.
//!
//! The phase runs simulate → trade-off → optimize for up to three
//! iterations (one duplication can expose an opportunity at the next
//! merge, but the optimization tier does not duplicate across multiple
//! merges at once). Another iteration only runs when the previous one's
//! cumulative benefit clears a threshold, and later iterations prefer
//! merges not yet duplicated.

use crate::bailout::{
    checkpoint, transact, BailoutReason, BailoutRecord, Budget, GuardConfig, Tier,
};
use crate::faultinject::fault_point;
use crate::simulation::{
    audit_opportunities, count_mispredictions, dominator_chain, simulate_paths_parallel,
    CandidateKind, SimulationResult,
};
use crate::tradeoff::{select_with_rejections_parallel, SelectionMode, TradeoffConfig};
use crate::transform::{duplicate, try_duplicate, Duplication};
use dbds_analysis::{AnalysisCache, CacheStats};
use dbds_costmodel::CostModel;
use dbds_ir::{BlockId, Graph};
use dbds_opt::{optimize_full, optimize_once, OptKind};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// The compiler configuration under evaluation — the paper's benchmark
/// configurations plus the backtracking strategy of §3.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OptLevel {
    /// Standard optimizations only, duplication disabled.
    Baseline,
    /// The full DBDS algorithm (simulation + trade-off + optimization).
    Dbds,
    /// Simulation without the cost/benefit trade-off: every beneficial
    /// duplication is performed.
    Dupalot,
    /// The backtracking strategy: tentatively duplicate, fully optimize,
    /// keep only if the static estimate improved.
    Backtracking,
}

impl OptLevel {
    /// Stable lowercase name (used by the harness CLI).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::Dbds => "dbds",
            OptLevel::Dupalot => "dupalot",
            OptLevel::Backtracking => "backtracking",
        }
    }
}

/// Tunables of the DBDS phase. Defaults follow the paper.
#[derive(Clone, Debug)]
pub struct DbdsConfig {
    /// Trade-off parameters (§5.4).
    pub tradeoff: TradeoffConfig,
    /// Maximum simulate→trade-off→optimize iterations (§5.2: 3).
    pub max_iterations: usize,
    /// Minimum cumulative probability-weighted benefit of an iteration
    /// for another one to run (§5.2: "only … if the cumulative benefit of
    /// the previous one is above a certain threshold").
    pub iteration_benefit_threshold: f64,
    /// Maximum number of consecutive merges a single candidate may cover.
    /// 1 reproduces the paper's shipped implementation; larger values
    /// enable the §8 future-work *path-based duplication*: the DST
    /// simulates through jump-connected merges and the optimization tier
    /// duplicates each merge of the accepted path in turn.
    pub max_path_length: usize,
    /// Bailout-and-recovery guardrails: fuel / deadline budgets, verified
    /// checkpoints and panic isolation.
    pub guard: GuardConfig,
    /// Worker threads for the simulation tier's DST pool and the
    /// trade-off tier's pricing fan-out. `0` = adaptive: in a unit batch
    /// it sizes the shared scheduler's sim sub-pool from the hardware
    /// (see [`DbdsConfig::pool_plan`]); in a direct [`compile`] it means
    /// one per hardware thread. Results are bit-identical for every
    /// value; only wall-clock changes. The default honors the
    /// `DBDS_SIM_THREADS` environment variable and falls back to 1.
    pub sim_threads: usize,
    /// Worker threads for the *unit-level* compilation queue: how many
    /// independent compilation units the harness overlaps on the
    /// [`crate::par`] scheduler (`0` = adaptive, see
    /// [`DbdsConfig::pool_plan`]). Mirrors the paper's setting of DBDS
    /// as a per-unit phase inside a compiler that compiles units
    /// concurrently (§6). Results are committed in submission order, so
    /// reports are byte-identical for every value. The default honors
    /// `DBDS_UNIT_THREADS` and falls back to 1.
    pub unit_threads: usize,
    /// Whether the simulation tier may continue a DST *through* a branch
    /// terminator it decided statically, producing
    /// [`CandidateKind::BranchSplit`] candidates (conditional elimination
    /// through duplication). Priced by the same `shouldDuplicate` tier
    /// and applied through the same transactional machinery as classic
    /// merge duplication. The default honors `DBDS_BRANCH_SPLIT`
    /// (`0`/`false` disables) and falls back to
    /// [`BRANCH_SPLIT_DEFAULT`](crate::BRANCH_SPLIT_DEFAULT).
    pub enable_branch_splitting: bool,
}

/// The `sim_threads` default: `DBDS_SIM_THREADS` when set to a number,
/// else 1 (sequential).
fn sim_threads_from_env() -> usize {
    std::env::var("DBDS_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// The `unit_threads` default: `DBDS_UNIT_THREADS` when set to a number,
/// else 1 (sequential).
fn unit_threads_from_env() -> usize {
    std::env::var("DBDS_UNIT_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// The `enable_branch_splitting` default: `DBDS_BRANCH_SPLIT` when set
/// to a recognizable boolean, else
/// [`BRANCH_SPLIT_DEFAULT`](crate::BRANCH_SPLIT_DEFAULT).
fn branch_split_from_env() -> bool {
    match std::env::var("DBDS_BRANCH_SPLIT").as_deref().map(str::trim) {
        Ok("0") | Ok("false") | Ok("off") => false,
        Ok("1") | Ok("true") | Ok("on") => true,
        _ => crate::simulation::BRANCH_SPLIT_DEFAULT,
    }
}

impl Default for DbdsConfig {
    fn default() -> Self {
        DbdsConfig {
            tradeoff: TradeoffConfig::default(),
            max_iterations: 3,
            // Calibrated so that only a minority of units run a second
            // iteration, matching §5.2's "this only applies for about 20%
            // of all compilation units".
            iteration_benefit_threshold: 48.0,
            max_path_length: 1,
            guard: GuardConfig::default(),
            sim_threads: sim_threads_from_env(),
            unit_threads: unit_threads_from_env(),
            enable_branch_splitting: branch_split_from_env(),
        }
    }
}

/// The 2-D schedule for a batch of independent compilation units: how
/// many reserved unit workers and sim (steal-helper) workers the shared
/// [`crate::par::run_units`] scheduler runs, plus the configuration
/// each unit compiles with. Built by [`DbdsConfig::pool_plan`].
///
/// The plan is purely a *scheduling* artifact: results are bit-identical
/// at every split, so none of these fields participate in
/// [`DbdsConfig::fingerprint`].
#[derive(Clone, Debug)]
pub struct PoolPlan {
    /// Workers that claim whole compilation units off the shared cursor
    /// (and steal inner chunks once the cursor runs dry).
    pub unit_workers: usize,
    /// Reserved workers that only steal chunks from in-flight units'
    /// DST/pricing queues. `0` means no reserved helpers — idle unit
    /// workers still steal.
    pub sim_workers: usize,
    /// The configuration each unit compiles with: the inner tiers are
    /// forced nominally sequential (`sim_threads = 1`) because on a
    /// scheduler worker their fan-outs *publish to the shared pool*
    /// instead of spawning nested pools — one global worker set, no
    /// `p × q` oversubscription.
    pub per_unit: DbdsConfig,
}

impl DbdsConfig {
    /// Plans the 2-D fan-out over `units` independent compilations.
    ///
    /// Explicit `unit_threads` / `sim_threads` values are honored as
    /// given (`sim_threads = 1`, the sequential default, reserves no
    /// helpers). A value of `0` means *adaptive*: the planner splits the
    /// cached [`crate::par::hardware_threads`] between the sub-pools,
    /// clamped by queue depth —
    ///
    /// * both `0`: roughly two thirds of the hardware becomes unit
    ///   workers (at least one, at most `units`) and the rest the sim
    ///   sub-pool, e.g. 6 hardware threads → 4 unit × 2 sim. On a
    ///   single-core machine this degenerates to pure sequential — the
    ///   cheapest correct plan.
    /// * `unit_threads = 0`, `sim_threads` explicit: unit workers get
    ///   whatever the sim reservation leaves (at least one).
    /// * `unit_threads` explicit, `sim_threads = 0`: the sim sub-pool
    ///   gets the leftover hardware.
    ///
    /// Safe because every tier's results are bit-identical across
    /// splits; only the purely observational
    /// [`PhaseStats::sim_threads`] / `par_ns` / [`crate::par::WorkerLoad`]
    /// fields (kept out of the deterministic reports) can differ. Each
    /// unit still owns its own [`dbds_analysis::AnalysisCache`] and
    /// fuel/deadline [`Budget`](crate::Budget) — both are created per
    /// [`run_dbds`]/[`compile`] call — so one unit's bailout never
    /// poisons a neighbor.
    pub fn pool_plan(&self, units: usize) -> PoolPlan {
        let hw = crate::par::hardware_threads();
        let depth = units.max(1);
        // An explicit sim request of 1 is the sequential default: no
        // reserved helpers (matching the historical 1-means-sequential
        // contract of `sim_threads`).
        let explicit_sim = |s: usize| if s <= 1 { 0 } else { s };
        let (unit_workers, sim_workers) = match (self.unit_threads, self.sim_threads) {
            (0, 0) => {
                // Auto both: ~2/3 of the hardware claims units, the
                // rest helps their inner queues.
                let u = ((2 * hw).div_ceil(3)).clamp(1, depth.min(hw.max(1)));
                (u, hw.saturating_sub(u))
            }
            (0, s) => {
                let s = explicit_sim(s);
                (hw.saturating_sub(s).clamp(1, depth), s)
            }
            (u, 0) => {
                let u = u.min(depth);
                (u, hw.saturating_sub(u))
            }
            (u, s) => (u.min(depth), explicit_sim(s)),
        };
        let mut per_unit = self.clone();
        per_unit.unit_threads = 1;
        per_unit.sim_threads = 1;
        PoolPlan {
            unit_workers,
            sim_workers,
            per_unit,
        }
    }

    /// A stable fingerprint of every configuration field that can
    /// change the *result* of a compilation under `level` — the config
    /// half of the compilation service's content-addressed store key
    /// (the graph half is [`dbds_ir::content_hash`]).
    ///
    /// Included: the opt level, the trade-off parameters, the iteration
    /// limits, the path length, the fuel budget and the checkpoint
    /// switch. Deliberately excluded, because results are proven
    /// invariant under them: `sim_threads` / `unit_threads` (bit-identical
    /// at any width) and `guard.deadline` (a deadline is wall-clock
    /// nondeterminism — the service never caches a compilation that a
    /// deadline cut short, see [`PhaseStats::stopped_early`]).
    pub fn fingerprint(&self, level: OptLevel) -> u64 {
        let mut h = dbds_ir::Fnv64::new();
        h.write_str("dbds-config-fingerprint-v2");
        h.write_str(level.name());
        h.write_u64(self.tradeoff.benefit_scale.to_bits());
        h.write_u64(self.tradeoff.size_increase_budget.to_bits());
        h.write_u64(self.tradeoff.max_unit_size);
        h.write_u64(self.max_iterations as u64);
        h.write_u64(self.iteration_benefit_threshold.to_bits());
        h.write_u64(self.max_path_length as u64);
        h.write_u64(self.guard.fuel.map_or(u64::MAX, |f| f));
        h.write_u64(u64::from(self.guard.checkpoints));
        h.write_u64(u64::from(self.enable_branch_splitting));
        h.finish()
    }
}

/// Statistics of one compilation.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// DBDS iterations executed.
    pub iterations: usize,
    /// Predecessor→merge pairs simulated (across iterations).
    pub candidates: usize,
    /// Duplications performed.
    pub duplications: usize,
    /// Opportunities recorded by the simulation for the performed
    /// duplications, per optimization class.
    pub opportunities: HashMap<OptKind, usize>,
    /// Estimated code size before the phase.
    pub initial_size: u64,
    /// Estimated code size after the phase.
    pub final_size: u64,
    /// Work measure: instructions visited by simulation and rewriting
    /// (deterministic compile-effort proxy).
    pub work: u64,
    /// Wall-clock nanoseconds spent in the simulation tier.
    pub sim_ns: u128,
    /// Wall-clock nanoseconds of `sim_ns` spent inside the sharded DST
    /// fan-out (speculation plus in-order commit). Timing only.
    pub par_ns: u128,
    /// The resolved simulation thread count the phase ran with. Purely
    /// observational — every other field is identical for every value.
    pub sim_threads: usize,
    /// Wall-clock nanoseconds spent inside the trade-off tier's parallel
    /// pricing fan-out (candidate pricing on the pool plus the
    /// sequential ranked accept replay). Timing only.
    pub tradeoff_par_ns: u128,
    /// Wall-clock nanoseconds spent performing duplications.
    pub transform_ns: u128,
    /// Wall-clock nanoseconds spent in the optimization pipeline
    /// (pre-pass, per-iteration cleanup and final fixpoint).
    pub opt_ns: u128,
    /// Wall-clock nanoseconds spent on guardrail bookkeeping (undo-log
    /// transactions, checkpoint verification, rollbacks) — kept out of
    /// `sim_ns` / `opt_ns` / `transform_ns` so those stay comparable to
    /// unguarded runs.
    pub guard_ns: u128,
    /// Primitive IR mutations recorded by the undo log while a
    /// transaction was open. Deterministic.
    pub undo_edits: u64,
    /// Undo-log transactions rolled back (contained candidate failures,
    /// rejected backtracking attempts, final-checkpoint recoveries).
    /// Deterministic.
    pub undo_rollbacks: u64,
    /// Peak number of backed-up arena slots the undo log held at any
    /// point — the O(edit) analog of a whole-graph snapshot's size.
    /// Deterministic.
    pub undo_peak: usize,
    /// Wall-clock nanoseconds spent on undo-log bookkeeping
    /// (begin/commit/rollback). A subset of `guard_ns`; timing only.
    pub undo_ns: u128,
    /// Analysis-cache counters accumulated over the compilation
    /// (dominators, loops, frequencies served from / recomputed into the
    /// [`AnalysisCache`]).
    pub cache: CacheStats,
    /// Accepted opportunities whose applicability check no longer fired
    /// when re-run against the graph immediately before application (the
    /// prediction audit) even though *nothing the candidate depends on*
    /// — its dominator chain, merge or path — was mutated earlier in the
    /// round. Each such candidate was downgraded to a skip instead of
    /// being applied on a stale promise. A nonzero count is an alarm: the
    /// simulation tier broke its §4.1→§5 prediction contract.
    pub mispredictions: usize,
    /// Accepted candidates skipped because earlier duplications in the
    /// same round touched a block they depend on, invalidating their
    /// recorded facts. Ordinary intra-round staleness, not a contract
    /// violation: the next iteration re-simulates them with fresh facts.
    pub stale_skips: usize,
    /// [`CandidateKind::BranchSplit`] candidates the simulation tier
    /// produced, across iterations (whether or not selected).
    pub split_candidates: usize,
    /// Accepted branch-split candidates actually applied (the merge
    /// duplication plus the hop through the statically-decided branch).
    pub split_applied: usize,
    /// Post-duplication dominance-frontier invariant violations: a fresh
    /// copy and its source merge whose frontiers diverged immediately
    /// after the transform. Each one rolled its transaction back; a
    /// nonzero count is an alarm on the SSA/CFG repair.
    pub frontier_violations: usize,
    /// Every bailout incident of this compilation, in order.
    pub bailouts: Vec<BailoutRecord>,
}

impl PhaseStats {
    /// The reason the phase stopped *early* (a budget exhaustion that
    /// was not contained), if any: the first bailout record whose
    /// failure was not recovered. The graph is still verified in that
    /// case, but the result reflects how far the wall clock or fuel
    /// tank let the phase get — a deadline-truncated compilation is
    /// wall-clock-dependent, so the compilation service treats such a
    /// result as non-cacheable and answers with a typed error instead.
    pub fn stopped_early(&self) -> Option<&BailoutReason> {
        self.bailouts
            .iter()
            .find(|b| !b.recovered)
            .map(|b| &b.reason)
    }

    /// `true` when [`PhaseStats::stopped_early`] reports a missed
    /// wall-clock deadline — the per-request deadline plumbing of the
    /// compilation service.
    pub fn hit_deadline(&self) -> bool {
        matches!(self.stopped_early(), Some(BailoutReason::DeadlineExceeded))
    }

    /// Copies the cache counters accumulated between `base` and `cache`'s
    /// current state into these stats (delta form, so callers may share
    /// one long-lived cache across compilations).
    fn record_cache(&mut self, cache: &AnalysisCache, base: CacheStats) {
        let now = cache.stats();
        self.cache = CacheStats {
            hits: now.hits - base.hits,
            misses: now.misses - base.misses,
            invalidations: now.invalidations - base.invalidations,
            rev_hits: now.rev_hits - base.rev_hits,
            rev_misses: now.rev_misses - base.rev_misses,
            rev_invalidations: now.rev_invalidations - base.rev_invalidations,
        };
    }
}

/// Compiles `g` under the given configuration: the duplication phase
/// according to `level`, bracketed by the standard optimization pipeline.
pub fn compile(g: &mut Graph, model: &CostModel, level: OptLevel, cfg: &DbdsConfig) -> PhaseStats {
    let mut cache = AnalysisCache::new();
    match level {
        OptLevel::Baseline => {
            let mut stats = PhaseStats {
                initial_size: model.graph_size(g),
                ..PhaseStats::default()
            };
            optimize_full(g, &mut cache);
            stats.final_size = model.graph_size(g);
            stats.work = g.live_inst_count() as u64;
            stats.record_cache(&cache, CacheStats::default());
            stats
        }
        OptLevel::Dbds => run_dbds(g, model, cfg, SelectionMode::CostBenefit, &mut cache),
        OptLevel::Dupalot => run_dbds(g, model, cfg, SelectionMode::Dupalot, &mut cache),
        OptLevel::Backtracking => {
            let mut stats: PhaseStats =
                crate::backtracking::run_backtracking(g, model, cfg, &mut cache).into();
            stats.record_cache(&cache, CacheStats::default());
            stats
        }
    }
}

/// Runs the full three-tier DBDS phase on `g`, pulling every CFG analysis
/// through `cache`.
///
/// The phase is guarded (see [`GuardConfig`]): fuel / deadline exhaustion
/// stops it early with a [`BailoutRecord`], a failing candidate rolls
/// its undo-log transaction back to the last verified state and the
/// remaining candidates continue — the returned graph always verifies.
pub fn run_dbds(
    g: &mut Graph,
    model: &CostModel,
    cfg: &DbdsConfig,
    mode: SelectionMode,
    cache: &mut AnalysisCache,
) -> PhaseStats {
    let mut stats = PhaseStats::default();
    let cache_base = cache.stats();
    let undo_base = g.undo_stats();
    let budget = Budget::new(&cfg.guard);
    let checkpoints = cfg.guard.checkpoints;
    run_opt_tier(g, cache, &mut stats, checkpoints, true);
    let initial_size = model.graph_size(g);
    stats.initial_size = initial_size;
    let mut visited: HashSet<BlockId> = HashSet::new();
    // Whether the phase-level recovery transaction is open. Its
    // `begin_txn` marks are the states known to verify — recommitted and
    // reopened at every refresh point where the old snapshot-based
    // recovery took a whole-graph copy — and the final checkpoint rolls
    // back to the latest mark if the compilation ends on a broken graph.
    let mut recovery_open = false;

    for _ in 0..cfg.max_iterations {
        stats.iterations += 1;
        if cfg.enable_branch_splitting {
            // Pre-warm the reverse-CFG analyses at the exact graph
            // version the DSTs are about to analyze: the control-
            // dependence cross-check and the interference frontiers
            // below then revalidate as pure cache hits.
            cache.postdom(g);
            cache.frontiers(g);
            cache.control_dep(g);
        }
        let t = Instant::now();
        let sim = simulate_paths_parallel(
            g,
            model,
            cache,
            cfg.max_path_length,
            &budget,
            cfg.sim_threads,
            cfg.enable_branch_splitting,
        );
        stats.sim_ns += t.elapsed().as_nanos();
        stats.par_ns += sim.par_ns;
        stats.sim_threads = sim.threads;
        stats.candidates += sim.results.len();
        stats.split_candidates += sim
            .results
            .iter()
            .filter(|r| r.kind == CandidateKind::BranchSplit)
            .count();
        stats.work += g.live_inst_count() as u64 * 2; // simulation visit
        for (pred, merge, msg) in sim.panicked {
            stats.bailouts.push(BailoutRecord {
                reason: BailoutReason::TransformPanicked(msg),
                tier: Tier::Simulation,
                candidate: Some((pred, merge)),
                recovered: true,
            });
        }
        if let Some(reason) = sim.stopped {
            stats.bailouts.push(BailoutRecord {
                reason,
                tier: Tier::Simulation,
                candidate: None,
                recovered: false,
            });
            break;
        }
        let current_size = model.graph_size(g);
        // Trade-off tier: pricing fans out on the same worker budget as
        // the DST pool; the ranked accept loop replays sequentially, so
        // the selection is bit-identical to the 1-thread path.
        let priced = select_with_rejections_parallel(
            &sim.results,
            &cfg.tradeoff,
            mode,
            initial_size,
            current_size,
            &visited,
            cfg.sim_threads,
        );
        stats.tradeoff_par_ns += priced.par_ns;
        let selection = priced.selection;
        for candidate in selection.size_rejected {
            stats.bailouts.push(BailoutRecord {
                reason: BailoutReason::SizeBudgetExceeded,
                tier: Tier::Tradeoff,
                candidate: Some(candidate),
                recovered: true,
            });
        }
        // The transform invalidates the borrow of `sim.results`; take
        // owned copies of what we need. Branch-split candidates carry a
        // simulation-time claim — "the final path element is selected by
        // the branch we are about to fold" — that must agree with the
        // control-dependence graph of the exact graph the DSTs analyzed
        // (a pure cache hit after the pre-warm above). A disagreement
        // means the fold would not eliminate a real control dependence;
        // the candidate is dropped as a recovered bailout.
        let mut plan: Vec<SimulationResult> = Vec::with_capacity(selection.accepted.len());
        for s in selection.accepted {
            if s.kind == CandidateKind::BranchSplit {
                let agreed = s.path.len() >= 2 && {
                    let taken = s.path[s.path.len() - 1];
                    let split = s.path[s.path.len() - 2];
                    cache.control_dep(g).depends_on(taken, split)
                };
                if !agreed {
                    stats.bailouts.push(BailoutRecord {
                        reason: BailoutReason::VerifierRejected(format!(
                            "control-dependence cross-check rejected branch-split ({} -> {})",
                            s.pred, s.merge
                        )),
                        tier: Tier::Tradeoff,
                        candidate: Some((s.pred, s.merge)),
                        recovered: true,
                    });
                    continue;
                }
            }
            plan.push(s.clone());
        }
        if plan.is_empty() {
            break;
        }
        // Sim-time dominator chains of the accepted candidates, taken
        // before any duplication this round (the graph is still exactly
        // the one the simulation tier analyzed). The prediction audit
        // compares them against the post-mutation chains to tell
        // ordinary intra-round staleness from a broken simulation
        // contract.
        let plan_chains: Vec<Option<Vec<BlockId>>> = plan
            .iter()
            .map(|s| dominator_chain(g, cache, s.pred))
            .collect();
        // Dominance frontiers of the accepted merges, still at the pre-
        // mutation version (pure cache hits after the pre-warm): a
        // duplication's SSA repair can insert φs anywhere in DF(merge),
        // so those blocks join the round's interference footprint once
        // the candidate is applied.
        let plan_frontiers: Vec<Vec<BlockId>> = if cfg.enable_branch_splitting {
            plan.iter()
                .map(|s| cache.frontiers(g).df(s.merge).to_vec())
                .collect()
        } else {
            vec![Vec::new(); plan.len()]
        };
        let mut cumulative = 0.0;
        let t = Instant::now();
        let mut guard_here: u128 = 0;
        let mut undo_here: u128 = 0;
        if checkpoints {
            // Refresh the recovery mark: everything up to here verified.
            let tg = Instant::now();
            if recovery_open {
                g.commit_txn();
            }
            g.begin_txn();
            recovery_open = true;
            let ns = tg.elapsed().as_nanos();
            guard_here += ns;
            undo_here += ns;
        }
        let mut stopped = None;
        // Blocks mutated by duplications applied earlier this round: the
        // interference footprint the prediction audit classifies failed
        // re-checks against.
        let mut mutated: HashSet<BlockId> = HashSet::new();
        for (i, (s, sim_chain)) in plan.iter().zip(&plan_chains).enumerate() {
            // Re-validate: earlier duplications this round may have
            // restructured the pair.
            if !g.is_merge(s.merge) || !g.succs(s.pred).contains(&s.merge) {
                continue;
            }
            if let Err(reason) = budget.check() {
                stopped = Some(reason);
                break;
            }
            // Prediction audit: re-run the applicability analysis against
            // the graph as it stands *now* (earlier candidates this round
            // already mutated it). A recorded opportunity that no longer
            // fires means the candidate is skipped rather than applied on
            // a stale promise — classified as an ordinary stale skip when
            // an earlier duplication this round touched a block the
            // candidate depends on, and as a misprediction (a simulation-
            // tier contract violation) otherwise. Runs on the
            // coordinating thread against a local budget, so results and
            // fuel accounting stay identical across `sim_threads`
            // settings.
            if checkpoints && !s.opportunities.is_empty() {
                let tg = Instant::now();
                let rerun = audit_opportunities(g, model, cache, s);
                let missed = match &rerun {
                    Some(ops) => count_mispredictions(&s.opportunities, ops),
                    None => s.opportunities.len(),
                };
                if missed > 0 {
                    // Stale when a duplication this round touched a
                    // block the candidate's facts flow through (its
                    // sim-time dominator chain, merge or path), or when
                    // the chain itself drifted — either way the recorded
                    // facts describe a graph that no longer exists. A
                    // failed re-check on an *undisturbed* candidate is a
                    // genuine misprediction.
                    let stale = !mutated.is_empty()
                        && match (sim_chain, dominator_chain(g, cache, s.pred)) {
                            (Some(old), Some(now)) => {
                                *old != now
                                    || old
                                        .iter()
                                        .chain(std::iter::once(&s.merge))
                                        .chain(&s.path)
                                        .any(|b| mutated.contains(b))
                            }
                            _ => true,
                        };
                    if stale {
                        stats.stale_skips += 1;
                    } else {
                        stats.mispredictions += missed;
                    }
                    guard_here += tg.elapsed().as_nanos();
                    continue;
                }
                guard_here += tg.elapsed().as_nanos();
            }
            match apply_chain(g, s, checkpoints, &mut guard_here, &mut undo_here) {
                Ok(chain) => {
                    stats.duplications += chain.duplications;
                    stats.work += chain.work;
                    mutated.extend(chain.touched.iter().copied());
                    mutated.extend(plan_frontiers[i].iter().copied());
                    visited.extend(chain.visited);
                    if s.kind == CandidateKind::BranchSplit {
                        stats.split_applied += 1;
                    }
                    cumulative += s.weighted_benefit();
                    for o in &s.opportunities {
                        *stats.opportunities.entry(o.kind).or_insert(0) += 1;
                    }
                    if checkpoints {
                        // The candidate verified: move the recovery mark
                        // forward past it.
                        let tg = Instant::now();
                        g.commit_txn();
                        g.begin_txn();
                        let ns = tg.elapsed().as_nanos();
                        guard_here += ns;
                        undo_here += ns;
                    }
                }
                Err(reason) => {
                    // Contained failure: `apply_chain`'s transaction
                    // already rolled the graph back to the last verified
                    // state; move on to the next candidate.
                    if matches!(&reason, BailoutReason::VerifierRejected(m)
                        if m.starts_with("frontier-violation"))
                    {
                        stats.frontier_violations += 1;
                    }
                    stats.bailouts.push(BailoutRecord {
                        reason,
                        tier: Tier::Optimization,
                        candidate: Some((s.pred, s.merge)),
                        recovered: true,
                    });
                }
            }
        }
        stats.transform_ns += t.elapsed().as_nanos().saturating_sub(guard_here);
        stats.guard_ns += guard_here;
        stats.undo_ns += undo_here;
        if let Some(reason) = stopped {
            stats.bailouts.push(BailoutRecord {
                reason,
                tier: Tier::Optimization,
                candidate: None,
                recovered: false,
            });
            break;
        }
        // The optimization tier: apply the enabled optimizations. One
        // pipeline round suffices between iterations (the paper applies
        // the recorded action steps locally); the full fixpoint runs once
        // at the end.
        run_opt_tier(g, cache, &mut stats, checkpoints, false);
        if cumulative < cfg.iteration_benefit_threshold {
            break;
        }
    }
    run_opt_tier(g, cache, &mut stats, checkpoints, true);
    // Final checkpoint: the per-step verifications already covered the
    // happy path, so the extra whole-phase verify only runs when faults
    // are compiled in or something already went wrong this compilation.
    if checkpoints
        && (cfg!(feature = "fault-injection")
            || stats.bailouts.iter().any(|b| b.tier != Tier::Tradeoff))
    {
        let tg = Instant::now();
        if let Err(reason) = checkpoint(g) {
            let recovered = recovery_open;
            if recovery_open {
                let tu = Instant::now();
                g.rollback_txn();
                stats.undo_ns += tu.elapsed().as_nanos();
                recovery_open = false;
            }
            stats.bailouts.push(BailoutRecord {
                reason,
                tier: Tier::Optimization,
                candidate: None,
                recovered,
            });
        }
        // Cached-analysis audit: any cache entry stamped with the current
        // CFG epoch must match a from-scratch recomputation. A divergence
        // is a stamping-discipline bug; recovery drops the cache so the
        // next lookup recomputes honestly.
        let stale = cache.audit(g);
        if let Some(first) = stale.first() {
            let reason = if stale.len() == 1 {
                first.message.clone()
            } else {
                format!("{} (+{} more)", first.message, stale.len() - 1)
            };
            cache.clear();
            stats.bailouts.push(BailoutRecord {
                reason: BailoutReason::VerifierRejected(reason),
                tier: Tier::Optimization,
                candidate: None,
                recovered: true,
            });
        }
        stats.guard_ns += tg.elapsed().as_nanos();
    }
    if recovery_open {
        // The compilation ends on a verified graph: retire the recovery
        // transaction.
        let tg = Instant::now();
        g.commit_txn();
        let ns = tg.elapsed().as_nanos();
        stats.guard_ns += ns;
        stats.undo_ns += ns;
    }
    stats.final_size = model.graph_size(g);
    stats.record_cache(cache, cache_base);
    let undo_now = g.undo_stats();
    stats.undo_edits = undo_now.edits - undo_base.edits;
    stats.undo_rollbacks = undo_now.rollbacks - undo_base.rollbacks;
    stats.undo_peak = undo_now.peak_entries;
    stats
}

/// What one applied candidate (a merge plus the rest of its accepted
/// path) contributed.
#[derive(Default)]
struct ChainOutcome {
    duplications: usize,
    work: u64,
    visited: Vec<BlockId>,
    /// Every block the chain mutated: the predecessor (retargeted
    /// terminator), the merge (φs and predecessor list shrank), the
    /// fresh copy, and the successors of both (their φs gained the
    /// copy's edge). Feeds the round's interference footprint.
    touched: Vec<BlockId>,
}

fn record_step(out: &mut ChainOutcome, g: &Graph, dup: &Duplication) {
    out.visited.push(dup.merge);
    out.duplications += 1;
    out.work += g.block_insts(dup.merge).len() as u64;
    out.touched.push(dup.pred);
    out.touched.push(dup.merge);
    out.touched.push(dup.copy);
    out.touched.extend(g.succs(dup.copy));
    out.touched.extend(g.succs(dup.merge));
}

/// Applies one accepted candidate: the `(pred, merge)` duplication plus
/// the path-based extension into the freshly created copies. With
/// checkpoints on, the chain runs inside an undo-log transaction
/// ([`transact`]): each applied duplication is verified, both typed
/// transform errors and panics become bailout reasons, and a failing
/// chain is rolled back to its starting state before this returns. With
/// checkpoints off this is the pre-guardrail behavior (failures panic).
fn apply_chain(
    g: &mut Graph,
    s: &SimulationResult,
    checkpoints: bool,
    guard_ns: &mut u128,
    undo_ns: &mut u128,
) -> Result<ChainOutcome, BailoutReason> {
    if !checkpoints {
        let mut out = ChainOutcome::default();
        let mut dup = duplicate(g, s.pred, s.merge);
        record_step(&mut out, g, &dup);
        for &m in &s.path[1..] {
            if !g.is_merge(m) || !g.succs(dup.copy).contains(&m) {
                break;
            }
            dup = duplicate(g, dup.copy, m);
            record_step(&mut out, g, &dup);
        }
        return Ok(out);
    }
    let mut guard: u128 = 0;
    let (result, txn_ns) = transact(g, |g| {
        let verified = |g: &Graph, dup: &Duplication, guard: &mut u128| {
            let tg = Instant::now();
            let ck = checkpoint(g).and_then(|()| {
                // Structural frontier check on top of the verifier: the
                // copy's and merge's dominance frontiers must be
                // consistent with the edge mirrors, and equal whenever
                // neither block dominates the other (see `lint_frontier`).
                match crate::lint::lint_frontier(g, dup.copy, dup.merge) {
                    Some(d) => Err(BailoutReason::VerifierRejected(d.message)),
                    None => Ok(()),
                }
            });
            *guard += tg.elapsed().as_nanos();
            ck
        };
        let reject =
            |e: crate::transform::TransformError| BailoutReason::VerifierRejected(e.to_string());
        let mut out = ChainOutcome::default();
        let mut dup = try_duplicate(g, s.pred, s.merge).map_err(reject)?;
        record_step(&mut out, g, &dup);
        verified(g, &dup, &mut guard)?;
        // Path-based extension: duplicate the remaining merges of the
        // accepted path into the freshly created copies. For a
        // branch-split candidate the last path element is the successor
        // selected by the copy's statically-decided branch — it became a
        // merge the moment the copy's terminator targeted it, so the
        // same guard and transform handle the hop.
        for &m in &s.path[1..] {
            if !g.is_merge(m) || !g.succs(dup.copy).contains(&m) {
                break;
            }
            dup = try_duplicate(g, dup.copy, m).map_err(reject)?;
            record_step(&mut out, g, &dup);
            verified(g, &dup, &mut guard)?;
        }
        Ok(out)
    });
    *guard_ns += guard + txn_ns;
    *undo_ns += txn_ns;
    result
}

/// Runs the optimization pipeline (`optimize_once`, or the full fixpoint
/// when `full`) behind the guardrails: the pipeline runs inside an
/// undo-log transaction, so a panicking pass is caught and the graph
/// rolled back to its pre-pass state. With faults compiled in, the
/// result is also verified (a corrupted graph rolls back the same way).
fn run_opt_tier(
    g: &mut Graph,
    cache: &mut AnalysisCache,
    stats: &mut PhaseStats,
    checkpoints: bool,
    full: bool,
) {
    if !checkpoints {
        fault_point("phase/optimize", Some(g));
        let t = Instant::now();
        if full {
            optimize_full(g, cache);
        } else {
            optimize_once(g, cache);
        }
        stats.opt_ns += t.elapsed().as_nanos();
        return;
    }
    let mut opt_ns: u128 = 0;
    let mut verify_ns: u128 = 0;
    let (result, txn_ns) = transact(g, |g| {
        // Inside the guard so an injected panic here is contained.
        fault_point("phase/optimize", Some(g));
        let t = Instant::now();
        if full {
            optimize_full(g, cache);
        } else {
            optimize_once(g, cache);
        }
        opt_ns = t.elapsed().as_nanos();
        if cfg!(feature = "fault-injection") {
            // Production builds skip this verify: optimizer bugs surface
            // as panics (caught by the transaction), injected corruption
            // only exists with the feature on.
            let tv = Instant::now();
            let ck = checkpoint(g);
            verify_ns = tv.elapsed().as_nanos();
            ck?;
        }
        Ok(())
    });
    stats.opt_ns += opt_ns;
    stats.guard_ns += verify_ns + txn_ns;
    stats.undo_ns += txn_ns;
    if let Err(reason) = result {
        stats.bailouts.push(BailoutRecord {
            reason,
            tier: Tier::Optimization,
            candidate: None,
            recovered: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::simulate_paths;
    use dbds_ir::{
        execute, verify, ClassTable, CmpOp, ConstValue, GraphBuilder, Inst, Terminator, Type, Value,
    };
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn figure1() -> Graph {
        let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        b.finish()
    }

    #[test]
    fn dbds_reproduces_figure1c() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
        verify(&g).unwrap();
        assert!(stats.duplications >= 1, "stats: {stats:?}");
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-1)]).outcome, Ok(Value::Int(2)));
        // Figure 1c: the false path returns the constant 2 — no add on
        // that path anymore. Find the return blocks.
        let mut const_return_found = false;
        for b in g.reachable_blocks() {
            if let Terminator::Return { value: Some(v) } = g.terminator(b) {
                if matches!(g.inst(*v), Inst::Const(ConstValue::Int(2))) {
                    const_return_found = true;
                }
            }
        }
        assert!(const_return_found, "expected a `return 2` path:\n{g}");
    }

    #[test]
    fn baseline_does_not_duplicate() {
        let mut g = figure1();
        let model = CostModel::new();
        let before_blocks = g.reachable_blocks().len();
        let stats = compile(&mut g, &model, OptLevel::Baseline, &DbdsConfig::default());
        assert_eq!(stats.duplications, 0);
        verify(&g).unwrap();
        // The diamond with the φ remains (no duplication happened).
        assert_eq!(g.reachable_blocks().len(), before_blocks);
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
    }

    #[test]
    fn dupalot_duplicates_at_least_as_much_as_dbds() {
        let mut g1 = figure1();
        let mut g2 = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let dbds = compile(&mut g1, &model, OptLevel::Dbds, &cfg);
        let dupalot = compile(&mut g2, &model, OptLevel::Dupalot, &cfg);
        assert!(dupalot.duplications >= dbds.duplications);
        verify(&g1).unwrap();
        verify(&g2).unwrap();
    }

    #[test]
    fn all_levels_preserve_semantics_on_listing1() {
        let build = || {
            let mut b = GraphBuilder::new("l1", &[Type::Int], empty_table());
            let i = b.param(0);
            let zero = b.iconst(0);
            let thirteen = b.iconst(13);
            let twelve = b.iconst(12);
            let c = b.cmp(CmpOp::Gt, i, zero);
            let (bt, bf, bm, b12, bi) = (
                b.new_block(),
                b.new_block(),
                b.new_block(),
                b.new_block(),
                b.new_block(),
            );
            b.branch(c, bt, bf, 0.5);
            b.switch_to(bt);
            b.jump(bm);
            b.switch_to(bf);
            b.jump(bm);
            b.switch_to(bm);
            let p = b.phi(vec![i, thirteen], Type::Int);
            let c2 = b.cmp(CmpOp::Gt, p, twelve);
            b.branch(c2, b12, bi, 0.5);
            b.switch_to(b12);
            b.ret(Some(twelve));
            b.switch_to(bi);
            b.ret(Some(i));
            b.finish()
        };
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let reference = build();
        for level in [
            OptLevel::Baseline,
            OptLevel::Dbds,
            OptLevel::Dupalot,
            OptLevel::Backtracking,
        ] {
            let mut g = build();
            compile(&mut g, &model, level, &cfg);
            // Route through the phase's own checkpoint API so this test
            // exercises the same verification path the guardrails use.
            checkpoint(&g).unwrap_or_else(|e| panic!("level {level:?} broke the graph: {e}"));
            for v in [-7i64, 0, 1, 12, 13, 100] {
                assert_eq!(
                    execute(&g, &[Value::Int(v)]).outcome,
                    execute(&reference, &[Value::Int(v)]).outcome,
                    "level {level:?}, input {v}"
                );
            }
        }
    }

    #[test]
    fn dbds_improves_static_estimate_on_figure1() {
        let model = CostModel::new();
        let measure = |g: &Graph| model.weighted_cycles(g, &mut AnalysisCache::new());
        let mut base = figure1();
        compile(
            &mut base,
            &model,
            OptLevel::Baseline,
            &DbdsConfig::default(),
        );
        let mut opt = figure1();
        compile(&mut opt, &model, OptLevel::Dbds, &DbdsConfig::default());
        assert!(
            measure(&opt) <= measure(&base),
            "DBDS should not regress the static estimate"
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            max_iterations: 1,
            ..DbdsConfig::default()
        };
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn pool_plan_honors_explicit_splits() {
        let with = |u: usize, s: usize| DbdsConfig {
            unit_threads: u,
            sim_threads: s,
            ..DbdsConfig::default()
        };
        // Explicit both: honored as given; per-unit tiers publish to the
        // shared scheduler, so their own knobs are forced nominal.
        let plan = with(4, 8).pool_plan(45);
        assert_eq!((plan.unit_workers, plan.sim_workers), (4, 8));
        assert_eq!(plan.per_unit.sim_threads, 1, "inner tiers share the pool");
        assert_eq!(plan.per_unit.unit_threads, 1);
        // sim_threads = 1 is the sequential default: no reserved helpers.
        let plan = with(4, 1).pool_plan(45);
        assert_eq!((plan.unit_workers, plan.sim_workers), (4, 0));
        // The historical 1×N split becomes one unit worker + N stealers.
        let plan = with(1, 8).pool_plan(45);
        assert_eq!((plan.unit_workers, plan.sim_workers), (1, 8));
        // Never wider than the unit count, never zero.
        assert_eq!(with(16, 1).pool_plan(3).unit_workers, 3);
        assert_eq!(with(16, 1).pool_plan(0).unit_workers, 1);
        // Pure sequential resolves to the inline path's shape.
        let plan = with(1, 1).pool_plan(45);
        assert_eq!((plan.unit_workers, plan.sim_workers), (1, 0));
    }

    #[test]
    fn pool_plan_adapts_to_hardware() {
        let hw = crate::par::hardware_threads();
        let with = |u: usize, s: usize| DbdsConfig {
            unit_threads: u,
            sim_threads: s,
            ..DbdsConfig::default()
        };
        // Auto both: ~2/3 of the hardware claims units, the rest helps.
        let plan = with(0, 0).pool_plan(45);
        let expect_u = ((2 * hw).div_ceil(3)).clamp(1, 45.min(hw.max(1)));
        assert_eq!(plan.unit_workers, expect_u);
        assert_eq!(plan.sim_workers, hw - expect_u);
        assert!(plan.unit_workers + plan.sim_workers <= hw.max(1));
        // Queue depth still clamps the auto unit sub-pool.
        assert_eq!(with(0, 0).pool_plan(1).unit_workers, 1);
        // Auto units with an explicit sim reservation take the leftover.
        let plan = with(0, 2).pool_plan(45);
        assert_eq!(plan.sim_workers, 2);
        assert_eq!(plan.unit_workers, hw.saturating_sub(2).clamp(1, 45));
        // Explicit units with an auto sim sub-pool: leftover hardware.
        let plan = with(2, 0).pool_plan(45);
        assert_eq!(plan.unit_workers, 2);
        assert_eq!(plan.sim_workers, hw.saturating_sub(2));
        // Adaptive plans still force the per-unit tiers nominal.
        assert_eq!(plan.per_unit.sim_threads, 1);
        assert_eq!(plan.per_unit.unit_threads, 1);
    }

    #[test]
    fn size_budget_limits_duplications() {
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            tradeoff: TradeoffConfig {
                size_increase_budget: 1.0, // no growth allowed
                ..TradeoffConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        // Figure 1's duplication shrinks one path but the heuristic sees a
        // positive cost on the kept path only via budget; with zero budget
        // only negative/zero-cost candidates pass.
        assert!(stats.final_size <= stats.initial_size);
        verify(&g).unwrap();
    }

    #[test]
    fn phase_stats_report_cache_counters() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
        // Every compilation computes dominators at least once (cold cache)
        // and the simulate → optimize loop revisits them.
        assert!(stats.cache.misses > 0, "stats: {stats:?}");
        assert!(stats.cache.hits > 0, "stats: {stats:?}");
        assert!(stats.cache.invalidations <= stats.cache.misses);
    }

    #[test]
    fn happy_path_records_no_bailouts() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
        assert!(stats.duplications >= 1);
        assert!(stats.bailouts.is_empty(), "bailouts: {:?}", stats.bailouts);
    }

    #[test]
    fn happy_path_prediction_audit_confirms_every_candidate() {
        // The audit runs before every applied candidate (checkpoints are
        // on by default); on the happy path it must confirm each one —
        // a nonzero count here would mean the simulation tier's promises
        // don't survive to application even without interference.
        let mut g = figure1();
        let model = CostModel::new();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
        assert!(stats.duplications >= 1);
        assert_eq!(stats.mispredictions, 0, "stats: {stats:?}");
    }

    #[test]
    fn fuel_exhaustion_bails_out_with_a_verified_graph() {
        let mut g = figure1();
        let reference = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            guard: GuardConfig {
                fuel: Some(1),
                ..GuardConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        assert!(
            stats
                .bailouts
                .iter()
                .any(|b| b.reason == BailoutReason::FuelExhausted && !b.recovered),
            "bailouts: {:?}",
            stats.bailouts
        );
        checkpoint(&g).unwrap();
        for v in [-3i64, 0, 5] {
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                execute(&reference, &[Value::Int(v)]).outcome,
            );
        }
    }

    #[test]
    fn zero_deadline_bails_out_with_a_verified_graph() {
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            guard: GuardConfig {
                deadline: Some(std::time::Duration::ZERO),
                ..GuardConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        assert!(
            stats
                .bailouts
                .iter()
                .any(|b| b.reason == BailoutReason::DeadlineExceeded),
            "bailouts: {:?}",
            stats.bailouts
        );
        checkpoint(&g).unwrap();
    }

    #[test]
    fn size_budget_rejections_are_recorded() {
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            tradeoff: TradeoffConfig {
                size_increase_budget: 1.0, // no growth allowed
                ..TradeoffConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        // The false-path candidate's benefit clears the cost heuristic
        // but the zero growth budget blocks it — that exact incident
        // must be visible in the stats.
        assert!(
            stats.bailouts.iter().any(|b| {
                b.reason == BailoutReason::SizeBudgetExceeded
                    && b.tier == Tier::Tradeoff
                    && b.recovered
            }),
            "bailouts: {:?}",
            stats.bailouts
        );
        assert_eq!(stats.duplications, 0);
        checkpoint(&g).unwrap();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_transform_panic_is_contained() {
        use crate::faultinject::{arm, disarm, FaultKind, FaultPlan};
        let reference = figure1();
        let mut g = figure1();
        let model = CostModel::new();
        arm(FaultPlan {
            site: "transform/copy-body",
            kind: FaultKind::Panic,
            nth: 0,
            seed: 0,
        });
        let stats = compile(&mut g, &model, OptLevel::Dbds, &DbdsConfig::default());
        let (_, fired) = disarm();
        assert!(fired, "the fault must have been reached");
        assert!(
            stats.bailouts.iter().any(|b| {
                matches!(b.reason, BailoutReason::TransformPanicked(_)) && b.recovered
            }),
            "bailouts: {:?}",
            stats.bailouts
        );
        checkpoint(&g).unwrap();
        for v in [-3i64, 0, 5] {
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                execute(&reference, &[Value::Int(v)]).outcome,
            );
        }
    }

    /// Listing 1 shaped so the cold path decides the second conditional:
    /// on the `bf` edge the merge's φ is the constant 13, so `13 > 12`
    /// folds and the DST continues through the decided branch into
    /// `b12` — a branch-split candidate.
    fn split_listing() -> Graph {
        let mut b = GraphBuilder::new("split", &[Type::Int], empty_table());
        let i = b.param(0);
        let zero = b.iconst(0);
        let thirteen = b.iconst(13);
        let twelve = b.iconst(12);
        let one = b.iconst(1);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm, b12, bi) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![i, thirteen], Type::Int);
        let c2 = b.cmp(CmpOp::Gt, p, twelve);
        b.branch(c2, b12, bi, 0.5);
        b.switch_to(b12);
        let q = b.add(p, one);
        b.ret(Some(q));
        b.switch_to(bi);
        b.ret(Some(i));
        b.finish()
    }

    #[test]
    fn branch_splitting_eliminates_the_decided_conditional() {
        let mut g = split_listing();
        let reference = split_listing();
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        assert!(stats.split_candidates > 0, "stats: {stats:?}");
        assert!(stats.split_applied >= 1, "stats: {stats:?}");
        assert_eq!(stats.frontier_violations, 0, "stats: {stats:?}");
        checkpoint(&g).unwrap();
        for v in [-7i64, 0, 1, 12, 13, 100] {
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                execute(&reference, &[Value::Int(v)]).outcome,
                "input {v}"
            );
        }
    }

    #[test]
    fn merge_only_ablation_is_dominated_on_split_shapes() {
        let model = CostModel::new();
        let measure = |enable: bool| {
            let cfg = DbdsConfig {
                enable_branch_splitting: enable,
                ..DbdsConfig::default()
            };
            let mut g = split_listing();
            let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
            let cycles = model.weighted_cycles(&g, &mut AnalysisCache::new());
            (stats, cycles)
        };
        let (combined, combined_cycles) = measure(true);
        let (merge_only, merge_only_cycles) = measure(false);
        assert_eq!(merge_only.split_candidates, 0);
        assert_eq!(merge_only.split_applied, 0);
        assert!(combined.split_applied >= 1, "stats: {combined:?}");
        assert!(
            combined_cycles <= merge_only_cycles,
            "combined ({combined_cycles}) must not lose to merge-only ({merge_only_cycles})"
        );
    }

    #[test]
    fn reverse_analyses_hit_the_cache_during_the_phase() {
        // The pre-warm computes postdom/frontiers/control-dep once per
        // iteration; the CDG cross-check and the interference frontiers
        // then revalidate as pure hits at the same version.
        let mut g = split_listing();
        let stats = compile(
            &mut g,
            &CostModel::new(),
            OptLevel::Dbds,
            &DbdsConfig::default(),
        );
        assert!(stats.cache.rev_misses > 0, "stats: {stats:?}");
        assert!(stats.cache.rev_hits > 0, "stats: {stats:?}");
    }

    #[test]
    fn fingerprint_distinguishes_branch_splitting() {
        let on = DbdsConfig {
            enable_branch_splitting: true,
            ..DbdsConfig::default()
        };
        let off = DbdsConfig {
            enable_branch_splitting: false,
            ..DbdsConfig::default()
        };
        assert_ne!(
            on.fingerprint(OptLevel::Dbds),
            off.fingerprint(OptLevel::Dbds)
        );
    }

    #[test]
    fn unchanged_iteration_recomputes_no_dominators() {
        // An already-optimal straight-line graph: the phase's fixpoint
        // pipeline and the simulation tier run repeatedly without any
        // structural change, so after the first (cold) computation every
        // analysis lookup must be a cache hit.
        let mut b = GraphBuilder::new("line", &[Type::Int], empty_table());
        let x = b.param(0);
        b.ret(Some(x));
        let mut g = b.finish();
        let model = CostModel::new();
        let mut cache = AnalysisCache::new();
        // Warm the cache: one optimize pass (no structural change on this
        // graph) plus one simulation sweep.
        dbds_opt::optimize_full(&mut g, &mut cache);
        simulate_paths(&g, &model, &mut cache, 1);
        let warm = cache.stats();
        // A full no-change phase iteration on the warm cache.
        let stats = run_dbds(
            &mut g,
            &model,
            &DbdsConfig::default(),
            SelectionMode::CostBenefit,
            &mut cache,
        );
        assert_eq!(stats.duplications, 0);
        let now = cache.stats();
        assert_eq!(
            now.misses, warm.misses,
            "no-structural-change iteration must not recompute any analysis"
        );
        assert_eq!(now.invalidations, warm.invalidations);
        assert!(now.hits > warm.hits);
        // The delta recorded into PhaseStats agrees: all hits, no misses.
        assert_eq!(stats.cache.misses, 0);
        assert!(stats.cache.hits > 0);
    }
}
