//! The tail-duplication transformation.
//!
//! [`duplicate`] copies a merge block `b_m` into one of its predecessors
//! `b_pi` (§4.3, the optimization tier): a fresh block `b_m_i` receives a
//! copy of every non-φ instruction with φs substituted by their input on
//! the `b_pi` edge, the `b_pi → b_m` edge is retargeted to the copy, and
//! SSA form is repaired — every value defined in `b_m` and used in blocks
//! no longer dominated by it gets φs at the new join points via
//! [`SsaBuilder`]. This is exactly the "complex analysis to generate valid
//! φ instructions for usages in dominated blocks" that §3.1 says the
//! transformation requires.

use crate::faultinject::fault_point;
use dbds_ir::{BlockId, Graph, Inst, InstId};
use dbds_opt::{SsaBuilder, SsaRepairError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a requested duplication cannot be performed.
///
/// All variants are graph-invariant violations the phase driver maps to
/// [`BailoutReason::VerifierRejected`](crate::BailoutReason) — a typed
/// refusal rather than a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// `pred == merge`: a self-loop header cannot be duplicated into
    /// itself.
    SelfDuplication(BlockId),
    /// The target block has fewer than two predecessors.
    NotAMerge(BlockId),
    /// `pred` is not a predecessor of `merge`.
    NotAPredecessor {
        /// The block claimed to be a predecessor.
        pred: BlockId,
        /// The merge it is not a predecessor of.
        merge: BlockId,
    },
    /// An instruction in a φ slot is not a φ.
    MalformedPhi(InstId),
    /// On-demand SSA reconstruction failed while repairing uses.
    SsaRepair(SsaRepairError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::SelfDuplication(b) => {
                write!(f, "cannot duplicate {b} into itself")
            }
            TransformError::NotAMerge(b) => write!(f, "{b} is not a control-flow merge"),
            TransformError::NotAPredecessor { pred, merge } => {
                write!(f, "{pred} is not a predecessor of {merge}")
            }
            TransformError::MalformedPhi(i) => write!(f, "{i} sits in a phi slot but is not one"),
            TransformError::SsaRepair(e) => write!(f, "SSA repair failed: {e}"),
        }
    }
}

impl Error for TransformError {}

impl From<SsaRepairError> for TransformError {
    fn from(e: SsaRepairError) -> Self {
        TransformError::SsaRepair(e)
    }
}

/// The result of one duplication.
#[derive(Clone, Debug)]
pub struct Duplication {
    /// The predecessor the merge was duplicated into.
    pub pred: BlockId,
    /// The original merge block (still present, with one predecessor
    /// fewer).
    pub merge: BlockId,
    /// The copy block now targeted by `pred`.
    pub copy: BlockId,
    /// Mapping from original instructions of `merge` to their substitutes
    /// in the copy: φs map to their `pred`-edge input, other instructions
    /// to their copies.
    pub substitution: HashMap<InstId, InstId>,
}

/// Duplicates `merge` into `pred`.
///
/// Afterwards `pred` branches to a fresh copy of `merge` specialized to
/// the `pred` path, while `merge` keeps serving the remaining
/// predecessors. The graph is left in valid SSA form; degenerate shapes
/// (a merge with one predecessor left, single-input φs) are deliberately
/// *not* cleaned up here — run the `dbds-opt` simplification passes.
///
/// # Panics
///
/// Panics if `pred` is not a predecessor of `merge`, if `merge` has fewer
/// than two predecessors, or if `pred == merge` (self-loop headers cannot
/// be duplicated into themselves). [`try_duplicate`] is the non-panicking
/// form.
pub fn duplicate(g: &mut Graph, pred: BlockId, merge: BlockId) -> Duplication {
    try_duplicate(g, pred, merge).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`duplicate`]: refuses invalid requests with a typed
/// [`TransformError`] instead of panicking, so the phase driver can bail
/// out and keep compiling.
///
/// # Errors
///
/// Returns a [`TransformError`] when the `(pred, merge)` pair does not
/// describe a duplicable edge or the graph violates a φ/SSA invariant
/// mid-transform. The graph may be left partially transformed on error —
/// callers run this inside an undo-log transaction and roll it back (the
/// phase driver's checkpoint path, [`transact`](crate::transact)).
pub fn try_duplicate(
    g: &mut Graph,
    pred: BlockId,
    merge: BlockId,
) -> Result<Duplication, TransformError> {
    if pred == merge {
        return Err(TransformError::SelfDuplication(pred));
    }
    if g.preds(merge).len() < 2 {
        return Err(TransformError::NotAMerge(merge));
    }
    if !g.preds(merge).contains(&pred) {
        return Err(TransformError::NotAPredecessor { pred, merge });
    }
    fault_point("transform/entry", Some(g));
    let k = g.pred_index(merge, pred);

    // Substitution: φs become their input on the pred edge.
    let mut subst: HashMap<InstId, InstId> = HashMap::new();
    let phis: Vec<InstId> = g.phis(merge).to_vec();
    for &phi in &phis {
        match g.inst(phi) {
            Inst::Phi { inputs } => {
                subst.insert(phi, inputs[k]);
            }
            _ => return Err(TransformError::MalformedPhi(phi)),
        }
    }

    // Copy the non-φ body into a fresh block.
    fault_point("transform/copy-body", Some(g));
    let copy = g.add_block();
    let body: Vec<InstId> = g.block_insts(merge)[phis.len()..].to_vec();
    for &i in &body {
        let mut inst = g.inst(i).clone();
        inst.for_each_input_mut(|op| {
            if let Some(&s) = subst.get(op) {
                *op = s;
            }
        });
        let ty = g.ty(i);
        let i2 = g.append_inst(copy, inst, ty);
        subst.insert(i, i2);
    }

    // Copy the terminator, substituting inputs, and connect its edges.
    // Each successor's φs get the substituted version of the input they
    // receive on the `merge` edge.
    let mut term = g.terminator(merge).clone();
    term.for_each_input_mut(|op| {
        if let Some(&s) = subst.get(op) {
            *op = s;
        }
    });
    let succs = term.successors();
    let mut phi_inputs: Vec<Vec<InstId>> = Vec::with_capacity(succs.len());
    for &s in &succs {
        let from_merge = g.pred_index(s, merge);
        let mut inputs: Vec<InstId> = Vec::with_capacity(g.phis(s).len());
        for &phi in g.phis(s) {
            match g.inst(phi) {
                Inst::Phi { inputs: orig } => {
                    let orig = orig[from_merge];
                    inputs.push(subst.get(&orig).copied().unwrap_or(orig));
                }
                _ => return Err(TransformError::MalformedPhi(phi)),
            }
        }
        phi_inputs.push(inputs);
    }
    g.install_terminator_with_phi_inputs(copy, term, &phi_inputs);

    // Retarget pred → merge to pred → copy (drops the φ inputs at k).
    g.retarget_edge(pred, merge, copy, &[]);
    fault_point("transform/retarget", Some(g));

    // SSA repair: values defined in `merge` that are used outside of it
    // now have two definitions (original and copy). Rewrite such uses to
    // the reaching definition, inserting φs on demand. A single scan
    // collects the use sites of every repaired value at once.
    fault_point("transform/ssa-repair", Some(g));
    let defined: Vec<InstId> = phis.iter().chain(body.iter()).copied().collect();
    let sites = collect_use_sites(g, merge, copy, &defined);
    for &v in &defined {
        if let Some(v_sites) = sites.get(&v) {
            repair_value(g, merge, copy, v, subst[&v], v_sites)?;
        }
    }

    Ok(Duplication {
        pred,
        merge,
        copy,
        substitution: subst,
    })
}

/// One out-of-copy use of a repaired value.
enum UseSite {
    /// Operand of a non-φ instruction.
    Operand { user: InstId, block: BlockId },
    /// φ input arriving over the `pred` edge.
    PhiInput { user: InstId, pred: BlockId },
    /// Terminator operand.
    TermInput { block: BlockId },
}

/// Collects, in one pass, the use sites that need repair for every value
/// of `defined` (the merge block's φs and body instructions).
///
/// φ-input sites are collected even inside the merge block itself: when
/// the merge is a loop header, its remaining φs read loop-carried values
/// along back edges, and the copy introduces a second loop entry those
/// reads must merge with (φ insertion at the loop-body join). Only the
/// copy is exempt (it has no φs and its operands were already
/// substituted), and edges from merge/copy carry the local definitions
/// unchanged.
fn collect_use_sites(
    g: &Graph,
    merge: BlockId,
    copy: BlockId,
    defined: &[InstId],
) -> HashMap<InstId, Vec<UseSite>> {
    let set: std::collections::HashSet<InstId> = defined.iter().copied().collect();
    let mut sites: HashMap<InstId, Vec<UseSite>> = HashMap::new();
    for b in g.blocks() {
        for &i in g.block_insts(b) {
            match g.inst(i) {
                Inst::Phi { inputs } => {
                    if b == copy {
                        continue;
                    }
                    let preds = g.preds(b);
                    for (input, &p) in inputs.iter().zip(preds) {
                        if set.contains(input) && p != merge && p != copy {
                            sites
                                .entry(*input)
                                .or_default()
                                .push(UseSite::PhiInput { user: i, pred: p });
                        }
                    }
                }
                inst => {
                    if b == merge || b == copy {
                        continue; // intra-block uses stay with the local def
                    }
                    let mut used: Vec<InstId> = Vec::new();
                    inst.for_each_input(|op| {
                        if set.contains(&op) && !used.contains(&op) {
                            used.push(op);
                        }
                    });
                    for v in used {
                        sites
                            .entry(v)
                            .or_default()
                            .push(UseSite::Operand { user: i, block: b });
                    }
                }
            }
        }
        if b != merge && b != copy {
            let mut used: Vec<InstId> = Vec::new();
            g.terminator(b).for_each_input(|op| {
                if set.contains(&op) && !used.contains(&op) {
                    used.push(op);
                }
            });
            for v in used {
                sites
                    .entry(v)
                    .or_default()
                    .push(UseSite::TermInput { block: b });
            }
        }
    }
    sites
}

/// Rewrites the collected uses of `v` (defined in `merge`, with
/// substitute `v2` valid at the end of `copy`) to their reaching
/// definitions, inserting φs on demand.
fn repair_value(
    g: &mut Graph,
    merge: BlockId,
    copy: BlockId,
    v: InstId,
    v2: InstId,
    sites: &[UseSite],
) -> Result<(), TransformError> {
    if sites.is_empty() {
        return Ok(());
    }
    let ty = g.ty(v);
    let mut defs = HashMap::new();
    defs.insert(merge, v);
    defs.insert(copy, v2);
    let mut ssa = SsaBuilder::new(ty, defs);
    for site in sites {
        match site {
            UseSite::Operand { user, block } => {
                let reaching = ssa.try_value_at_start(g, *block)?;
                if reaching != v {
                    g.inst_mut(*user).for_each_input_mut(|op| {
                        if *op == v {
                            *op = reaching;
                        }
                    });
                }
            }
            UseSite::PhiInput { user, pred } => {
                let reaching = ssa.try_value_at_end(g, *pred)?;
                if reaching != v {
                    // Rewrite only the slots whose pred matches.
                    let user_block = g
                        .block_of(*user)
                        .ok_or(TransformError::MalformedPhi(*user))?;
                    let pred_positions: Vec<usize> = g
                        .preds(user_block)
                        .iter()
                        .enumerate()
                        .filter_map(|(ix, &p)| (p == *pred).then_some(ix))
                        .collect();
                    if let Inst::Phi { inputs } = g.inst_mut(*user) {
                        for ix in pred_positions {
                            if inputs[ix] == v {
                                inputs[ix] = reaching;
                            }
                        }
                    }
                }
            }
            UseSite::TermInput { block } => {
                let reaching = ssa.try_value_at_start(g, *block)?;
                if reaching != v {
                    g.patch_terminator_inputs(*block, |op| {
                        if *op == v {
                            *op = reaching;
                        }
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    /// Figure 1a: if (x > 0) φ = x else φ = 0; return 2 + φ.
    fn figure1() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        (b.finish(), bt, bf, bm)
    }

    #[test]
    fn duplicates_figure1_one_pred() {
        let (mut g, bt, bf, bm) = figure1();
        let dup = duplicate(&mut g, bt, bm);
        verify(&g).unwrap();
        assert_eq!(g.preds(bm), &[bf]);
        assert_eq!(g.succs(bt), vec![dup.copy]);
        // Semantics preserved on both paths.
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-3)]).outcome, Ok(Value::Int(2)));
        // The copy's add uses x directly (the φ input on the bt edge).
        let x = g.param_values()[0];
        let copied_add = g
            .block_insts(dup.copy)
            .iter()
            .copied()
            .find(|&i| matches!(g.inst(i), Inst::Binary { .. }))
            .unwrap();
        assert!(g.inst(copied_add).collect_inputs().contains(&x));
    }

    #[test]
    fn duplicates_figure1_then_merge_degenerates() {
        let (mut g, bt, bf, bm) = figure1();
        duplicate(&mut g, bt, bm);
        // After the first duplication the merge has a single predecessor:
        // it is no longer a duplication candidate (the phase skips it) and
        // CFG simplification folds it into bf.
        assert!(!g.is_merge(bm));
        assert_eq!(g.preds(bm), &[bf]);
        dbds_opt::simplify_cfg(&mut g);
        dbds_opt::remove_dead_code(&mut g);
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-3)]).outcome, Ok(Value::Int(2)));
    }

    #[test]
    fn repairs_uses_in_successor_blocks() {
        // The merge defines a value used in a later block: after
        // duplication a φ must be inserted at the join.
        let mut b = GraphBuilder::new("rep", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm, below) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi); // defined in bm
        b.jump(below);
        b.switch_to(below);
        let sq = b.mul(sum, sum); // used below bm
        b.ret(Some(sq));
        let mut g = b.finish();
        let dup = duplicate(&mut g, bt, bm);
        verify(&g).unwrap();
        // below now has two preds (bm and the copy) and a repair φ.
        assert_eq!(g.preds(below).len(), 2);
        assert_eq!(g.phis(below).len(), 1);
        let _ = dup;
        assert_eq!(execute(&g, &[Value::Int(3)]).outcome, Ok(Value::Int(25)));
        assert_eq!(execute(&g, &[Value::Int(-1)]).outcome, Ok(Value::Int(4)));
    }

    #[test]
    fn duplicating_block_ending_in_branch() {
        // Listing 1: the merge ends in a branch (p > 12).
        let mut b = GraphBuilder::new("l1", &[Type::Int], empty_table());
        let i = b.param(0);
        let zero = b.iconst(0);
        let thirteen = b.iconst(13);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm, bret12, breti) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![i, thirteen], Type::Int);
        let c2 = b.cmp(CmpOp::Gt, p, twelve);
        b.branch(c2, bret12, breti, 0.5);
        b.switch_to(bret12);
        b.ret(Some(twelve));
        b.switch_to(breti);
        b.ret(Some(i));
        let mut g = b.finish();
        let dup = duplicate(&mut g, bf, bm);
        verify(&g).unwrap();
        // The copy branches to the same return blocks.
        assert_eq!(g.succs(dup.copy), vec![bret12, breti]);
        assert_eq!(g.preds(bret12).len(), 2);
        for v in [-5i64, 0, 5, 13, 20] {
            let expected = if v > 0 {
                if v > 12 {
                    12
                } else {
                    v
                }
            } else {
                12
            };
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                Ok(Value::Int(expected)),
                "input {v}"
            );
        }
    }

    #[test]
    fn successor_phis_get_copied_inputs() {
        // bm computes t = x+1 and jumps to a join that φs over t and
        // another path's value.
        let mut b = GraphBuilder::new("sp", &[Type::Int, Type::Bool, Type::Bool], empty_table());
        let x = b.param(0);
        let c1 = b.param(1);
        let c2 = b.param(2);
        let one = b.iconst(1);
        let (ba, bb, bm, bother, bjoin) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c1, ba, bb, 0.5);
        b.switch_to(ba);
        b.jump(bm);
        b.switch_to(bb);
        b.branch(c2, bm, bother, 0.5);
        b.switch_to(bm);
        let p = b.phi(vec![x, one], Type::Int);
        let t = b.add(p, one);
        b.jump(bjoin);
        b.switch_to(bother);
        let hundred = b.iconst(100);
        b.jump(bjoin);
        b.switch_to(bjoin);
        let q = b.phi(vec![t, hundred], Type::Int);
        b.ret(Some(q));
        let mut g = b.finish();
        let dup = duplicate(&mut g, ba, bm);
        verify(&g).unwrap();
        // bjoin now has three preds; its φ got the copied add as input.
        assert_eq!(g.preds(bjoin).len(), 3);
        let copied_add = dup.substitution[&t];
        match g.inst(g.phis(bjoin)[0]) {
            Inst::Phi { inputs } => assert!(inputs.contains(&copied_add)),
            _ => panic!(),
        }
        // Semantics.
        let r = execute(&g, &[Value::Int(7), Value::Bool(true), Value::Bool(false)]);
        assert_eq!(r.outcome, Ok(Value::Int(8)));
        let r = execute(&g, &[Value::Int(7), Value::Bool(false), Value::Bool(true)]);
        assert_eq!(r.outcome, Ok(Value::Int(2)));
        let r = execute(&g, &[Value::Int(7), Value::Bool(false), Value::Bool(false)]);
        assert_eq!(r.outcome, Ok(Value::Int(100)));
    }

    #[test]
    fn three_way_merge_partial_duplication() {
        let mut b = GraphBuilder::new("three", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let ten = b.iconst(10);
        let c1 = b.cmp(CmpOp::Lt, x, zero);
        let (bneg, brest, bsmall, bbig, bm) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c1, bneg, brest, 0.3);
        b.switch_to(brest);
        let c2 = b.cmp(CmpOp::Lt, x, ten);
        b.branch(c2, bsmall, bbig, 0.5);
        b.switch_to(bneg);
        b.jump(bm);
        b.switch_to(bsmall);
        b.jump(bm);
        b.switch_to(bbig);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![zero, x, ten], Type::Int);
        let two = b.iconst(2);
        let d = b.mul(p, two);
        b.ret(Some(d));
        let mut g = b.finish();
        duplicate(&mut g, bsmall, bm);
        verify(&g).unwrap();
        assert_eq!(g.preds(bm).len(), 2);
        for v in [-4i64, 4, 40] {
            let expected = if v < 0 {
                0
            } else if v < 10 {
                2 * v
            } else {
                20
            };
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                Ok(Value::Int(expected))
            );
        }
        // Duplicate a second predecessor.
        duplicate(&mut g, bneg, bm);
        verify(&g).unwrap();
        for v in [-4i64, 4, 40] {
            let expected = if v < 0 {
                0
            } else if v < 10 {
                2 * v
            } else {
                20
            };
            assert_eq!(
                execute(&g, &[Value::Int(v)]).outcome,
                Ok(Value::Int(expected))
            );
        }
    }

    #[test]
    fn merge_with_effects_duplicates_correctly() {
        // Stores and calls in the merge block must be copied, not shared.
        let mut t = ClassTable::new();
        let cls = t.add_class("S");
        let f = t.add_field(cls, "v", Type::Int);
        let mut b = GraphBuilder::new("eff", &[Type::Ref(cls), Type::Bool], Arc::new(t));
        let obj = b.param(0);
        let c = b.param(1);
        let one = b.iconst(1);
        let two = b.iconst(2);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![one, two], Type::Int);
        b.store(obj, f, p);
        let l = b.load(obj, f);
        b.ret(Some(l));
        let mut g = b.finish();
        duplicate(&mut g, bt, bm);
        verify(&g).unwrap();
        let table = g.class_table().clone();
        for (flag, expected) in [(true, 1i64), (false, 2)] {
            let mut heap = dbds_ir::Heap::new();
            let o = heap.alloc_object(&table, cls);
            let r = dbds_ir::execute_with_heap(
                &g,
                &[o, Value::Bool(flag)],
                &mut heap,
                dbds_ir::DEFAULT_FUEL,
            );
            assert_eq!(r.outcome, Ok(Value::Int(expected)));
        }
    }

    #[test]
    fn duplication_into_loop_latch() {
        // Loop: header merges entry and latch; body is the latch and also
        // a merge?? Simpler: duplicate a merge inside a loop body.
        let mut b = GraphBuilder::new("loop", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let two = b.iconst(2);
        let header = b.new_block();
        let (bodya, bodyb, bodym, latch, exit) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.jump(header);
        b.switch_to(latch);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let acc = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, bodya, exit, 0.9);
        b.switch_to(bodya);
        let parity = b.rem(i, two);
        let is_even = b.cmp(CmpOp::Eq, parity, zero);
        b.branch(is_even, bodyb, bodym, 0.5);
        b.switch_to(bodyb);
        b.jump(bodym);
        b.switch_to(bodym);
        let inc = b.phi(vec![two, one], Type::Int);
        let acc2 = b.add(acc, inc);
        b.jump(latch);
        b.switch_to(exit);
        b.ret(Some(acc));
        let mut g = b.finish();
        // Patch loop phis.
        let iplus = g.append_inst(
            latch,
            Inst::Binary {
                op: dbds_ir::BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = iplus;
        }
        if let Inst::Phi { inputs } = g.inst_mut(acc) {
            inputs[1] = acc2;
        }
        verify(&g).unwrap();
        let reference = execute(&g, &[Value::Int(6)]);
        // acc = +2 (i=0 even? wait: bodyb on even → inc=2) …
        duplicate(&mut g, bodyb, bodym);
        verify(&g).unwrap();
        let after = execute(&g, &[Value::Int(6)]);
        assert_eq!(reference.outcome, after.outcome);
    }

    #[test]
    fn duplicating_a_loop_header_repairs_back_edge_phis() {
        // Regression test: a loop header with a self-referential
        // loop-invariant φ (`v = φ(entry: x, latch: v)`). Duplicating the
        // header into its entry predecessor creates a second loop entry;
        // the back-edge φ input must be re-routed through a new φ at the
        // loop-body join or SSA breaks.
        let mut b = GraphBuilder::new("lh", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(pre);
        b.switch_to(pre);
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        // i counts; inv is loop-invariant via a self-input.
        let i = b.phi(vec![zero, zero], Type::Int);
        let inv = b.phi(vec![x, x], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        let out = b.add(i, inv);
        b.ret(Some(out));
        let mut g = b.finish();
        let inc = g.append_inst(
            body,
            Inst::Binary {
                op: dbds_ir::BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        if let Inst::Phi { inputs } = g.inst_mut(inv) {
            inputs[1] = inv; // self-input: invariant around the loop
        }
        verify(&g).unwrap();
        let reference: Vec<_> = [0i64, 3, 7]
            .iter()
            .map(|&nv| execute(&g, &[Value::Int(11), Value::Int(nv)]).outcome)
            .collect();

        // The header is a merge of [pre, body]; duplicate into `pre`.
        duplicate(&mut g, pre, header);
        verify(&g).unwrap();
        // Simplification must not meet self-referential single-input φs.
        dbds_opt::simplify_cfg(&mut g);
        dbds_opt::remove_dead_code(&mut g);
        verify(&g).unwrap();
        let after: Vec<_> = [0i64, 3, 7]
            .iter()
            .map(|&nv| execute(&g, &[Value::Int(11), Value::Int(nv)]).outcome)
            .collect();
        assert_eq!(reference, after);
    }

    #[test]
    #[should_panic(expected = "not a control-flow merge")]
    fn rejects_non_merge() {
        let mut b = GraphBuilder::new("nm", &[], empty_table());
        let b1 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.ret(None);
        let mut g = b.finish();
        let entry = g.entry();
        duplicate(&mut g, entry, b1);
    }
}
