//! Bailout-and-recovery guardrails for the DBDS phase.
//!
//! The paper's phase runs inside a production JIT, where a misbehaving
//! optimization must leave a correct compilation behind rather than take
//! down the compiler. This module provides the pieces the three tiers
//! share:
//!
//! - [`GuardConfig`] — fuel / deadline budgets and the checkpoint switch,
//!   part of [`DbdsConfig`](crate::DbdsConfig).
//! - [`Budget`] — cooperative accounting the simulation, trade-off and
//!   optimization tiers poll; exhaustion becomes a structured
//!   [`BailoutReason`] instead of unbounded work.
//! - [`checkpoint`] — `dbds_ir::verify` as a phase checkpoint, mapping
//!   rejection into [`BailoutReason::VerifierRejected`].
//! - [`isolate`] — `catch_unwind` with a panic-hook silencer, converting
//!   a panicking transformation into
//!   [`BailoutReason::TransformPanicked`] without spamming stderr.
//! - [`transact`] — [`isolate`] composed with the IR undo log: the
//!   closure runs inside a [`Graph::begin_txn`] frame that is committed
//!   on success and rolled back (in O(edits), not O(graph)) on panic or
//!   error.
//! - [`BailoutRecord`] — the observability row collected into
//!   [`PhaseStats::bailouts`](crate::PhaseStats::bailouts).
//!
//! Ownership is strictly **per compilation unit**: every
//! [`run_dbds`](crate::run_dbds) / [`compile`](crate::compile) call
//! creates its own [`Budget`] (and its own analysis cache), and
//! [`isolate`]'s panic-hook silencer is thread-local. Units compiled
//! concurrently on the harness's unit queue therefore cannot poison each
//! other: one unit's fuel exhaustion, deadline miss or contained panic
//! never charges or silences a neighbor.

use dbds_ir::{BlockId, Graph};
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Why a tier abandoned (part of) its work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BailoutReason {
    /// The instruction-visit fuel budget ran out.
    FuelExhausted,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A checkpoint verification (or a typed transform error) rejected
    /// the graph state; the payload is a one-line digest.
    VerifierRejected(String),
    /// A transformation panicked and was caught; the payload is the panic
    /// message.
    TransformPanicked(String),
    /// The trade-off tier's code-size budget blocked a candidate whose
    /// benefit had already cleared the cost heuristic.
    SizeBudgetExceeded,
}

impl BailoutReason {
    /// Stable lowercase label for aggregation and reports.
    pub fn label(&self) -> &'static str {
        match self {
            BailoutReason::FuelExhausted => "fuel-exhausted",
            BailoutReason::DeadlineExceeded => "deadline-exceeded",
            BailoutReason::VerifierRejected(_) => "verifier-rejected",
            BailoutReason::TransformPanicked(_) => "transform-panicked",
            BailoutReason::SizeBudgetExceeded => "size-budget-exceeded",
        }
    }
}

impl fmt::Display for BailoutReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BailoutReason::VerifierRejected(msg) => write!(f, "verifier-rejected: {msg}"),
            BailoutReason::TransformPanicked(msg) => write!(f, "transform-panicked: {msg}"),
            other => f.write_str(other.label()),
        }
    }
}

/// The DBDS tier a bailout happened in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The simulation tier (dominator-tree walk + DSTs).
    Simulation,
    /// The trade-off tier (`shouldDuplicate` + budgets).
    Tradeoff,
    /// The optimization tier (duplication transform + cleanup passes).
    Optimization,
}

impl Tier {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Simulation => "simulation",
            Tier::Tradeoff => "tradeoff",
            Tier::Optimization => "optimization",
        }
    }
}

/// One bailout incident of a compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BailoutRecord {
    /// What went wrong (or ran out).
    pub reason: BailoutReason,
    /// The tier it happened in.
    pub tier: Tier,
    /// The (predecessor, merge) candidate being processed, if any.
    pub candidate: Option<(BlockId, BlockId)>,
    /// `true` when the failure was contained — rolled back to a verified
    /// state (or the candidate skipped) and the phase continued. `false`
    /// when the phase stopped early (budget exhaustion).
    pub recovered: bool,
}

/// Guardrail tunables of the phase, part of
/// [`DbdsConfig`](crate::DbdsConfig).
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Instruction-visit fuel for the whole phase. `None` = unbounded
    /// (the default: the happy path pays no budget checks beyond a
    /// counter increment).
    pub fuel: Option<u64>,
    /// Wall-clock deadline for the whole phase, measured from its start.
    /// `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Verify the graph after each applied duplication, keep rollback
    /// snapshots, and isolate transform panics. Off restores the
    /// pre-guardrail behavior: failures propagate as panics.
    pub checkpoints: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            fuel: None,
            deadline: None,
            checkpoints: true,
        }
    }
}

/// Sentinel for an unbounded fuel tank (a `fuel` budget of `u64::MAX`
/// is treated as unbounded).
const UNBOUNDED: u64 = u64::MAX;

/// Cooperative fuel / deadline accounting shared by the three tiers.
///
/// Internally atomic, so a `&Budget` can thread through the recursive
/// simulation walk alongside other borrows *and* cross into the
/// simulation tier's worker threads (the type is `Sync`). Deterministic
/// accounting still happens on a single thread — the parallel tier's
/// in-order commit — while workers only read the budget through
/// [`Budget::stopped_hint`].
#[derive(Debug)]
pub struct Budget {
    /// Remaining fuel; [`UNBOUNDED`] = no limit.
    fuel: AtomicU64,
    deadline: Option<Instant>,
    used: AtomicU64,
}

impl Budget {
    /// A budget enforcing `guard`'s limits, with the deadline clock
    /// starting now.
    pub fn new(guard: &GuardConfig) -> Self {
        Budget {
            fuel: AtomicU64::new(guard.fuel.unwrap_or(UNBOUNDED)),
            deadline: guard.deadline.map(|d| Instant::now() + d),
            used: AtomicU64::new(0),
        }
    }

    /// A budget that never exhausts (fuel is still counted).
    pub fn unlimited() -> Self {
        Budget {
            fuel: AtomicU64::new(UNBOUNDED),
            deadline: None,
            used: AtomicU64::new(0),
        }
    }

    /// Burns `units` of fuel and polls the deadline.
    ///
    /// # Errors
    ///
    /// Returns the exhausted resource as a [`BailoutReason`]; once the
    /// fuel hits zero every further call fails.
    pub fn consume(&self, units: u64) -> Result<(), BailoutReason> {
        // Compiles to nothing without the `fault-injection` feature.
        if let Some(reason) = crate::faultinject::take_pending_exhaustion() {
            return Err(reason);
        }
        self.used.fetch_add(units, Ordering::Relaxed);
        let mut left = self.fuel.load(Ordering::Relaxed);
        while left != UNBOUNDED {
            // `left == 0` keeps exhaustion sticky: once the tank is
            // empty, even zero-cost polls fail.
            if left == 0 || left < units {
                self.fuel.store(0, Ordering::Relaxed);
                return Err(BailoutReason::FuelExhausted);
            }
            match self.fuel.compare_exchange_weak(
                left,
                left - units,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => left = now,
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BailoutReason::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Polls the budget without burning fuel.
    ///
    /// # Errors
    ///
    /// Same as [`Budget::consume`].
    pub fn check(&self) -> Result<(), BailoutReason> {
        self.consume(0)
    }

    /// Total fuel units consumed so far (also counted when unbounded).
    pub fn fuel_used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// `true` once this budget can no longer succeed: the fuel tank is
    /// empty (sticky) or the deadline has passed. A pure read — nothing
    /// is consumed or recorded — used by simulation workers as a
    /// cancellation hint. Both conditions are monotone, so a `true` here
    /// guarantees every subsequent [`Budget::consume`] fails.
    pub fn stopped_hint(&self) -> bool {
        self.fuel.load(Ordering::Relaxed) == 0 || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Runs the verifier as a phase checkpoint.
///
/// # Errors
///
/// Maps a verification failure into
/// [`BailoutReason::VerifierRejected`] with a one-line digest of the
/// problems.
pub fn checkpoint(g: &Graph) -> Result<(), BailoutReason> {
    dbds_ir::verify(g).map_err(|e| BailoutReason::VerifierRejected(e.summary()))
}

thread_local! {
    /// Nesting depth of in-flight [`isolate`] calls on this thread; the
    /// global hook stays quiet while it is non-zero.
    static SILENCED: Cell<u32> = const { Cell::new(0) };
}

static HOOK: Once = Once::new();

/// Runs `f` with panics caught and converted into
/// [`BailoutReason::TransformPanicked`].
///
/// A process-global panic hook (installed once, delegating to the
/// previous hook outside isolation) keeps the caught panics from printing
/// a message and backtrace for every injected or recovered fault.
/// Callers are responsible for restoring any state `f` may have left
/// half-mutated — use [`transact`] to get that rollback for free from
/// the IR undo log.
///
/// # Errors
///
/// Returns the panic payload's message when `f` panicked.
pub fn isolate<R>(f: impl FnOnce() -> R) -> Result<R, BailoutReason> {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if SILENCED.with(|c| c.get()) == 0 {
                prev(info);
            }
        }));
    });
    SILENCED.with(|c| c.set(c.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SILENCED.with(|c| c.set(c.get() - 1));
    result.map_err(|payload| BailoutReason::TransformPanicked(panic_message(payload.as_ref())))
}

/// Runs `f` against `g` inside an IR transaction with panics isolated.
///
/// On success the transaction is committed; on a panic (caught by
/// [`isolate`]) or an `Err` from `f` it is rolled back, restoring the
/// graph and its version stamps to the state at entry in O(edits made) —
/// the undo-log replacement for the whole-graph
/// [`GraphSnapshot`](dbds_ir::GraphSnapshot) restore. Returns the result
/// alongside the nanoseconds spent on transaction bookkeeping
/// (begin + commit/rollback), which callers fold into their `undo_ns`
/// accounting.
///
/// # Errors
///
/// Propagates `f`'s error, or [`BailoutReason::TransformPanicked`] when
/// `f` panicked — in both cases after the rollback has completed.
pub fn transact<R>(
    g: &mut Graph,
    f: impl FnOnce(&mut Graph) -> Result<R, BailoutReason>,
) -> (Result<R, BailoutReason>, u128) {
    let t = Instant::now();
    g.begin_txn();
    let mut txn_ns = t.elapsed().as_nanos();
    let result = isolate(|| f(g)).and_then(|r| r);
    let t = Instant::now();
    if result.is_ok() {
        g.commit_txn();
    } else {
        g.rollback_txn();
    }
    txn_ns += t.elapsed().as_nanos();
    (result, txn_ns)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            b.consume(1_000_000).unwrap();
        }
        assert_eq!(b.fuel_used(), 1_000_000_000);
    }

    #[test]
    fn fuel_runs_out_and_stays_out() {
        let guard = GuardConfig {
            fuel: Some(10),
            ..GuardConfig::default()
        };
        let b = Budget::new(&guard);
        b.consume(7).unwrap();
        assert_eq!(b.consume(7), Err(BailoutReason::FuelExhausted));
        // Sticky: even a zero-cost poll fails afterwards.
        assert_eq!(b.check(), Err(BailoutReason::FuelExhausted));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let guard = GuardConfig {
            deadline: Some(Duration::ZERO),
            ..GuardConfig::default()
        };
        let b = Budget::new(&guard);
        assert_eq!(b.check(), Err(BailoutReason::DeadlineExceeded));
    }

    #[test]
    fn isolate_returns_value_or_panic_message() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
        match isolate(|| -> i32 { panic!("boom {}", 7) }) {
            Err(BailoutReason::TransformPanicked(msg)) => assert!(msg.contains("boom 7")),
            other => panic!("expected TransformPanicked, got {other:?}"),
        }
        // The silencer unwinds correctly: a later panic is caught again.
        assert!(isolate(|| panic!("again")).is_err());
    }

    #[test]
    fn checkpoint_accepts_valid_and_reports_broken_graphs() {
        use dbds_ir::{ClassTable, GraphBuilder, Type};
        use std::sync::Arc;
        let mut b = GraphBuilder::new("ck", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        let mut g = b.finish();
        checkpoint(&g).unwrap();
        // Corrupt: an extra φ input on a φ-less, predecessor-less entry.
        g.append_phi(g.entry(), vec![], Type::Int);
        // (append_phi allows it — entry has zero preds and zero inputs
        // match — but a φ can never live in a predecessor-less block.)
        match checkpoint(&g) {
            Err(BailoutReason::VerifierRejected(msg)) => {
                assert!(msg.contains("phi"), "{msg}")
            }
            other => panic!("expected VerifierRejected, got {other:?}"),
        }
    }

    #[test]
    fn transact_commits_on_ok_and_rolls_back_on_err_or_panic() {
        use dbds_ir::{ClassTable, GraphBuilder, Type};
        use std::sync::Arc;
        let mut b = GraphBuilder::new("tx", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        b.ret(Some(x));
        let mut g = b.finish();
        let pre_version = g.version();
        let pre_blocks = g.block_count();

        // Ok: the mutation survives.
        let (r, _) = transact(&mut g, |g| {
            g.add_block();
            Ok(())
        });
        r.unwrap();
        assert_eq!(g.block_count(), pre_blocks + 1);

        // Err: the mutation is rolled back, stamps included.
        let mid_version = g.version();
        let (r, _) = transact(&mut g, |g| {
            g.add_block();
            Err::<(), _>(BailoutReason::SizeBudgetExceeded)
        });
        assert_eq!(r, Err(BailoutReason::SizeBudgetExceeded));
        assert_eq!(g.block_count(), pre_blocks + 1);
        assert_eq!(g.version(), mid_version);

        // Panic: isolated, converted, rolled back.
        let (r, _) = transact(&mut g, |g| -> Result<(), BailoutReason> {
            g.add_block();
            panic!("mid-transform fault");
        });
        match r {
            Err(BailoutReason::TransformPanicked(msg)) => {
                assert!(msg.contains("mid-transform fault"));
            }
            other => panic!("expected TransformPanicked, got {other:?}"),
        }
        assert_eq!(g.block_count(), pre_blocks + 1);
        assert_eq!(g.version(), mid_version);
        assert_ne!(g.version(), pre_version);
        assert_eq!(g.txn_depth(), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BailoutReason::FuelExhausted.label(), "fuel-exhausted");
        assert_eq!(
            BailoutReason::VerifierRejected(String::new()).label(),
            "verifier-rejected"
        );
        assert_eq!(Tier::Tradeoff.name(), "tradeoff");
    }
}
