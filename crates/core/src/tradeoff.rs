//! The trade-off tier (§4.2, §5.4).
//!
//! Implements the paper's `shouldDuplicate` heuristic verbatim:
//!
//! ```text
//! (b × p × BS) > c  ∧  (cs < MS)  ∧  (cs + c < is × IB)
//! ```
//!
//! with `b` the benefit (cycles saved), `p` the relative probability of
//! the predecessor, `BS = 256` the benefit scale factor, `c` the code-size
//! cost, `cs` the current compilation-unit size, `is` the initial size,
//! `IB = 1.5` the code-size increase budget and `MS` the VM's maximum
//! compilation-unit size. Candidates are ranked by probability-weighted
//! benefit, with merges not yet duplicated in earlier iterations
//! considered first (§5.2).

use crate::simulation::SimulationResult;
use std::collections::HashSet;
use std::time::Instant;

use dbds_ir::BlockId;

/// Tunable parameters of the trade-off tier. Defaults are the paper's.
#[derive(Clone, Debug)]
pub struct TradeoffConfig {
    /// `BS`: how much estimated cost one probability-weighted cycle of
    /// benefit justifies. The paper derived 256 empirically.
    pub benefit_scale: f64,
    /// `IB`: the maximum code-size growth, relative to the initial size
    /// (1.5 = +50%).
    pub size_increase_budget: f64,
    /// `MS`: the VM's hard limit on compilation-unit size (HotSpot's
    /// `-XX:JVMCINMethodSizeLimit`, 655360 bytes by default).
    pub max_unit_size: u64,
}

impl Default for TradeoffConfig {
    fn default() -> Self {
        TradeoffConfig {
            benefit_scale: 256.0,
            size_increase_budget: 1.5,
            max_unit_size: 655_360,
        }
    }
}

/// How the trade-off tier selects candidates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SelectionMode {
    /// The full cost/benefit heuristic (the paper's *DBDS*
    /// configuration).
    CostBenefit,
    /// Perform every duplication with any benefit, ignoring costs (the
    /// paper's *dupalot* configuration; the hard VM size limit still
    /// applies).
    Dupalot,
}

/// Whether the benefit side of `shouldDuplicate` clears the cost side,
/// ignoring the size budgets: `b × p × BS > c`.
fn benefit_clears_cost(cfg: &TradeoffConfig, benefit: f64, probability: f64, cost: i64) -> bool {
    benefit * probability * cfg.benefit_scale > cost.max(0) as f64
}

/// The size-budget side of `shouldDuplicate`:
/// `cs < MS ∧ cs + c < is × IB`.
fn size_budget_allows(
    cfg: &TradeoffConfig,
    cost: i64,
    current_size: u64,
    initial_size: u64,
) -> bool {
    let cost_pos = cost.max(0) as f64;
    current_size < cfg.max_unit_size
        && (current_size as f64 + cost_pos) < initial_size as f64 * cfg.size_increase_budget
}

/// The paper's `shouldDuplicate(b_pi, b_m, benefit, cost)` predicate.
pub fn should_duplicate(
    cfg: &TradeoffConfig,
    benefit: f64,
    probability: f64,
    cost: i64,
    current_size: u64,
    initial_size: u64,
) -> bool {
    benefit_clears_cost(cfg, benefit, probability, cost)
        && size_budget_allows(cfg, cost, current_size, initial_size)
}

/// The trade-off tier's decision for one round of candidates.
#[derive(Debug, Default)]
pub struct Selection<'a> {
    /// Candidates worth duplicating, in application order.
    pub accepted: Vec<&'a SimulationResult>,
    /// `(pred, merge)` pairs whose benefit cleared the cost heuristic but
    /// that a code-size budget blocked — surfaced as
    /// [`BailoutReason::SizeBudgetExceeded`](crate::BailoutReason)
    /// records for observability; selection behavior is unchanged.
    pub size_rejected: Vec<(BlockId, BlockId)>,
}

/// Ranks the simulation results and selects those worth duplicating,
/// tracking the running size budget. `visited` holds merges already
/// duplicated in previous iterations; fresh merges are preferred.
pub fn select<'a>(
    results: &'a [SimulationResult],
    cfg: &TradeoffConfig,
    mode: SelectionMode,
    initial_size: u64,
    current_size: u64,
    visited: &HashSet<BlockId>,
) -> Vec<&'a SimulationResult> {
    select_with_rejections(results, cfg, mode, initial_size, current_size, visited).accepted
}

/// Like [`select`], but also reports the candidates a size budget turned
/// away even though their benefit justified the cost.
pub fn select_with_rejections<'a>(
    results: &'a [SimulationResult],
    cfg: &TradeoffConfig,
    mode: SelectionMode,
    initial_size: u64,
    current_size: u64,
    visited: &HashSet<BlockId>,
) -> Selection<'a> {
    select_with_rejections_parallel(results, cfg, mode, initial_size, current_size, visited, 1)
        .selection
}

/// A [`Selection`] produced through the parallel pricing fan-out, with
/// the pool observability the phase driver folds into
/// [`PhaseStats`](crate::PhaseStats).
#[derive(Debug)]
pub struct PricedSelection<'a> {
    /// The selection — bit-identical to [`select_with_rejections`] for
    /// every thread count.
    pub selection: Selection<'a>,
    /// Wall-clock nanoseconds of the pricing fan-out. Timing only.
    pub par_ns: u128,
    /// The resolved worker count the pricing ran with.
    pub threads: usize,
}

/// The pricing inputs of one candidate, snapshotted on the pool. Every
/// field is a pure function of the candidate plus the (immutable) config
/// and visited set — the running size budget is deliberately *not* here:
/// it threads through the sequential accept loop below.
struct Price {
    fresh: bool,
    weighted: f64,
    worth_it: bool,
}

/// [`select_with_rejections`] with the per-candidate pricing
/// (`shouldDuplicate`'s cost/benefit side, the probability-weighted
/// benefit and the freshness bit) fanned out over up to `threads`
/// workers of the [`crate::par`] pool.
///
/// Only the *pricing* parallelizes. The ranking sort and the greedy
/// accept loop — whose running size budget makes each decision depend on
/// every earlier one — replay sequentially over the pre-priced
/// candidates, in the exact order the sequential path visits them, so
/// acceptance order, budget accrual and rejection records are
/// bit-identical for every thread count
/// (`core/tests/tradeoff_par_props.rs` proves it).
pub fn select_with_rejections_parallel<'a>(
    results: &'a [SimulationResult],
    cfg: &TradeoffConfig,
    mode: SelectionMode,
    initial_size: u64,
    current_size: u64,
    visited: &HashSet<BlockId>,
    threads: usize,
) -> PricedSelection<'a> {
    let t = Instant::now();
    let threads = crate::par::resolve_threads(threads)
        .min(results.len())
        .max(1);
    // Price every candidate on the pool, results in index order. The
    // sequential path is the same code at threads = 1 (the pool runs
    // inline), so the two can only differ by scheduling.
    let (prices, _loads) = crate::par::map_indexed(threads, results, |_, r| Price {
        fresh: !visited.contains(&r.merge),
        weighted: r.weighted_benefit(),
        worth_it: match mode {
            SelectionMode::CostBenefit => {
                benefit_clears_cost(cfg, r.cycles_saved, r.probability, r.size_cost)
            }
            SelectionMode::Dupalot => r.cycles_saved > 0.0,
        },
    });
    let par_ns = t.elapsed().as_nanos();

    let mut ranked: Vec<usize> = (0..results.len()).collect();
    // New merges first, then descending probability-weighted benefit;
    // break ties deterministically by block ids. `total_cmp` keeps the
    // comparator a total order even for NaN benefits (0-frequency
    // predecessors, estimator bugs) — an inconsistent comparator can
    // panic inside `sort_by` and silently scrambles acceptance order
    // otherwise.
    ranked.sort_by(|&a, &b| {
        prices[b]
            .fresh
            .cmp(&prices[a].fresh)
            .then_with(|| prices[b].weighted.total_cmp(&prices[a].weighted))
            .then_with(|| {
                (results[a].merge, results[a].pred).cmp(&(results[b].merge, results[b].pred))
            })
    });

    let mut selection = Selection::default();
    let mut size = current_size;
    for i in ranked {
        let r = &results[i];
        let worth_it = prices[i].worth_it;
        let fits = match mode {
            SelectionMode::CostBenefit => size_budget_allows(cfg, r.size_cost, size, initial_size),
            SelectionMode::Dupalot => size < cfg.max_unit_size,
        };
        if worth_it && fits {
            selection.accepted.push(r);
            // Accrue the *signed* cost: a duplication that shrinks code
            // (dissolved allocations) reclaims budget for later candidates.
            size = size.saturating_add_signed(r.size_cost);
        } else if worth_it {
            selection.size_rejected.push((r.pred, r.merge));
        }
    }
    PricedSelection {
        selection,
        par_ns,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{CandidateKind, SimulationResult};

    fn result(pred: u32, merge: u32, benefit: f64, prob: f64, cost: i64) -> SimulationResult {
        SimulationResult {
            pred: BlockId(pred),
            merge: BlockId(merge),
            path: vec![BlockId(merge)],
            probability: prob,
            cycles_saved: benefit,
            size_cost: cost,
            opportunities: Vec::new(),
            kind: CandidateKind::MergeDup,
        }
    }

    #[test]
    fn should_duplicate_formula() {
        let cfg = TradeoffConfig::default();
        // b × p × 256 > c (sizes chosen so the growth budget is slack).
        assert!(should_duplicate(&cfg, 1.0, 1.0, 255, 1000, 1000));
        assert!(!should_duplicate(&cfg, 1.0, 1.0, 256, 1000, 1000));
        // Probability scales the benefit down.
        assert!(!should_duplicate(&cfg, 1.0, 0.001, 255, 1000, 1000));
        // Hard unit-size limit.
        assert!(!should_duplicate(&cfg, 100.0, 1.0, 10, 655_360, 655_360));
        // Growth budget: cs + c < is × 1.5.
        assert!(!should_duplicate(&cfg, 100.0, 1.0, 60, 140, 100));
        assert!(should_duplicate(&cfg, 100.0, 1.0, 9, 140, 100));
    }

    #[test]
    fn zero_benefit_never_selected() {
        let cfg = TradeoffConfig::default();
        let results = vec![result(1, 2, 0.0, 1.0, 0)];
        let visited = HashSet::new();
        assert!(select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited
        )
        .is_empty());
        assert!(select(&results, &cfg, SelectionMode::Dupalot, 100, 100, &visited).is_empty());
    }

    #[test]
    fn dupalot_ignores_cost() {
        let cfg = TradeoffConfig::default();
        // Enormous cost, tiny benefit.
        let results = vec![result(1, 2, 0.1, 0.01, 100_000)];
        let visited = HashSet::new();
        assert!(select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited
        )
        .is_empty());
        assert_eq!(
            select(&results, &cfg, SelectionMode::Dupalot, 100, 100, &visited).len(),
            1
        );
    }

    #[test]
    fn ranking_prefers_weighted_benefit() {
        let cfg = TradeoffConfig::default();
        let results = vec![
            result(1, 10, 5.0, 0.1, 1),  // weighted 0.5
            result(2, 11, 3.0, 1.0, 1),  // weighted 3.0
            result(3, 12, 50.0, 0.9, 1), // weighted 45
        ];
        let visited = HashSet::new();
        let sel = select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        let order: Vec<u32> = sel.iter().map(|r| r.pred.0).collect();
        assert_eq!(order, vec![3, 2, 1]);
    }

    #[test]
    fn fresh_merges_rank_before_visited_ones() {
        let cfg = TradeoffConfig::default();
        let results = vec![
            result(1, 10, 50.0, 1.0, 1), // visited, high benefit
            result(2, 11, 5.0, 1.0, 1),  // fresh, lower benefit
        ];
        let mut visited = HashSet::new();
        visited.insert(BlockId(10));
        let sel = select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        let order: Vec<u32> = sel.iter().map(|r| r.merge.0).collect();
        assert_eq!(order, vec![11, 10]);
    }

    #[test]
    fn budget_is_consumed_in_rank_order() {
        let cfg = TradeoffConfig {
            benefit_scale: 256.0,
            size_increase_budget: 1.5,
            max_unit_size: 655_360,
        };
        // Initial size 100 → budget allows < 150 total.
        let results = vec![
            result(1, 10, 100.0, 1.0, 30), // accepted: 100+30 < 150
            result(2, 11, 90.0, 1.0, 30),  // rejected: 130+30 ≥ 150
            result(3, 12, 80.0, 1.0, 10),  // accepted: 130+10 < 150
        ];
        let visited = HashSet::new();
        let sel = select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        let order: Vec<u32> = sel.iter().map(|r| r.pred.0).collect();
        assert_eq!(order, vec![1, 3]);
    }

    #[test]
    fn negative_cost_counts_as_free() {
        let cfg = TradeoffConfig::default();
        assert!(should_duplicate(&cfg, 0.1, 0.5, -10, 100, 100));
    }

    #[test]
    fn nan_benefit_candidate_does_not_scramble_ranking() {
        // A 0-frequency predecessor can yield `probability = 0.0` while an
        // estimator bug yields `cycles_saved = NaN`; the ranking comparator
        // must stay a total order so the finite candidates keep their
        // descending-weighted-benefit acceptance order. With the old
        // `partial_cmp(..).unwrap_or(Equal)` comparator the NaN candidate
        // compares Equal to everything, falls through to the id tie-break,
        // and creates a comparison cycle (B < X < A but A < B) that
        // scrambles the sort.
        let cfg = TradeoffConfig::default();
        let mut nan = result(2, 5, f64::NAN, 1.0, 1);
        nan.cycles_saved = f64::NAN;
        let results = vec![
            result(1, 1, 2.0, 1.0, 1),  // B: weighted 2.0
            nan,                        // X: weighted NaN
            result(3, 20, 3.0, 1.0, 1), // A: weighted 3.0
        ];
        let visited = HashSet::new();
        let sel = select(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        // The NaN candidate never clears the cost heuristic (NaN > c is
        // false), so only the finite two are accepted — higher weighted
        // benefit first.
        let order: Vec<u32> = sel.iter().map(|r| r.pred.0).collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn shrinking_candidate_reclaims_size_budget() {
        // Initial size 100 → the growth budget allows < 150. The middle
        // candidate *shrinks* code by 20 (e.g. a dissolved allocation), so
        // after applying it the running size must drop back to 125 and the
        // final candidate fit again. Clamping the accrual at 0 kept the
        // running size at 145 and wrongly size-rejected the last one.
        let cfg = TradeoffConfig::default();
        let results = vec![
            result(1, 10, 100.0, 1.0, 45), // accepted: 100+45 = 145 < 150
            result(2, 11, 90.0, 1.0, -20), // accepted: shrinks to 125
            result(3, 12, 80.0, 1.0, 20),  // accepted: 125+20 = 145 < 150
        ];
        let visited = HashSet::new();
        let sel = select_with_rejections(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        let order: Vec<u32> = sel.accepted.iter().map(|r| r.pred.0).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(sel.size_rejected.is_empty(), "{:?}", sel.size_rejected);
    }

    #[test]
    fn size_rejections_are_reported_without_changing_acceptance() {
        let cfg = TradeoffConfig::default();
        // Same shape as `budget_is_consumed_in_rank_order`: pred 2's
        // candidate clears the cost heuristic but the growth budget
        // blocks it.
        let results = vec![
            result(1, 10, 100.0, 1.0, 30),
            result(2, 11, 90.0, 1.0, 30),
            result(3, 12, 80.0, 1.0, 10),
        ];
        let visited = HashSet::new();
        let sel = select_with_rejections(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            100,
            100,
            &visited,
        );
        let order: Vec<u32> = sel.accepted.iter().map(|r| r.pred.0).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(sel.size_rejected, vec![(BlockId(2), BlockId(11))]);
        // A candidate that fails the cost heuristic is NOT a size
        // rejection.
        let weak = vec![result(4, 13, 0.0, 1.0, 50)];
        let sel =
            select_with_rejections(&weak, &cfg, SelectionMode::CostBenefit, 100, 100, &visited);
        assert!(sel.accepted.is_empty());
        assert!(sel.size_rejected.is_empty());
    }
}
