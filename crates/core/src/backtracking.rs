//! The backtracking baseline (§3.1, Algorithm 1).
//!
//! For every predecessor→merge pair: copy the whole graph, perform the
//! duplication, run the full optimization pipeline, and keep the result
//! only if the static performance estimate improved (otherwise restore
//! the copy). The paper measured the copy operation alone to increase
//! compilation time by roughly an order of magnitude — the benchmark
//! `backtracking_vs_simulation` reproduces that comparison.

use crate::bailout::{isolate, BailoutRecord, Budget, Tier};
use crate::phase::{DbdsConfig, PhaseStats};
use crate::transform::duplicate;
use dbds_analysis::AnalysisCache;
use dbds_costmodel::CostModel;
use dbds_ir::Graph;
use dbds_opt::optimize_full;

/// Statistics of a backtracking run.
#[derive(Clone, Debug, Default)]
pub struct BacktrackStats {
    /// Tentative duplications tried (each one cloned the whole graph).
    pub attempts: usize,
    /// Duplications kept.
    pub accepted: usize,
    /// Outer-loop restarts.
    pub rounds: usize,
    /// Estimated code size before.
    pub initial_size: u64,
    /// Estimated code size after.
    pub final_size: u64,
    /// Instructions copied across all graph clones (the compile-time
    /// cost driver the paper calls out).
    pub instructions_copied: u64,
    /// Bailout incidents (budget exhaustion, contained panics).
    pub bailouts: Vec<BailoutRecord>,
}

impl From<BacktrackStats> for PhaseStats {
    fn from(b: BacktrackStats) -> PhaseStats {
        PhaseStats {
            iterations: b.rounds,
            candidates: b.attempts,
            duplications: b.accepted,
            opportunities: Default::default(),
            initial_size: b.initial_size,
            final_size: b.final_size,
            work: b.instructions_copied,
            sim_ns: 0,
            par_ns: 0,
            sim_threads: 0,
            tradeoff_par_ns: 0,
            transform_ns: 0,
            opt_ns: 0,
            guard_ns: 0,
            cache: Default::default(),
            mispredictions: 0,
            stale_skips: 0,
            bailouts: b.bailouts,
        }
    }
}

/// Safety bound on outer-loop restarts.
const MAX_ROUNDS: usize = 64;

/// Minimum weighted-cycle improvement for a tentative duplication to be
/// kept. Duplication almost always merges a straight-line block chain and
/// thereby removes a jump or two; that control-transfer noise (~1 cycle)
/// does not count as "an optimization triggered" in Algorithm 1's sense.
const IMPROVEMENT_NOISE: f64 = 1.0;

/// Runs Algorithm 1 on `g`. Analyses for the optimization pipeline and
/// the static estimator flow through `cache`; the restore path (`*g =
/// backup`) is safe because version stamps are never reused, so a cache
/// entry can never describe the wrong timeline.
pub fn run_backtracking(
    g: &mut Graph,
    model: &CostModel,
    cfg: &DbdsConfig,
    cache: &mut AnalysisCache,
) -> BacktrackStats {
    let mut stats = BacktrackStats::default();
    let budget = Budget::new(&cfg.guard);
    optimize_full(g, cache);
    let initial_size = model.graph_size(g);
    stats.initial_size = initial_size;

    'outer: loop {
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            break;
        }
        for merge in g.merge_blocks() {
            for pred in g.preds(merge).to_vec() {
                if pred == merge {
                    continue;
                }
                stats.attempts += 1;
                // The expensive part Algorithm 1 cannot avoid: copy the
                // entire CFG as a backup. Each copied instruction burns
                // fuel — this is exactly the cost the paper calls out.
                if let Err(reason) = budget.consume(g.live_inst_count() as u64) {
                    stats.bailouts.push(BailoutRecord {
                        reason,
                        tier: Tier::Optimization,
                        candidate: Some((pred, merge)),
                        recovered: false,
                    });
                    break 'outer;
                }
                let backup = g.snapshot();
                stats.instructions_copied += backup.live_inst_count() as u64;
                let before = model.weighted_cycles(g, cache);

                if cfg.guard.checkpoints {
                    if let Err(reason) = isolate(|| {
                        duplicate(g, pred, merge);
                        optimize_full(g, cache);
                    }) {
                        // Contained: Algorithm 1's backup doubles as our
                        // recovery snapshot.
                        backup.restore(g);
                        stats.bailouts.push(BailoutRecord {
                            reason,
                            tier: Tier::Optimization,
                            candidate: Some((pred, merge)),
                            recovered: true,
                        });
                        continue;
                    }
                } else {
                    duplicate(g, pred, merge);
                    optimize_full(g, cache);
                }

                let after = model.weighted_cycles(g, cache);
                let size = model.graph_size(g);
                let improved = before - after > IMPROVEMENT_NOISE;
                let fits = size < cfg.tradeoff.max_unit_size
                    && (size as f64) < initial_size as f64 * cfg.tradeoff.size_increase_budget;
                if improved && fits {
                    stats.accepted += 1;
                    // The CFG and block list changed: restart (Algorithm
                    // 1's `continue outer`).
                    continue 'outer;
                }
                backup.restore(g);
            }
        }
        // A full scan without an accepted duplication: done.
        break;
    }
    stats.final_size = model.graph_size(g);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn figure1() -> Graph {
        let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        b.finish()
    }

    #[test]
    fn backtracking_finds_the_figure1_duplication() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        verify(&g).unwrap();
        assert!(stats.accepted >= 1, "{stats:?}");
        assert!(stats.attempts >= stats.accepted);
        assert!(stats.instructions_copied > 0);
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-1)]).outcome, Ok(Value::Int(2)));
    }

    #[test]
    fn rejects_unprofitable_duplications() {
        // A merge whose body cannot be optimized on either path: nothing
        // should be kept.
        let mut b = GraphBuilder::new("flat", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, y], Type::Int);
        let s = b.add(phi, y);
        b.ret(Some(s));
        let mut g = b.finish();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        assert_eq!(stats.accepted, 0);
        assert!(stats.attempts >= 2);
        verify(&g).unwrap();
    }

    #[test]
    fn fuel_exhaustion_stops_backtracking_with_a_verified_graph() {
        use crate::bailout::{BailoutReason, GuardConfig};
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            guard: GuardConfig {
                fuel: Some(1),
                ..GuardConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = run_backtracking(&mut g, &model, &cfg, &mut AnalysisCache::new());
        assert_eq!(stats.accepted, 0);
        assert!(stats
            .bailouts
            .iter()
            .any(|b| b.reason == BailoutReason::FuelExhausted && !b.recovered));
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
    }

    #[test]
    fn copies_grow_with_graph_size() {
        // The copied-instruction counter reflects Algorithm 1's cost.
        let mut g = figure1();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        assert!(stats.instructions_copied as usize >= stats.attempts);
    }
}
