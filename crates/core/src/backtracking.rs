//! The backtracking baseline (§3.1, Algorithm 1).
//!
//! For every predecessor→merge pair: tentatively perform the
//! duplication, run the full optimization pipeline, and keep the result
//! only if the static performance estimate improved (otherwise roll the
//! attempt back). The paper's Algorithm 1 takes a whole-graph backup per
//! attempt — the copy operation alone increased compilation time by
//! roughly an order of magnitude, which the benchmark
//! `backtracking_vs_simulation` reproduces. Our implementation brackets
//! each attempt in an IR undo-log transaction instead, so rollback costs
//! O(edits made); the unavoidable Algorithm-1 cost that remains is the
//! duplication itself plus the full re-optimization per attempt, and the
//! fuel accounting charges exactly that duplicated-instruction volume.

use crate::bailout::{isolate, BailoutRecord, Budget, Tier};
use crate::phase::{DbdsConfig, PhaseStats};
use crate::transform::duplicate;
use dbds_analysis::AnalysisCache;
use dbds_costmodel::CostModel;
use dbds_ir::Graph;
use dbds_opt::optimize_full;
use std::time::Instant;

/// Statistics of a backtracking run.
#[derive(Clone, Debug, Default)]
pub struct BacktrackStats {
    /// Tentative duplications tried (each one bracketed in an undo-log
    /// transaction).
    pub attempts: usize,
    /// Duplications kept.
    pub accepted: usize,
    /// Outer-loop restarts.
    pub rounds: usize,
    /// Estimated code size before.
    pub initial_size: u64,
    /// Estimated code size after.
    pub final_size: u64,
    /// Instructions actually duplicated across all attempts (the size of
    /// each tentative copy block) — the real copy work of Algorithm 1,
    /// not the whole-graph backup volume the snapshot era charged here.
    pub instructions_copied: u64,
    /// Primitive IR mutations recorded by the undo log across all
    /// attempts.
    pub undo_edits: u64,
    /// Attempts rolled back (rejected or contained-failure).
    pub undo_rollbacks: u64,
    /// Peak backed-up arena slots held by the undo log.
    pub undo_peak: usize,
    /// Wall-clock nanoseconds of undo-log bookkeeping. Timing only.
    pub undo_ns: u128,
    /// Bailout incidents (budget exhaustion, contained panics).
    pub bailouts: Vec<BailoutRecord>,
}

impl From<BacktrackStats> for PhaseStats {
    fn from(b: BacktrackStats) -> PhaseStats {
        PhaseStats {
            iterations: b.rounds,
            candidates: b.attempts,
            duplications: b.accepted,
            opportunities: Default::default(),
            initial_size: b.initial_size,
            final_size: b.final_size,
            work: b.instructions_copied,
            sim_ns: 0,
            par_ns: 0,
            sim_threads: 0,
            tradeoff_par_ns: 0,
            transform_ns: 0,
            opt_ns: 0,
            guard_ns: 0,
            undo_edits: b.undo_edits,
            undo_rollbacks: b.undo_rollbacks,
            undo_peak: b.undo_peak,
            undo_ns: b.undo_ns,
            cache: Default::default(),
            mispredictions: 0,
            stale_skips: 0,
            split_candidates: 0,
            split_applied: 0,
            frontier_violations: 0,
            bailouts: b.bailouts,
        }
    }
}

/// Safety bound on outer-loop restarts.
const MAX_ROUNDS: usize = 64;

/// Minimum weighted-cycle improvement for a tentative duplication to be
/// kept. Duplication almost always merges a straight-line block chain and
/// thereby removes a jump or two; that control-transfer noise (~1 cycle)
/// does not count as "an optimization triggered" in Algorithm 1's sense.
const IMPROVEMENT_NOISE: f64 = 1.0;

/// Runs Algorithm 1 on `g`. Analyses for the optimization pipeline and
/// the static estimator flow through `cache`; the rollback path is safe
/// because the undo log restores the pre-attempt version stamps and
/// stamps are never reused, so a cache entry can never describe the
/// wrong timeline.
pub fn run_backtracking(
    g: &mut Graph,
    model: &CostModel,
    cfg: &DbdsConfig,
    cache: &mut AnalysisCache,
) -> BacktrackStats {
    let mut stats = BacktrackStats::default();
    let undo_base = g.undo_stats();
    let budget = Budget::new(&cfg.guard);
    optimize_full(g, cache);
    let initial_size = model.graph_size(g);
    stats.initial_size = initial_size;

    'outer: loop {
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            break;
        }
        for merge in g.merge_blocks() {
            for pred in g.preds(merge).to_vec() {
                if pred == merge {
                    continue;
                }
                stats.attempts += 1;
                // The cost Algorithm 1 cannot avoid: the tentative copy
                // itself. Each instruction the duplication is about to
                // copy burns fuel — the undo log removed the whole-graph
                // backup the snapshot-based formulation also paid here.
                let copy_cost = (g.block_insts(merge).len() - g.phis(merge).len()).max(1) as u64;
                if let Err(reason) = budget.consume(copy_cost) {
                    stats.bailouts.push(BailoutRecord {
                        reason,
                        tier: Tier::Optimization,
                        candidate: Some((pred, merge)),
                        recovered: false,
                    });
                    break 'outer;
                }
                let before = model.weighted_cycles(g, cache);
                // Bracket the attempt: accept commits, reject (or a
                // contained failure) rolls back in O(edits).
                let tu = Instant::now();
                g.begin_txn();
                stats.undo_ns += tu.elapsed().as_nanos();

                if cfg.guard.checkpoints {
                    match isolate(|| {
                        let dup = duplicate(g, pred, merge);
                        let copied = g.block_insts(dup.copy).len() as u64;
                        optimize_full(g, cache);
                        copied
                    }) {
                        Ok(copied) => stats.instructions_copied += copied,
                        Err(reason) => {
                            // Contained: the attempt's transaction doubles
                            // as our recovery checkpoint.
                            let tu = Instant::now();
                            g.rollback_txn();
                            stats.undo_ns += tu.elapsed().as_nanos();
                            stats.bailouts.push(BailoutRecord {
                                reason,
                                tier: Tier::Optimization,
                                candidate: Some((pred, merge)),
                                recovered: true,
                            });
                            continue;
                        }
                    }
                } else {
                    let dup = duplicate(g, pred, merge);
                    stats.instructions_copied += g.block_insts(dup.copy).len() as u64;
                    optimize_full(g, cache);
                }

                let after = model.weighted_cycles(g, cache);
                let size = model.graph_size(g);
                let improved = before - after > IMPROVEMENT_NOISE;
                let fits = size < cfg.tradeoff.max_unit_size
                    && (size as f64) < initial_size as f64 * cfg.tradeoff.size_increase_budget;
                let tu = Instant::now();
                if improved && fits {
                    stats.accepted += 1;
                    g.commit_txn();
                    stats.undo_ns += tu.elapsed().as_nanos();
                    // The CFG and block list changed: restart (Algorithm
                    // 1's `continue outer`).
                    continue 'outer;
                }
                g.rollback_txn();
                stats.undo_ns += tu.elapsed().as_nanos();
            }
        }
        // A full scan without an accepted duplication: done.
        break;
    }
    stats.final_size = model.graph_size(g);
    let undo = g.undo_stats();
    stats.undo_edits = undo.edits - undo_base.edits;
    stats.undo_rollbacks = undo.rollbacks - undo_base.rollbacks;
    stats.undo_peak = undo.peak_entries;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{execute, verify, ClassTable, CmpOp, GraphBuilder, Type, Value};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn figure1() -> Graph {
        let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        b.finish()
    }

    #[test]
    fn backtracking_finds_the_figure1_duplication() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        verify(&g).unwrap();
        assert!(stats.accepted >= 1, "{stats:?}");
        assert!(stats.attempts >= stats.accepted);
        assert!(stats.instructions_copied > 0);
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
        assert_eq!(execute(&g, &[Value::Int(-1)]).outcome, Ok(Value::Int(2)));
    }

    #[test]
    fn rejects_unprofitable_duplications() {
        // A merge whose body cannot be optimized on either path: nothing
        // should be kept.
        let mut b = GraphBuilder::new("flat", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, y], Type::Int);
        let s = b.add(phi, y);
        b.ret(Some(s));
        let mut g = b.finish();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        assert_eq!(stats.accepted, 0);
        assert!(stats.attempts >= 2);
        verify(&g).unwrap();
    }

    #[test]
    fn fuel_exhaustion_stops_backtracking_with_a_verified_graph() {
        use crate::bailout::{BailoutReason, GuardConfig};
        let mut g = figure1();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            guard: GuardConfig {
                fuel: Some(1),
                ..GuardConfig::default()
            },
            ..DbdsConfig::default()
        };
        let stats = run_backtracking(&mut g, &model, &cfg, &mut AnalysisCache::new());
        assert_eq!(stats.accepted, 0);
        assert!(stats
            .bailouts
            .iter()
            .any(|b| b.reason == BailoutReason::FuelExhausted && !b.recovered));
        verify(&g).unwrap();
        assert_eq!(execute(&g, &[Value::Int(5)]).outcome, Ok(Value::Int(7)));
    }

    #[test]
    fn copies_grow_with_graph_size() {
        // The copied-instruction counter reflects Algorithm 1's cost.
        let mut g = figure1();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        assert!(stats.instructions_copied > 0);
    }

    #[test]
    fn instructions_copied_counts_duplicated_insts_not_whole_graph() {
        // Regression: the snapshot era charged `instructions_copied` with
        // the *whole-graph* live instruction count per attempt. The
        // counter must now reflect the actual copy work — the size of
        // each tentative copy block — which is strictly smaller than
        // attempts × whole-graph size for any non-degenerate graph.
        let mut g = figure1();
        let whole_graph = g.live_inst_count() as u64;
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        assert!(stats.attempts >= 1, "{stats:?}");
        assert!(stats.instructions_copied > 0, "{stats:?}");
        assert!(
            stats.instructions_copied < stats.attempts as u64 * whole_graph,
            "counter still charges whole-graph copies: {stats:?}"
        );
        // Figure 1's merge holds one φ plus two real instructions; no
        // attempt can copy more than the merge body.
        assert!(
            stats.instructions_copied <= stats.attempts as u64 * 3,
            "{stats:?}"
        );
    }

    #[test]
    fn undo_counters_surface_in_backtracking_stats() {
        let mut g = figure1();
        let model = CostModel::new();
        let stats = run_backtracking(
            &mut g,
            &model,
            &DbdsConfig::default(),
            &mut AnalysisCache::new(),
        );
        // Every attempt opened a transaction; rejected ones rolled back.
        let rejected = (stats.attempts - stats.accepted) as u64;
        assert_eq!(stats.undo_rollbacks, rejected, "{stats:?}");
        assert!(stats.undo_edits > 0, "{stats:?}");
        assert!(stats.undo_peak > 0, "{stats:?}");
        assert_eq!(g.txn_depth(), 0);
    }
}
