//! A minimal scoped worker pool for the parallel simulation tier.
//!
//! The build environment has no external dependencies (no rayon), so this
//! module provides the one primitive the simulation tier needs: run a
//! closure over every index of a slice, sharded across a bounded set of
//! [`std::thread::scope`] workers that claim *chunks* of the index space
//! from a shared [`AtomicUsize`] cursor. Chunk claiming is the
//! work-stealing: a worker that finishes its chunk early immediately
//! grabs the next one, so uneven task costs balance without a deque.
//!
//! Determinism is the caller's job and the pool is designed to make it
//! easy: the closure receives the *item index*, so results can be
//! deposited into index-addressed slots and later merged in index order —
//! execution order never leaks into the output. The pool itself only
//! reports per-worker load statistics ([`WorkerLoad`]), merged in
//! worker-index order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What one worker of a [`run_indexed`] pool did — observability only;
/// the counts depend on scheduling and must not feed back into results.
#[derive(Clone, Debug, Default)]
pub struct WorkerLoad {
    /// Worker index within the pool (0-based; worker 0 is the calling
    /// thread when the pool runs inline).
    pub worker: usize,
    /// Items this worker claimed and ran.
    pub tasks: usize,
    /// Wall-clock nanoseconds the worker spent inside the closure.
    pub busy_ns: u128,
}

/// Resolves a requested thread count: `0` means "ask the OS"
/// ([`std::thread::available_parallelism`]), anything else is used as
/// given; the result is never 0.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// The chunk size for `items` spread over `threads` workers: small
/// enough that the cursor rebalances uneven tasks, large enough that
/// claiming stays cheap. Deterministic (results never depend on it).
fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads * 8)).max(1)
}

/// Runs `each(index, &items[index])` for every index of `items`, sharded
/// over up to `threads` workers. With `threads <= 1` (or a single item)
/// everything runs inline on the calling thread, in index order — the
/// parallel and sequential paths share this one loop so their behavior
/// can only differ by scheduling, never by code path.
///
/// `each` must be safe to call concurrently for distinct indices; every
/// index is visited exactly once. Returns the per-worker loads in
/// worker-index order.
pub fn run_indexed<T: Sync>(
    threads: usize,
    items: &[T],
    each: impl Fn(usize, &T) + Sync,
) -> Vec<WorkerLoad> {
    run_indexed_driving(threads, items, each, || {})
}

/// Runs `f(index, &items[index])` for every index on the pool and
/// returns the results **in index order**, regardless of which worker
/// computed what — the standard deterministic fan-out: each result is
/// deposited into its index-addressed slot and the slots are drained
/// sequentially afterwards. Also returns the per-worker loads.
///
/// This is the primitive behind both the trade-off tier's parallel
/// candidate pricing and the harness's unit-level compilation queue.
pub fn map_indexed<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<WorkerLoad>) {
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let loads = run_indexed(threads, items, |i, item| {
        let r = f(i, item);
        match slots[i].lock() {
            Ok(mut slot) => *slot = Some(r),
            // A poisoned slot means another worker panicked mid-store,
            // which `run_indexed` re-raises on the caller; storing through
            // the poison keeps this worker's result intact regardless.
            Err(poison) => *poison.into_inner() = Some(r),
        }
    });
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("run_indexed visits every index exactly once")
        })
        .collect();
    (results, loads)
}

/// Runs `f(index, &units[index])` over every unit on the pool and
/// returns the results in submission (index) order — execution order
/// never leaks into the output — plus the per-worker loads and the
/// wall-clock nanoseconds of the fan-out.
///
/// This is the unit-level compilation queue shared by the evaluation
/// harness (`dbds_harness::run_units` re-exports it) and the
/// compilation service's batch dispatcher: independent compilation
/// units fan out onto the pool and commit deterministically. With
/// `threads <= 1` the pool runs inline on the calling thread in index
/// order, so the sequential path is the same code.
pub fn run_units<I: Sync, T: Send>(
    threads: usize,
    units: &[I],
    f: impl Fn(usize, &I) -> T + Sync,
) -> (Vec<T>, Vec<WorkerLoad>, u128) {
    let t = Instant::now();
    let (results, loads) = map_indexed(threads, units, f);
    (results, loads, t.elapsed().as_nanos())
}

/// Like [`run_indexed`], but dedicates the calling thread to `on_main`
/// instead of claiming items: while up to `threads` spawned workers
/// drain `items`, the calling thread repeatedly runs `on_main` (yielding
/// between calls) until every worker has finished. With `threads <= 1`
/// (or a single item) everything runs inline in index order — `each`,
/// then `on_main`, per item.
///
/// The split exists for collect/speculate/commit schemes whose commit
/// step must stay on the calling thread (e.g. because it reads
/// thread-local state, like the fault-injection pending-exhaustion
/// cell): workers only speculate, `on_main` commits. `on_main` must be
/// cheap when there is nothing new to commit — it runs in a poll loop,
/// not on a notification.
pub fn run_indexed_driving<T: Sync>(
    threads: usize,
    items: &[T],
    each: impl Fn(usize, &T) + Sync,
    mut on_main: impl FnMut(),
) -> Vec<WorkerLoad> {
    let threads = resolve_threads(threads).min(items.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), threads);
    let drain = |worker: usize| {
        let mut load = WorkerLoad {
            worker,
            ..WorkerLoad::default()
        };
        let t = Instant::now();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            for (idx, item) in items.iter().enumerate().skip(start).take(chunk) {
                each(idx, item);
                load.tasks += 1;
            }
        }
        load.busy_ns = t.elapsed().as_nanos();
        load
    };
    if threads == 1 {
        let mut load = WorkerLoad::default();
        let t = Instant::now();
        for (idx, item) in items.iter().enumerate() {
            each(idx, item);
            load.tasks += 1;
            on_main();
        }
        load.busy_ns = t.elapsed().as_nanos();
        return vec![load];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || drain(w)))
            .collect();
        while !handles.iter().all(|h| h.is_finished()) {
            on_main();
            std::thread::yield_now();
        }
        // Joined (and therefore merged) in worker-index order.
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(load) => load,
                // A worker can only die on a panic that escaped `each`;
                // re-raise it on the caller thread instead of hiding it.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn every_index_visited_exactly_once() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let seen: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
            let loads = run_indexed(threads, &items, |i, &v| {
                assert_eq!(v, i as u64);
                seen[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(
                    s.load(Ordering::Relaxed),
                    1,
                    "index {i} at {threads} threads"
                );
            }
            assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), items.len());
            assert!(loads.len() <= threads);
            // Worker-index order.
            for (w, load) in loads.iter().enumerate() {
                assert_eq!(load.worker, w);
            }
        }
    }

    #[test]
    fn inline_pool_runs_in_index_order() {
        let items: Vec<usize> = (0..40).collect();
        let order = Mutex::new(Vec::new());
        run_indexed(1, &items, |i, _| order.lock().unwrap().push(i));
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_returns_results_in_index_order() {
        let items: Vec<u64> = (0..131).collect();
        for threads in [1, 2, 3, 8] {
            let (results, loads) = map_indexed(threads, &items, |i, &v| v * 2 + i as u64);
            assert_eq!(
                results,
                items.iter().map(|&v| v * 3).collect::<Vec<_>>(),
                "at {threads} threads"
            );
            assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), items.len());
        }
        let (empty, _) = map_indexed(4, &[] as &[u64], |_, _| 0u64);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let loads = run_indexed(4, &[] as &[u64], |_, _| panic!("never called"));
        assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), 0);
    }

    #[test]
    fn resolve_threads_never_zero() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
