//! A shared 2-D work-stealing scheduler for the unit × simulation tiers.
//!
//! The build environment has no external dependencies (no rayon), so this
//! module provides the primitives the compiler needs, built on
//! [`std::thread::scope`]:
//!
//! * [`run_indexed`] / [`map_indexed`] / [`run_indexed_driving`] — run a
//!   closure over every index of a slice, sharded across workers that
//!   claim *chunks* of the index space from a shared [`AtomicUsize`]
//!   cursor. Chunk claiming is the intra-queue balancing: a worker that
//!   finishes its chunk early immediately grabs the next one.
//! * [`run_units`] — the 2-D scheduler: one global worker set
//!   partitioned into reserved sub-pools (`unit_workers` that claim
//!   whole compilation units, plus `sim_workers` that only help the
//!   inner tiers). While a unit compiles on its worker, its DST and
//!   pricing fan-outs are *published* to the scheduler as stealable
//!   queues; sim workers — and unit workers whose unit cursor ran dry —
//!   steal chunks from those queues instead of parking.
//!
//! Determinism is the caller's job and the scheduler is designed to make
//! it easy: closures receive the *item index*, so results are deposited
//! into index-addressed slots and merged in index order — execution
//! order (including who stole what) never leaks into the output. The
//! commit step of collect/speculate/commit schemes stays on the unit's
//! own worker (see [`run_indexed_driving`]), so commit order is the
//! submission order regardless of stealing. The scheduler itself only
//! reports per-worker load statistics ([`WorkerLoad`]), which depend on
//! scheduling and must never feed back into results.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// What one worker did — observability only; the counts depend on
/// scheduling and must not feed back into results.
#[derive(Clone, Debug, Default)]
pub struct WorkerLoad {
    /// Worker index within the pool (0-based; worker 0 is the calling
    /// thread when the pool runs inline).
    pub worker: usize,
    /// Items this worker claimed and ran.
    pub tasks: usize,
    /// Of `tasks`, how many were stolen from another unit's published
    /// queue (0 for work claimed from the worker's own queue or from
    /// the shared unit cursor).
    pub stolen: usize,
    /// Wall-clock nanoseconds the worker spent inside closures, timed
    /// once per claimed chunk (claim overhead and idle spinning are
    /// excluded).
    pub busy_ns: u128,
}

/// The machine's available parallelism, resolved once per process:
/// [`std::thread::available_parallelism`] is a syscall and pool plans
/// are constructed per batch, so the value is cached in a [`OnceLock`].
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Resolves a requested thread count: `0` means "ask the OS" (cached,
/// see [`hardware_threads`]), anything else is used as given; the
/// result is never 0.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        hardware_threads()
    } else {
        requested
    }
}

/// Below this many items an indexed fan-out runs inline on the calling
/// thread even when a wider pool was requested: spawning (or publishing
/// a stealable queue) costs more than the win for tiny batches — the
/// parallel rows of `BENCH_suite.json` used to *lose* to sequential on
/// exactly this overhead.
const INLINE_CUTOFF: usize = 32;

/// The chunk size for `items` spread over `threads` workers: small
/// enough that the cursor rebalances uneven tasks, large enough that
/// claiming stays cheap. Deterministic (results never depend on it).
fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads * 8)).max(1)
}

/// The chunk size for a *published* (stealable) queue: coarser than the
/// dedicated-pool chunks, because every stolen chunk costs a context
/// switch on an oversubscribed machine and a quiesce handshake with the
/// owner — stealing is for coarse balance, not fine-grained slicing.
fn steal_chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers * 2)).max(16)
}

/// Locks a mutex, seeing through poisoning: every guarded region here
/// is a plain deposit that leaves the data valid even if a holder
/// panicked mid-way, and panics are re-raised separately.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

// ---------------------------------------------------------------------
// Stealable inner queues
// ---------------------------------------------------------------------

/// A type-erased, chunk-claimable view of one unit's in-flight indexed
/// fan-out (DST batch or pricing pass), published to the [`Scheduler`]
/// so idle workers can steal chunks from it.
struct InnerQueue {
    /// Pointer to the owning worker's `run(index)` closure, erased so
    /// queues of different item types share one registry.
    ///
    /// Lifetime protocol: the pointee lives on the owner's stack inside
    /// `run_shared`, which does not return (or unwind past the
    /// [`PublishGuard`]) until `done` covers every successful claim, and
    /// no claim can succeed after the guard closes the cursor. A stealer
    /// therefore only dereferences `run` between a successful claim and
    /// the matching `done` increment, while the pointee is guaranteed
    /// alive.
    run: *const (),
    /// Monomorphic trampoline that calls `run` with an index.
    call: unsafe fn(*const (), usize),
    len: usize,
    chunk: usize,
    /// Claim cursor: `fetch_add(chunk)` claims `[start, start + chunk)`
    /// if `start < len`; `fetch_max(len)` closes the queue so no further
    /// claim can succeed.
    cursor: AtomicUsize,
    /// Items whose execution finished (or was abandoned to a panic) —
    /// release-incremented by whoever claimed them. The owner exits its
    /// wait when `done` covers every successful claim.
    done: AtomicUsize,
    /// First panic payload that escaped a stolen chunk; re-raised by the
    /// owner once the fan-out has quiesced.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Per-stealer load contributions for this queue (`worker` is the
    /// scheduler-wide worker index of the stealer).
    steal_loads: Mutex<Vec<WorkerLoad>>,
}

// SAFETY: `run`/`call` are only dereferenced under the claim/done
// protocol documented on the `run` field; everything else is atomics
// and mutexes.
unsafe impl Send for InnerQueue {}
unsafe impl Sync for InnerQueue {}

/// Calls the closure behind an [`InnerQueue::run`] pointer.
///
/// # Safety
/// `ptr` must point to a live `F`, guaranteed by the claim/done protocol
/// documented on [`InnerQueue::run`].
unsafe fn call_erased<F: Fn(usize) + Sync>(ptr: *const (), index: usize) {
    (*ptr.cast::<F>())(index);
}

/// Erases a fan-out closure to the `(pointer, trampoline)` pair an
/// [`InnerQueue`] stores — pinning the closure's concrete type so the
/// trampoline is monomorphized to match.
fn erase<F: Fn(usize) + Sync>(run: &F) -> (*const (), unsafe fn(*const (), usize)) {
    (std::ptr::from_ref(run).cast::<()>(), call_erased::<F>)
}

/// Shared state of one [`run_units`] invocation: the registry of
/// published inner queues plus unit-progress counters. Lives on the
/// stack of `run_units` for the duration of the worker scope.
struct Scheduler {
    /// Steal targets: inner queues of in-flight units, in publication
    /// order (stealers pick the first non-drained queue).
    queues: Mutex<Vec<Arc<InnerQueue>>>,
    /// Published-queue count — a lock-free emptiness probe so idle
    /// workers don't hammer the registry lock.
    open: AtomicUsize,
    /// Units whose result (or panic) has been committed.
    units_done: AtomicUsize,
    units_total: usize,
    /// Total workers (unit + sim), used for inner chunk sizing.
    workers: usize,
    /// Workers currently with nothing of their own to do: the reserved
    /// sim workers (counted from construction — they are born idle)
    /// plus unit workers whose cursor ran dry. Publication gate: a
    /// fan-out only pays for a stealable queue when somebody could
    /// actually steal from it, so a fully-busy (or single-core
    /// sequentialized) scheduler stays on the inline path.
    idlers: AtomicUsize,
}

thread_local! {
    /// The scheduler whose worker the current thread is, if any. Set for
    /// the lifetime of each scoped worker (see `SchedGuard`), so inner
    /// fan-outs on a worker publish to the shared pool instead of
    /// spawning a nested one.
    static ACTIVE_SCHED: Cell<*const Scheduler> = const { Cell::new(std::ptr::null()) };
    /// The scheduler-wide worker index of the current thread.
    static ACTIVE_WORKER: Cell<usize> = const { Cell::new(0) };
}

/// Registers the current thread as `worker` of `sched` for the guard's
/// lifetime; restores the previous registration on drop (worker panics
/// included — the scope join re-raises them, but the thread-local must
/// not dangle past the scope).
struct SchedGuard {
    prev_sched: *const Scheduler,
    prev_worker: usize,
}

impl SchedGuard {
    fn enter(sched: &Scheduler, worker: usize) -> SchedGuard {
        let prev_sched = ACTIVE_SCHED.with(|c| c.replace(std::ptr::from_ref(sched)));
        let prev_worker = ACTIVE_WORKER.with(|c| c.replace(worker));
        SchedGuard {
            prev_sched,
            prev_worker,
        }
    }
}

impl Drop for SchedGuard {
    fn drop(&mut self) {
        ACTIVE_SCHED.with(|c| c.set(self.prev_sched));
        ACTIVE_WORKER.with(|c| c.set(self.prev_worker));
    }
}

/// The scheduler the current thread works for, with this thread's
/// worker index — `None` off the worker set.
fn current_scheduler() -> Option<(&'static Scheduler, usize)> {
    let ptr = ACTIVE_SCHED.with(Cell::get);
    if ptr.is_null() {
        return None;
    }
    // SAFETY: the pointer was published by `SchedGuard::enter` on this
    // thread and is cleared before the scheduler's stack frame dies; the
    // 'static is a private fiction — the reference never escapes the
    // worker's scope (it is consumed by `run_shared`/`steal_once`, which
    // run strictly inside the scope).
    Some((unsafe { &*ptr }, ACTIVE_WORKER.with(Cell::get)))
}

/// Merges a stolen-chunk load delta into the queue's attribution list,
/// coalescing on the stealer's worker index. Must happen *before* the
/// matching `done` increment so the owner (which drains the list once
/// `done` covers every claim) can never miss it.
fn attribute_steal(queue: &InnerQueue, delta: &WorkerLoad) {
    let mut loads = relock(&queue.steal_loads);
    if let Some(entry) = loads.iter_mut().find(|l| l.worker == delta.worker) {
        entry.tasks += delta.tasks;
        entry.stolen += delta.stolen;
        entry.busy_ns += delta.busy_ns;
    } else {
        loads.push(delta.clone());
    }
}

/// Steals and runs chunks from the first non-drained published queue,
/// until that queue is drained. Returns the load contributed, or `None`
/// when nothing was stealable.
fn steal_once(sched: &Scheduler, worker: usize) -> Option<WorkerLoad> {
    if sched.open.load(Ordering::Acquire) == 0 {
        return None;
    }
    let queue = {
        let queues = relock(&sched.queues);
        queues
            .iter()
            .find(|q| q.cursor.load(Ordering::Relaxed) < q.len)
            .cloned()
    }?;
    let mut load = WorkerLoad {
        worker,
        ..WorkerLoad::default()
    };
    loop {
        let start = queue.cursor.fetch_add(queue.chunk, Ordering::AcqRel);
        if start >= queue.len {
            break;
        }
        let n = queue.chunk.min(queue.len - start);
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for i in start..start + n {
                // SAFETY: the claim succeeded (`start < len`) and the
                // matching `done` increment below has not happened yet,
                // so the owner is still pinned in `run_shared` and the
                // closure behind `run` is alive.
                unsafe { (queue.call)(queue.run, i) };
            }
        }));
        let delta = WorkerLoad {
            worker,
            tasks: n,
            stolen: n,
            busy_ns: t.elapsed().as_nanos(),
        };
        if let Err(payload) = outcome {
            let mut slot = relock(&queue.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        attribute_steal(&queue, &delta);
        load.tasks += delta.tasks;
        load.stolen += delta.stolen;
        load.busy_ns += delta.busy_ns;
        // Claimed items count as done even if the closure panicked, so
        // the owner's quiesce-wait can't hang on an abandoned chunk.
        queue.done.fetch_add(n, Ordering::Release);
    }
    (load.tasks > 0).then_some(load)
}

/// Unpublishes and closes an [`InnerQueue`] exactly once, even if the
/// owner unwinds: a panic in the owner's own chunk must not let the
/// queue outlive the closure it points into, so `Drop` closes the
/// cursor and spin-waits for in-flight stolen chunks before the stack
/// frame dies.
struct PublishGuard<'a> {
    sched: &'a Scheduler,
    queue: &'a Arc<InnerQueue>,
    finished: bool,
}

impl PublishGuard<'_> {
    /// Removes the queue from the registry and closes its claim cursor.
    /// Returns the total number of items covered by successful claims —
    /// the value `done` must reach before the closure may die.
    fn close(&self) -> usize {
        let mut queues = relock(&self.sched.queues);
        if let Some(pos) = queues.iter().position(|q| Arc::ptr_eq(q, self.queue)) {
            queues.remove(pos);
            drop(queues);
            self.sched.open.fetch_sub(1, Ordering::Release);
        }
        // `fetch_max` returns the previous cursor: every claim below
        // `len` succeeded and covered `chunk`-bounded items from 0
        // upward, so `prev.min(len)` is exactly the claimed item count,
        // and after this no new claim can succeed.
        self.queue
            .cursor
            .fetch_max(self.queue.len, Ordering::AcqRel)
            .min(self.queue.len)
    }
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let total = self.close();
        while self.queue.done.load(Ordering::Acquire) < total {
            std::thread::yield_now();
        }
    }
}

/// The scheduler-worker path of [`run_indexed_driving`]: instead of
/// spawning a nested pool, publish the fan-out as a stealable queue,
/// drain it chunk-by-chunk on the owning worker (interleaving `on_main`
/// so commits keep flowing), and let idle scheduler workers steal the
/// rest. Tiny fan-outs skip publication entirely.
fn run_shared<T: Sync>(
    sched: &Scheduler,
    worker: usize,
    items: &[T],
    each: &(impl Fn(usize, &T) + Sync),
    on_main: &mut impl FnMut(),
) -> Vec<WorkerLoad> {
    let mut own = WorkerLoad {
        worker,
        ..WorkerLoad::default()
    };
    if items.len() < INLINE_CUTOFF || sched.idlers.load(Ordering::Acquire) == 0 {
        let t = Instant::now();
        for (i, item) in items.iter().enumerate() {
            each(i, item);
            own.tasks += 1;
            on_main();
        }
        own.busy_ns = t.elapsed().as_nanos();
        return vec![own];
    }
    let run = |i: usize| each(i, &items[i]);
    let (run_ptr, call) = erase(&run);
    let queue = Arc::new(InnerQueue {
        run: run_ptr,
        call,
        len: items.len(),
        chunk: steal_chunk_size(items.len(), sched.workers),
        cursor: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panic: Mutex::new(None),
        steal_loads: Mutex::new(Vec::new()),
    });
    let mut guard = PublishGuard {
        sched,
        queue: &queue,
        finished: false,
    };
    relock(&sched.queues).push(Arc::clone(&queue));
    sched.open.fetch_add(1, Ordering::Release);
    loop {
        let start = queue.cursor.fetch_add(queue.chunk, Ordering::AcqRel);
        if start >= queue.len {
            break;
        }
        let n = queue.chunk.min(queue.len - start);
        // Count the claim as done even if `run` unwinds, so the guard's
        // quiesce-wait (and any concurrent stealer's owner) can't hang.
        struct DoneOnDrop<'q>(&'q InnerQueue, usize);
        impl Drop for DoneOnDrop<'_> {
            fn drop(&mut self) {
                self.0.done.fetch_add(self.1, Ordering::Release);
            }
        }
        let done_guard = DoneOnDrop(&queue, n);
        let t = Instant::now();
        for i in start..start + n {
            run(i);
        }
        own.busy_ns += t.elapsed().as_nanos();
        own.tasks += n;
        drop(done_guard);
        on_main();
    }
    let total = guard.close();
    while queue.done.load(Ordering::Acquire) < total {
        on_main();
        std::thread::yield_now();
    }
    guard.finished = true;
    drop(guard);
    if let Some(payload) = relock(&queue.panic).take() {
        resume_unwind(payload);
    }
    let mut loads = vec![own];
    loads.append(&mut relock(&queue.steal_loads));
    loads
}

// ---------------------------------------------------------------------
// Indexed fan-outs
// ---------------------------------------------------------------------

/// Runs `each(index, &items[index])` for every index of `items`, sharded
/// over up to `threads` workers. With `threads <= 1`, a single item, or
/// fewer items than the inline cutoff, everything runs inline on the
/// calling thread in index order — the parallel and sequential paths
/// share one loop so their behavior can only differ by scheduling,
/// never by code path. On a 2-D scheduler worker the fan-out is instead
/// published to the shared pool (see [`run_units`]); the requested
/// width is ignored there, since the scheduler's own workers do the
/// helping.
///
/// `each` must be safe to call concurrently for distinct indices; every
/// index is visited exactly once. Returns the per-worker loads, calling
/// worker first.
pub fn run_indexed<T: Sync>(
    threads: usize,
    items: &[T],
    each: impl Fn(usize, &T) + Sync,
) -> Vec<WorkerLoad> {
    if let Some((sched, worker)) = current_scheduler() {
        return run_shared(sched, worker, items, &each, &mut || {});
    }
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 || items.len() < INLINE_CUTOFF {
        return vec![drain_inline(items, &each, &mut || {})];
    }
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), threads);
    std::thread::scope(|scope| {
        let (cursor, each) = (&cursor, &each);
        let handles: Vec<_> = (1..threads)
            .map(|w| scope.spawn(move || drain_chunks(w, cursor, chunk, items, each)))
            .collect();
        // The calling thread participates as worker 0 and then *blocks*
        // on the joins — no poll loop burning a core.
        let own = drain_chunks(0, cursor, chunk, items, each);
        let mut loads = vec![own];
        for handle in handles {
            match handle.join() {
                Ok(load) => loads.push(load),
                // A worker can only die on a panic that escaped `each`;
                // re-raise it on the caller thread instead of hiding it.
                Err(payload) => resume_unwind(payload),
            }
        }
        loads
    })
}

/// The shared chunk-claiming drain loop: one `Instant` pair per claimed
/// chunk (not per item), so load accounting stays cheap.
fn drain_chunks<T: Sync>(
    worker: usize,
    cursor: &AtomicUsize,
    chunk: usize,
    items: &[T],
    each: &(impl Fn(usize, &T) + Sync),
) -> WorkerLoad {
    let mut load = WorkerLoad {
        worker,
        ..WorkerLoad::default()
    };
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= items.len() {
            break;
        }
        let t = Instant::now();
        for (idx, item) in items.iter().enumerate().skip(start).take(chunk) {
            each(idx, item);
            load.tasks += 1;
        }
        load.busy_ns += t.elapsed().as_nanos();
    }
    load
}

/// The inline (single-threaded) drain: index order, `each` then
/// `on_main` per item.
fn drain_inline<T: Sync>(
    items: &[T],
    each: &impl Fn(usize, &T),
    on_main: &mut impl FnMut(),
) -> WorkerLoad {
    let mut load = WorkerLoad::default();
    let t = Instant::now();
    for (idx, item) in items.iter().enumerate() {
        each(idx, item);
        load.tasks += 1;
        on_main();
    }
    load.busy_ns = t.elapsed().as_nanos();
    load
}

/// Runs `f(index, &items[index])` for every index on the pool and
/// returns the results **in index order**, regardless of which worker
/// computed what — the standard deterministic fan-out: each result is
/// deposited into its index-addressed slot and the slots are drained
/// sequentially afterwards. Also returns the per-worker loads.
///
/// This is the primitive behind the trade-off tier's parallel candidate
/// pricing; under a 2-D scheduler it publishes to the shared pool like
/// [`run_indexed`].
pub fn map_indexed<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<WorkerLoad>) {
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let loads = run_indexed(threads, items, |i, item| {
        let r = f(i, item);
        match slots[i].lock() {
            Ok(mut slot) => *slot = Some(r),
            // A poisoned slot means another worker panicked mid-store,
            // which `run_indexed` re-raises on the caller; storing through
            // the poison keeps this worker's result intact regardless.
            Err(poison) => *poison.into_inner() = Some(r),
        }
    });
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("run_indexed visits every index exactly once")
        })
        .collect();
    (results, loads)
}

/// Like [`run_indexed`], but dedicates the calling thread to `on_main`
/// instead of claiming items: while spawned workers drain `items`, the
/// calling thread repeatedly runs `on_main` (yielding between calls)
/// until every worker has finished. With `threads <= 1`, a single item,
/// or fewer items than the inline cutoff, everything runs inline in
/// index order — `each`, then `on_main`, per item. On a 2-D scheduler
/// worker the fan-out publishes to the shared pool and the owning
/// worker both drains chunks and interleaves `on_main`.
///
/// The split exists for collect/speculate/commit schemes whose commit
/// step must stay on the calling thread (e.g. because it reads
/// thread-local state, like the fault-injection pending-exhaustion
/// cell): workers only speculate, `on_main` commits. `on_main` must be
/// cheap when there is nothing new to commit — it runs in a poll loop,
/// not on a notification.
pub fn run_indexed_driving<T: Sync>(
    threads: usize,
    items: &[T],
    each: impl Fn(usize, &T) + Sync,
    mut on_main: impl FnMut(),
) -> Vec<WorkerLoad> {
    if let Some((sched, worker)) = current_scheduler() {
        return run_shared(sched, worker, items, &each, &mut on_main);
    }
    let threads = resolve_threads(threads).min(items.len()).max(1);
    if threads == 1 || items.len() < INLINE_CUTOFF {
        return vec![drain_inline(items, &each, &mut on_main)];
    }
    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), threads);
    std::thread::scope(|scope| {
        let (cursor, each) = (&cursor, &each);
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || drain_chunks(w, cursor, chunk, items, each)))
            .collect();
        while !handles.iter().all(|h| h.is_finished()) {
            on_main();
            std::thread::yield_now();
        }
        // Joined (and therefore merged) in worker-index order.
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(load) => load,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    })
}

// ---------------------------------------------------------------------
// The unit-level 2-D scheduler
// ---------------------------------------------------------------------

/// The per-worker state shared by every worker of a [`run_units`]
/// scope (bundled so the worker loop stays a readable signature).
struct UnitPool<'a, I, T> {
    sched: &'a Scheduler,
    unit_workers: usize,
    units: &'a [I],
    cursor: &'a AtomicUsize,
    slots: &'a [Mutex<Option<T>>],
    panics: &'a Mutex<Vec<Box<dyn Any + Send>>>,
}

/// One scheduler worker: unit workers (index below `unit_workers`)
/// claim whole units off the shared cursor; once the cursor runs dry —
/// or from the start, for reserved sim workers — they steal chunks
/// from in-flight units' published queues until the last unit commits.
fn unit_worker_loop<I: Sync, T: Send>(
    pool: &UnitPool<'_, I, T>,
    worker: usize,
    f: &(impl Fn(usize, &I) -> T + Sync),
) -> WorkerLoad {
    let _tls = SchedGuard::enter(pool.sched, worker);
    let mut load = WorkerLoad {
        worker,
        ..WorkerLoad::default()
    };
    if worker < pool.unit_workers {
        loop {
            let i = pool.cursor.fetch_add(1, Ordering::AcqRel);
            if i >= pool.units.len() {
                break;
            }
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| f(i, &pool.units[i])));
            load.busy_ns += t.elapsed().as_nanos();
            load.tasks += 1;
            match outcome {
                Ok(result) => *relock(&pool.slots[i]) = Some(result),
                Err(payload) => relock(pool.panics).push(payload),
            }
            pool.sched.units_done.fetch_add(1, Ordering::Release);
        }
        // Cursor dry: this worker is now a stealer — tell publishers.
        // (Sim workers are pre-counted at scheduler construction.)
        pool.sched.idlers.fetch_add(1, Ordering::Release);
    }
    let mut idle_rounds = 0u32;
    while pool.sched.units_done.load(Ordering::Acquire) < pool.sched.units_total {
        match steal_once(pool.sched, worker) {
            Some(stolen) => {
                load.tasks += stolen.tasks;
                load.stolen += stolen.stolen;
                load.busy_ns += stolen.busy_ns;
                idle_rounds = 0;
            }
            None => {
                // Nothing stealable: back off exponentially (a few
                // yields, then sleeps doubling to ~2 ms) so idle
                // workers don't burn the cores the busy ones need —
                // on an oversubscribed machine eager spinning costs
                // more than any steal could ever win back.
                if idle_rounds < 4 {
                    std::thread::yield_now();
                } else {
                    let exp = (idle_rounds - 4).min(5);
                    std::thread::sleep(Duration::from_micros(50 << exp));
                }
                idle_rounds = idle_rounds.saturating_add(1);
            }
        }
    }
    load
}

/// Runs `f(index, &units[index])` over every unit on a shared 2-D
/// scheduler and returns the results in submission (index) order —
/// execution order never leaks into the output — plus the per-worker
/// loads and the wall-clock nanoseconds of the fan-out.
///
/// The worker set is `unit_workers + sim_workers` scoped threads:
/// `unit_workers` claim whole units one at a time off a shared cursor;
/// the reserved `sim_workers` (and any unit worker whose cursor ran
/// dry) steal chunks from in-flight units' published DST/pricing
/// queues instead of parking. With one unit worker and no sim workers
/// everything runs inline on the calling thread in index order, so the
/// sequential path is the same code the nested tiers see.
///
/// This is the unit-level compilation queue shared by the evaluation
/// harness (`dbds_harness::run_units` re-exports it) and the
/// compilation service's batch dispatcher.
pub fn run_units<I: Sync, T: Send>(
    unit_workers: usize,
    sim_workers: usize,
    units: &[I],
    f: impl Fn(usize, &I) -> T + Sync,
) -> (Vec<T>, Vec<WorkerLoad>, u128) {
    let t = Instant::now();
    if units.is_empty() {
        return (Vec::new(), Vec::new(), t.elapsed().as_nanos());
    }
    let unit_workers = unit_workers.max(1).min(units.len());
    if unit_workers == 1 && sim_workers == 0 {
        // Pure sequential: no scheduler, no thread-local registration —
        // inner fan-outs take their normal (per-unit config) path.
        let mut load = WorkerLoad::default();
        let mut results = Vec::with_capacity(units.len());
        for (i, unit) in units.iter().enumerate() {
            let t_unit = Instant::now();
            results.push(f(i, unit));
            load.busy_ns += t_unit.elapsed().as_nanos();
            load.tasks += 1;
        }
        return (results, vec![load], t.elapsed().as_nanos());
    }
    let sched = Scheduler {
        queues: Mutex::new(Vec::new()),
        open: AtomicUsize::new(0),
        units_done: AtomicUsize::new(0),
        units_total: units.len(),
        workers: unit_workers + sim_workers,
        // Sim workers are born idle; counting them before they spawn
        // closes the startup race where an early fan-out would see no
        // stealers and skip publication.
        idlers: AtomicUsize::new(sim_workers),
    };
    let slots: Vec<Mutex<Option<T>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panics: Mutex<Vec<Box<dyn Any + Send>>> = Mutex::new(Vec::new());
    let pool = UnitPool {
        sched: &sched,
        unit_workers,
        units,
        cursor: &cursor,
        slots: &slots,
        panics: &panics,
    };
    let loads: Vec<WorkerLoad> = std::thread::scope(|scope| {
        let pool = &pool;
        let f = &f;
        let handles: Vec<_> = (0..pool.sched.workers)
            .map(|w| scope.spawn(move || unit_worker_loop(pool, w, f)))
            .collect();
        // The calling thread blocks on the joins — the old map-based
        // queue spun here polling `is_finished`, which on small machines
        // stole cycles from the workers themselves.
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(load) => load,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });
    if let Some(payload) = relock(&panics).drain(..).next() {
        resume_unwind(payload);
    }
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
                .expect("every unit committed a result or a panic")
        })
        .collect();
    (results, loads, t.elapsed().as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn every_index_visited_exactly_once() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let seen: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
            let loads = run_indexed(threads, &items, |i, &v| {
                assert_eq!(v, i as u64);
                seen[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(
                    s.load(Ordering::Relaxed),
                    1,
                    "index {i} at {threads} threads"
                );
            }
            assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), items.len());
            assert!(loads.len() <= threads);
            // Worker-index order (the caller participates as worker 0).
            for (w, load) in loads.iter().enumerate() {
                assert_eq!(load.worker, w);
            }
        }
    }

    #[test]
    fn inline_pool_runs_in_index_order() {
        let items: Vec<usize> = (0..40).collect();
        let order = Mutex::new(Vec::new());
        run_indexed(1, &items, |i, _| order.lock().unwrap().push(i));
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn small_fanouts_run_inline_without_spawning() {
        // Below the cutoff a wide pool must not spawn: everything runs
        // on the calling thread, in index order.
        let items: Vec<usize> = (0..(INLINE_CUTOFF - 1)).collect();
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let loads = run_indexed(8, &items, |i, _| {
            assert_eq!(std::thread::current().id(), caller);
            order.lock().unwrap().push(i);
        });
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].tasks, items.len());
        assert_eq!(
            order.into_inner().unwrap(),
            (0..items.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_indexed_returns_results_in_index_order() {
        let items: Vec<u64> = (0..131).collect();
        for threads in [1, 2, 3, 8] {
            let (results, loads) = map_indexed(threads, &items, |i, &v| v * 2 + i as u64);
            assert_eq!(
                results,
                items.iter().map(|&v| v * 3).collect::<Vec<_>>(),
                "at {threads} threads"
            );
            assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), items.len());
        }
        let (empty, _) = map_indexed(4, &[] as &[u64], |_, _| 0u64);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let loads = run_indexed(4, &[] as &[u64], |_, _| panic!("never called"));
        assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), 0);
        let (results, loads, _) = run_units(4, 2, &[] as &[u64], |_, _| 0u64);
        assert!(results.is_empty());
        assert!(loads.is_empty());
    }

    #[test]
    fn resolve_threads_never_zero() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), hardware_threads());
        // Cached: repeated resolution returns the same value.
        assert_eq!(hardware_threads(), hardware_threads());
    }

    #[test]
    fn run_units_commits_in_submission_order_across_splits() {
        let units: Vec<u64> = (0..23).collect();
        for (u, s) in [(1, 0), (2, 0), (1, 2), (3, 2), (4, 4)] {
            let (results, loads, _) = run_units(u, s, &units, |i, &v| {
                // Inner fan-out per unit: publishable once the scheduler
                // is active, inline otherwise.
                let items: Vec<u64> = (0..40).collect();
                let (inner, _) = map_indexed(1, &items, |j, &w| w + j as u64);
                inner.iter().sum::<u64>() + v * 1000 + i as u64
            });
            let expected: Vec<u64> = units
                .iter()
                .enumerate()
                .map(|(i, &v)| (0..40u64).map(|w| w * 2).sum::<u64>() + v * 1000 + i as u64)
                .collect();
            assert_eq!(results, expected, "at split {u}x{s}");
            assert!(
                loads.iter().map(|l| l.tasks).sum::<usize>() >= units.len(),
                "unit claims counted at {u}x{s}"
            );
        }
    }

    #[test]
    fn stolen_chunks_attributed_to_stealing_worker() {
        // One unit worker, two reserved sim workers. The unit's inner
        // fan-out is large and its first item blocks the owner until the
        // stealers have drained (nearly) everything else, forcing steals.
        let ran = AtomicUsize::new(0);
        let units = [0usize];
        let len = 512usize;
        let (results, _, _) = run_units(1, 2, &units, |_, _| {
            let items: Vec<usize> = (0..len).collect();
            run_indexed(1, &items, |i, _| {
                if i == 0 {
                    // The owner runs item 0 (it claims chunk 0 first);
                    // hold it until the stealers have done real work.
                    while ran.load(Ordering::Acquire) < len / 2 {
                        std::thread::yield_now();
                    }
                }
                ran.fetch_add(1, Ordering::Release);
            })
        });
        let loads = &results[0];
        assert_eq!(loads.iter().map(|l| l.tasks).sum::<usize>(), len);
        // Work stolen from the unit's queue is attributed to the
        // stealing worker, not the owner.
        let stolen: usize = loads
            .iter()
            .filter(|l| l.worker != loads[0].worker)
            .map(|l| l.stolen)
            .sum();
        assert!(stolen > 0, "expected sim workers to steal: {loads:?}");
        for load in &loads[1..] {
            assert_eq!(load.tasks, load.stolen, "stealers only steal");
            assert_ne!(load.worker, loads[0].worker);
        }
        // The owner's own chunks are not counted as stolen.
        assert_eq!(loads[0].stolen, 0);
    }

    #[test]
    fn unit_worker_panic_propagates() {
        let units: Vec<usize> = (0..8).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_units(2, 1, &units, |i, _| {
                if i == 3 {
                    panic!("unit 3 exploded");
                }
                i
            })
        }));
        assert!(outcome.is_err());
    }
}
