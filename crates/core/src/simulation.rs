//! The DBDS simulation tier (§4.1).
//!
//! A depth-first traversal of the dominator tree carries a [`FactEnv`]
//! (synonyms, condition-refined stamps, memory caches, virtual objects).
//! Whenever the traversal sits on a block `b_pi` with a merge successor
//! `b_m`, it pauses and starts a *duplication simulation traversal* (DST):
//! the instructions of `b_m` are evaluated as if they had been appended to
//! `b_pi`, with every φ mapped to its input on the `b_pi` edge through the
//! synonym map. Applicability checks that fire during the DST become
//! [`Opportunity`] records; the static performance estimator (the node
//! cost model) prices each one in *cycles saved* and *code size delta*.
//! No IR is copied or mutated at any point — that is the entire argument
//! for simulation over backtracking (§3).
//!
//! # Parallel execution
//!
//! Because DSTs are side-effect-free (§4.1), they can run concurrently:
//! [`simulate_paths_parallel`] shards the candidate list over a
//! [`crate::par`] worker pool. Determinism is preserved by splitting the
//! tier into three steps:
//!
//! 1. **Collect** (coordinating thread): the dominator-tree DFS runs
//!    once *without* consuming budget, snapshotting one [`FactEnv`] per
//!    `(pred, merge)` candidate and a fuel **schedule** — the exact
//!    sequence of budget events the sequential tier would issue.
//!    Fault-injection decisions for `simulation/dst` are taken here, in
//!    candidate order, so `nth`-hit counting never races.
//! 2. **Speculate** (workers): each DST runs against a *trace-recording*
//!    budget that never touches the shared one; it only polls
//!    [`Budget::stopped_hint`] to abandon doomed work early.
//! 3. **Commit** (coordinating thread, in candidate order): recorded
//!    traces are replayed against the real [`Budget`] following the
//!    schedule, overlapping the workers' speculation. The first failing
//!    event is the stop point — the same one the sequential tier would
//!    have hit — and any speculative work past it is discarded. Results
//!    live in candidate-index slots, so scheduling cannot leak into the
//!    output: every thread count yields bit-identical results, stop
//!    reasons, and panic records. Keeping every real-budget charge on
//!    the coordinating thread also preserves the thread-local
//!    fault-injection contract of [`Budget::consume`].

use crate::bailout::{isolate, BailoutReason, Budget};
use crate::faultinject::{self, PlannedFault};
use crate::par::{self, WorkerLoad};
use dbds_analysis::{AnalysisCache, BlockFrequencies, DomTree};
use dbds_costmodel::CostModel;
use dbds_ir::{BlockId, ConstValue, Graph, Inst, InstId, InstKind, Terminator};
use dbds_opt::{evaluate, record_effects, FactEnv, OptKind, Synonym, Verdict};
use std::cell::{Cell, RefCell};
use std::sync::Mutex;
use std::time::Instant;

/// One optimization opportunity discovered during a DST.
#[derive(Clone, Debug, PartialEq)]
pub struct Opportunity {
    /// The merge-block instruction that becomes optimizable (or the
    /// allocation, for a predicted scalar replacement).
    pub inst: InstId,
    /// The optimization class that fires.
    pub kind: OptKind,
    /// Estimated cycles saved on this path.
    pub cycles_saved: f64,
    /// Estimated code-size change (negative shrinks the copy).
    pub size_delta: i64,
}

/// How a candidate's duplication path was formed, and therefore which
/// transform sequence the optimization tier applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CandidateKind {
    /// Classic DBDS tail duplication: the path covers merge blocks
    /// connected by unconditional jumps.
    MergeDup,
    /// Branch splitting (Breitner-style conditional elimination through
    /// duplication): the DST continued *through* a branch terminator it
    /// decided statically on this path, so the final path element is the
    /// statically-taken successor rather than a jump target. Applying it
    /// duplicates the merge into the predecessor and then threads the
    /// copy through the decided branch.
    BranchSplit,
}

impl CandidateKind {
    /// Stable kebab-case name (used by reports).
    pub fn name(self) -> &'static str {
        match self {
            CandidateKind::MergeDup => "merge-dup",
            CandidateKind::BranchSplit => "branch-split",
        }
    }
}

/// The simulation result for one predecessor→merge pair.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationResult {
    /// The predecessor block `b_pi`.
    pub pred: BlockId,
    /// The merge block `b_m`.
    pub merge: BlockId,
    /// How the path was formed (and how to apply it).
    pub kind: CandidateKind,
    /// The merge blocks covered, in order; `path[0] == merge`. Longer
    /// paths come from the §8 path-based extension: the DST continued
    /// through a jump into a further merge — or, for
    /// [`CandidateKind::BranchSplit`], through a statically-decided
    /// branch (the last element is then the taken successor).
    pub path: Vec<BlockId>,
    /// Relative execution probability of the duplicated code (the
    /// `p` of the `shouldDuplicate` heuristic): the frequency of the
    /// `pred → merge` edge relative to the unit's hottest block.
    pub probability: f64,
    /// Total estimated cycles saved by the enabled optimizations.
    pub cycles_saved: f64,
    /// Estimated code-size increase of performing the duplication (copy
    /// size after the enabled optimizations, minus any eliminated
    /// allocations elsewhere).
    pub size_cost: i64,
    /// The individual opportunities.
    pub opportunities: Vec<Opportunity>,
}

impl SimulationResult {
    /// Probability-weighted benefit used for candidate ranking.
    pub fn weighted_benefit(&self) -> f64 {
        self.cycles_saved * self.probability
    }
}

/// What the simulation tier produced, including any guardrail events.
///
/// Produced by [`simulate_paths_budgeted`]; `results` holds whatever was
/// discovered before a budget stop, so a partial simulation still feeds
/// the trade-off tier.
#[derive(Clone, Debug)]
pub struct SimulationOutcome {
    /// The per-pair simulation results discovered so far, unsorted.
    pub results: Vec<SimulationResult>,
    /// `Some` when the walk stopped early on budget exhaustion.
    pub stopped: Option<BailoutReason>,
    /// DSTs whose evaluation panicked, as `(pred, merge, message)`; the
    /// pair is simply skipped (no candidate, no result).
    pub panicked: Vec<(BlockId, BlockId, String)>,
    /// The resolved thread-count knob the DST pool ran with. Purely
    /// observational: `results`/`stopped`/`panicked` are identical for
    /// every value.
    pub threads: usize,
    /// Wall-clock nanoseconds spent in the fan-out region (sharded DSTs
    /// plus the in-order commit). Timing only — never compare it.
    pub par_ns: u128,
    /// Per-worker load statistics, merged in worker-index order. The
    /// counts depend on scheduling and must not feed back into results.
    pub workers: Vec<WorkerLoad>,
}

/// Simulates every predecessor→merge duplication in `g` and returns the
/// per-pair results, unsorted. Dominators and frequencies are pulled
/// through `cache`, so repeated simulations of an unchanged graph cost no
/// analysis recomputation.
pub fn simulate(g: &Graph, model: &CostModel, cache: &mut AnalysisCache) -> Vec<SimulationResult> {
    simulate_paths(g, model, cache, 1)
}

/// Whether DSTs may continue through a statically-decided branch (the
/// branch-splitting extension). The convenience wrappers enable it; the
/// phase threads its `enable_branch_splitting` config knob through
/// [`simulate_paths_parallel`].
pub const BRANCH_SPLIT_DEFAULT: bool = true;

/// Like [`simulate`], but lets the DST continue across up to
/// `max_path_len` consecutive merges connected by jumps — the §8
/// "duplication over multiple merges along paths" extension. Every
/// prefix of a path is reported as its own candidate, so the trade-off
/// tier can stop at the profitable length.
pub fn simulate_paths(
    g: &Graph,
    model: &CostModel,
    cache: &mut AnalysisCache,
    max_path_len: usize,
) -> Vec<SimulationResult> {
    simulate_paths_budgeted(g, model, cache, max_path_len, &Budget::unlimited()).results
}

/// Like [`simulate_paths`], but cooperatively polls `budget` (one fuel
/// unit per instruction visited plus one per block) and isolates each
/// DST behind a panic guard. Budget exhaustion stops the walk and
/// reports what was found so far; a panicking DST only loses that one
/// predecessor→merge pair. Runs the DST pool inline on one thread.
pub fn simulate_paths_budgeted(
    g: &Graph,
    model: &CostModel,
    cache: &mut AnalysisCache,
    max_path_len: usize,
    budget: &Budget,
) -> SimulationOutcome {
    simulate_paths_parallel(
        g,
        model,
        cache,
        max_path_len,
        budget,
        1,
        BRANCH_SPLIT_DEFAULT,
    )
}

/// Like [`simulate_paths_budgeted`], but shards the DSTs over up to
/// `threads` workers (`0` = one per hardware thread) and lets the caller
/// gate the branch-splitting continuation (`branch_split`). See the
/// module docs for the collect/speculate/commit determinism scheme: the
/// `results`, `stopped`, and `panicked` fields are bit-identical for
/// every thread count; only `threads`/`par_ns`/`workers` differ.
#[allow(clippy::too_many_arguments)]
pub fn simulate_paths_parallel(
    g: &Graph,
    model: &CostModel,
    cache: &mut AnalysisCache,
    max_path_len: usize,
    budget: &Budget,
    threads: usize,
    branch_split: bool,
) -> SimulationOutcome {
    let max_path_len = max_path_len.max(1);
    let threads = par::resolve_threads(threads);
    // Pre-warm every CFG analysis once, before fan-out: workers get
    // `&`-shared snapshots and never touch the cache (which needs
    // `&mut` to fill a slot).
    let dt = cache.domtree(g);
    let _loops_warm = cache.loops(g);
    let freqs = cache.frequencies(g);

    let mut ctx = CollectCtx {
        g,
        dt: &dt,
        schedule: Vec::new(),
        tasks: Vec::new(),
    };
    collect_candidates(&mut ctx, g.entry(), FactEnv::new());
    let CollectCtx {
        schedule, tasks, ..
    } = ctx;

    let outcomes: Vec<Mutex<Option<TaskOutcome>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let mut committer = Committer {
        budget,
        schedule,
        tasks: &tasks,
        next: 0,
        results: Vec::new(),
        panicked: Vec::new(),
        stopped: None,
        done: false,
    };

    // Workers only speculate; every real-budget charge happens on this
    // (the coordinating) thread, via the `on_main` commit loop below.
    // That keeps commit order trivially deterministic, lets commit
    // overlap speculation instead of contending with it, and preserves
    // the thread-local semantics of `Budget::consume` — an injected
    // pending exhaustion armed on this thread must be taken here, at
    // the same schedule position as in a sequential run.
    let fan_out = Instant::now();
    let workers = par::run_indexed_driving(
        threads,
        &tasks,
        |i, task| {
            // Cancellation: once the shared budget is dead the committer
            // is guaranteed to stop at or before this candidate, so its
            // DST is wasted work. Fault-planned tasks still run — their
            // injected event must reach the committer so the stop reason
            // matches the sequential tier.
            if task.fault.is_none() && budget.stopped_hint() {
                return;
            }
            let outcome = run_task(g, model, &freqs, budget, task, max_path_len, branch_split);
            *outcomes[i].lock().expect("outcome slot poisoned") = Some(outcome);
        },
        // Advance the commit frontier as deposits land, so fuel burns
        // and exhaustion becomes visible (via `stopped_hint`) while the
        // pool is still draining candidates. O(1) when nothing new has
        // been deposited.
        || committer.drain(&outcomes),
    );
    committer.finish(&outcomes);
    let par_ns = fan_out.elapsed().as_nanos();

    SimulationOutcome {
        results: committer.results,
        stopped: committer.stopped,
        panicked: committer.panicked,
        threads,
        par_ns,
        workers,
    }
}

/// One `(pred, merge)` DST, snapshotted at collection time.
struct DstTask {
    pred: BlockId,
    merge: BlockId,
    /// The facts valid at the end of `pred` plus the edge condition; the
    /// worker that runs the task takes ownership.
    env: Mutex<Option<FactEnv>>,
    /// Fault-injection decision for this candidate, taken on the
    /// coordinating thread in candidate order.
    fault: Option<PlannedFault>,
}

/// One budget event of the sequential tier, in sequential order.
enum FuelEvent {
    /// The dominator-tree walk charges a block (`insts + 1` units).
    Walk(u64),
    /// The DST at this task index charges whatever its trace recorded.
    Dst(usize),
}

/// State of the candidate-collection DFS.
struct CollectCtx<'a> {
    g: &'a Graph,
    dt: &'a DomTree,
    schedule: Vec<FuelEvent>,
    tasks: Vec<DstTask>,
}

/// The dominator-tree DFS of the sequential tier, minus the DSTs: it
/// accumulates facts exactly like the old inline walk, but instead of
/// consuming budget and running DSTs on the spot it records the budget
/// *schedule* and snapshots one task per candidate. Mirrors the
/// canonicalization pass's fact propagation; never mutates the graph.
fn collect_candidates(ctx: &mut CollectCtx<'_>, b: BlockId, mut env: FactEnv) {
    let g = ctx.g;
    ctx.schedule
        .push(FuelEvent::Walk(g.block_insts(b).len() as u64 + 1));

    // Evaluate this block's instructions to accumulate facts. Fresh
    // allocations become virtual objects so PEA-style reasoning can see
    // through them; `record_effects` materializes them on any escape.
    for &i in g.block_insts(b) {
        let eval = evaluate(g, &env, i);
        if let Inst::New { class } = g.inst(i) {
            env.add_virtual(i, *class);
        }
        record_effects(g, &mut env, i, &eval);
    }

    // Snapshot a DST task for every merge successor (the gray blocks of
    // Figure 2 in the paper).
    for s in g.succs(b) {
        if s != b && g.is_merge(s) {
            let mut dst_env = env.clone();
            assume_edge(g, &mut dst_env, b, s);
            let fault = faultinject::take_site_plan("simulation/dst");
            let idx = ctx.tasks.len();
            ctx.tasks.push(DstTask {
                pred: b,
                merge: s,
                env: Mutex::new(Some(dst_env)),
                fault,
            });
            ctx.schedule.push(FuelEvent::Dst(idx));
        }
    }

    let dt = ctx.dt;
    for &child in dt.children(b) {
        if g.preds(child) == [b] {
            let mut child_env = env.clone();
            assume_edge(g, &mut child_env, b, child);
            collect_candidates(ctx, child, child_env);
        } else {
            collect_candidates(ctx, child, env.clone_pure());
        }
    }
}

/// A budget stand-in for speculative DSTs: accumulates what the DST
/// *would* consume instead of charging the shared [`Budget`], and aborts
/// the DST early when the shared budget is already dead (the recorded
/// consumption is then guaranteed to fail on replay).
///
/// A trace needs no event list: a DST either commits whole (all its
/// consumes succeed) or contributes nothing (the first failure discards
/// it), so the committer only needs the consume *sum* plus the terminal
/// injected-exhaustion reason, if any (an injected exhaustion fails the
/// consume that observes it without charging fuel, so it is always the
/// final event of a trace).
struct TraceBudget<'a> {
    real: &'a Budget,
    pending: RefCell<Option<BailoutReason>>,
    fuel: Cell<u64>,
    injected: RefCell<Option<BailoutReason>>,
}

impl TraceBudget<'_> {
    fn consume(&self, units: u64) -> Result<(), BailoutReason> {
        if let Some(reason) = self.pending.borrow_mut().take() {
            *self.injected.borrow_mut() = Some(reason.clone());
            return Err(reason);
        }
        self.fuel.set(self.fuel.get() + units);
        if self.real.stopped_hint() {
            // Placeholder reason — the committer derives the real one
            // when it replays this trace.
            return Err(BailoutReason::FuelExhausted);
        }
        Ok(())
    }
}

/// What one speculative DST produced; only valid once the committer has
/// successfully replayed its consumption against the real budget.
struct TaskOutcome {
    /// Sum of the fuel the DST's consumes would have charged.
    fuel: u64,
    /// Terminal injected exhaustion (fault plan), failing the replay
    /// after `fuel` commits.
    injected: Option<BailoutReason>,
    results: Vec<SimulationResult>,
    panic: Option<String>,
    /// The DST was abandoned on a real budget stop; its replay must
    /// fail, never commit cleanly.
    aborted: bool,
}

/// Runs one DST speculatively on whatever worker claimed it.
#[allow(clippy::too_many_arguments)]
fn run_task(
    g: &Graph,
    model: &CostModel,
    freqs: &BlockFrequencies,
    budget: &Budget,
    task: &DstTask,
    max_path_len: usize,
    branch_split: bool,
) -> TaskOutcome {
    let pending = match task.fault {
        Some(PlannedFault::ExhaustFuel) => Some(BailoutReason::FuelExhausted),
        Some(PlannedFault::ExhaustDeadline) => Some(BailoutReason::DeadlineExceeded),
        _ => None,
    };
    let trace = TraceBudget {
        real: budget,
        pending: RefCell::new(pending),
        fuel: Cell::new(0),
        injected: RefCell::new(None),
    };
    let env = task
        .env
        .lock()
        .expect("task env lock poisoned")
        .take()
        .expect("each task runs at most once");
    let panic_planned = task.fault == Some(PlannedFault::Panic);
    let outcome = isolate(|| {
        if panic_planned {
            faultinject::injected_panic("simulation/dst");
        }
        run_dst(
            g,
            model,
            freqs,
            &trace,
            env,
            task.pred,
            task.merge,
            max_path_len,
            branch_split,
        )
    });
    let fuel = trace.fuel.get();
    let injected = trace.injected.into_inner();
    match outcome {
        Ok(Ok(results)) => TaskOutcome {
            fuel,
            injected,
            results,
            panic: None,
            aborted: false,
        },
        Ok(Err(_)) => TaskOutcome {
            fuel,
            injected,
            results: Vec::new(),
            panic: None,
            aborted: true,
        },
        Err(BailoutReason::TransformPanicked(msg)) => TaskOutcome {
            fuel,
            injected,
            results: Vec::new(),
            panic: Some(msg),
            aborted: false,
        },
        // `isolate` only errs with `TransformPanicked`; keep the message
        // rather than losing it if that contract ever changes.
        Err(other) => TaskOutcome {
            fuel,
            injected,
            results: Vec::new(),
            panic: Some(format!("{other:?}")),
            aborted: false,
        },
    }
}

/// Replays speculative traces against the real budget, in candidate
/// order. The first failing event is the deterministic stop point.
struct Committer<'a> {
    budget: &'a Budget,
    schedule: Vec<FuelEvent>,
    tasks: &'a [DstTask],
    /// Next schedule index to replay.
    next: usize,
    results: Vec<SimulationResult>,
    panicked: Vec<(BlockId, BlockId, String)>,
    stopped: Option<BailoutReason>,
    done: bool,
}

impl Committer<'_> {
    /// Advances the commit frontier as far as deposited outcomes allow;
    /// returns early when the next DST's outcome is not in yet.
    fn drain(&mut self, outcomes: &[Mutex<Option<TaskOutcome>>]) {
        while !self.done {
            let Some(event) = self.schedule.get(self.next) else {
                self.done = true;
                return;
            };
            match *event {
                FuelEvent::Walk(units) => {
                    if let Err(reason) = self.budget.consume(units) {
                        self.stop(reason);
                        return;
                    }
                }
                FuelEvent::Dst(i) => {
                    // Poll before charging: if the budget is already
                    // dead, this candidate stops the walk *without*
                    // consuming — exactly what the 1-thread path does
                    // when it skips the task and the final drain's
                    // `check` reports the stop. Charging the deposited
                    // trace instead would make `fuel_used` depend on
                    // how much trace the worker recorded before
                    // noticing the stop, which is scheduling.
                    if let Err(reason) = self.budget.check() {
                        self.stop(reason);
                        return;
                    }
                    let Some(outcome) = outcomes[i].lock().expect("outcome slot poisoned").take()
                    else {
                        return;
                    };
                    // A live budget implies the worker never saw
                    // `stopped_hint` (it is monotone), so the deposited
                    // trace is complete — unless the DST was cut short
                    // by its own injected exhaustion, which needs no
                    // dead budget.
                    debug_assert!(
                        !outcome.aborted || outcome.injected.is_some(),
                        "an abandoned DST reached a live-budget commit: the \
                         stopped_hint it acted on was not monotone"
                    );
                    // Replay the DST's consumption in one charge: a DST
                    // either commits whole or contributes nothing, and
                    // every `run_dst` consume is ≥ 1 unit, so `fuel == 0`
                    // means it issued no budget calls at all.
                    if outcome.fuel > 0 {
                        if let Err(reason) = self.budget.consume(outcome.fuel) {
                            self.stop(reason);
                            return;
                        }
                    }
                    if let Some(reason) = outcome.injected {
                        self.stop(reason);
                        return;
                    }
                    match outcome.panic {
                        Some(msg) => {
                            self.panicked
                                .push((self.tasks[i].pred, self.tasks[i].merge, msg));
                        }
                        None => self.results.extend(outcome.results),
                    }
                }
            }
            self.next += 1;
        }
    }

    fn stop(&mut self, reason: BailoutReason) {
        self.stopped = Some(reason);
        self.done = true;
    }

    /// Final drain after the pool has joined. A still-missing outcome
    /// belongs to a task a worker skipped, which only happens once the
    /// shared budget is dead — so the budget check is guaranteed to fail
    /// with the same reason the sequential tier would have reported at
    /// that candidate.
    fn finish(&mut self, outcomes: &[Mutex<Option<TaskOutcome>>]) {
        loop {
            self.drain(outcomes);
            if self.done {
                return;
            }
            match self.budget.check() {
                Err(reason) => self.stop(reason),
                Ok(()) => unreachable!("a DST was skipped while the budget was alive"),
            }
        }
    }
}

/// The immediate-dominator chain entry → … → `b` on the current cached
/// dominator tree, in walk order. `None` when `b` is unreachable. The
/// chain is exactly the set of blocks whose contents determine the fact
/// environment the simulation tier saw at `b`, which makes it the
/// interference footprint the optimization tier checks candidates
/// against.
pub(crate) fn dominator_chain(
    g: &Graph,
    cache: &mut AnalysisCache,
    b: BlockId,
) -> Option<Vec<BlockId>> {
    let dt = cache.domtree(g);
    if !dt.is_reachable(b) {
        return None;
    }
    let mut chain = vec![b];
    let mut cur = b;
    while cur != g.entry() {
        cur = dt.idom(cur)?;
        chain.push(cur);
    }
    chain.reverse();
    Some(chain)
}

/// Re-runs the applicability analysis of one recorded candidate against
/// the *current* graph — the optimization tier's prediction audit.
///
/// The simulation tier promises that every recorded [`Opportunity`] will
/// still fire when the optimization tier finally duplicates (§4.1's
/// simulation → §5's application contract). Between recording and
/// application, though, earlier accepted candidates have already mutated
/// the graph. This function replays the dominator-path fact accumulation
/// for `s.pred` on the graph as it stands *now* and runs the DST again,
/// returning the opportunities the analysis would record today.
///
/// The replay is exact, not approximate: during collection, the fact
/// environment at a block depends only on its dominator-tree path from
/// entry (each DFS child either extends the parent's facts through its
/// sole incoming edge or starts from [`FactEnv::clone_pure`]), so walking
/// the immediate-dominator chain linearly reproduces the collect-time
/// snapshot. On an unmutated graph the result always equals the recorded
/// opportunities; any mismatch after mutation is a genuine misprediction.
///
/// Returns `None` when the candidate no longer exists at all (`s.pred`
/// became unreachable). Runs against a local unlimited budget: auditing
/// never charges the phase's fuel and is deterministic across thread
/// counts (it always runs on the coordinating thread).
pub fn audit_opportunities(
    g: &Graph,
    model: &CostModel,
    cache: &mut AnalysisCache,
    s: &SimulationResult,
) -> Option<Vec<Opportunity>> {
    let chain = dominator_chain(g, cache, s.pred)?;
    let freqs = cache.frequencies(g);
    // Accumulate facts along the chain exactly like `collect_candidates`:
    // a child with its parent as sole predecessor extends the parent's
    // facts through the edge condition; any other child starts pure.
    let mut env = FactEnv::new();
    for (k, &b) in chain.iter().enumerate() {
        if k > 0 {
            let parent = chain[k - 1];
            if g.preds(b) == [parent] {
                assume_edge(g, &mut env, parent, b);
            } else {
                env = env.clone_pure();
            }
        }
        for &i in g.block_insts(b) {
            let eval = evaluate(g, &env, i);
            if let Inst::New { class } = g.inst(i) {
                env.add_virtual(i, *class);
            }
            record_effects(g, &mut env, i, &eval);
        }
    }
    assume_edge(g, &mut env, s.pred, s.merge);

    let local = Budget::unlimited();
    let trace = TraceBudget {
        real: &local,
        pending: RefCell::new(None),
        fuel: Cell::new(0),
        injected: RefCell::new(None),
    };
    let results = run_dst(
        g,
        model,
        &freqs,
        &trace,
        env,
        s.pred,
        s.merge,
        s.path.len().max(1),
        // Always allow the fold continuation during audit: whether a
        // recorded BranchSplit path still walks must depend on the graph,
        // not on the phase's enablement knob.
        true,
    )
    .ok()?;
    // The DST emits one result per path prefix; pick the longest prefix
    // of the recorded path that is still walkable.
    results
        .into_iter()
        .filter(|r| s.path.starts_with(&r.path))
        .max_by_key(|r| r.path.len())
        .map(|r| r.opportunities)
}

/// Counts the recorded opportunities the re-run analysis no longer
/// predicts, matching on `(inst, kind)`. The cost estimates are allowed
/// to drift (frequencies change as the graph grows); the *applicability*
/// is what the simulation tier promised.
pub fn count_mispredictions(recorded: &[Opportunity], rerun: &[Opportunity]) -> usize {
    recorded
        .iter()
        .filter(|o| !rerun.iter().any(|r| r.inst == o.inst && r.kind == o.kind))
        .count()
}

/// Refines `env` with the branch condition implied by the edge `b → s`.
fn assume_edge(g: &Graph, env: &mut FactEnv, b: BlockId, s: BlockId) {
    if let Terminator::Branch {
        cond,
        then_bb,
        else_bb,
        ..
    } = g.terminator(b)
    {
        if s == *then_bb {
            let _ = env.assume_condition(g, *cond, true);
        } else if s == *else_bb {
            let _ = env.assume_condition(g, *cond, false);
        }
    }
}

/// Runs one duplication simulation traversal for `(pred, merge)` under
/// `env` (the facts valid at the end of `pred` plus the edge condition).
#[allow(clippy::too_many_arguments)]
fn run_dst(
    g: &Graph,
    model: &CostModel,
    freqs: &BlockFrequencies,
    budget: &TraceBudget<'_>,
    mut env: FactEnv,
    pred: BlockId,
    merge: BlockId,
    max_path_len: usize,
    branch_split: bool,
) -> Result<Vec<SimulationResult>, BailoutReason> {
    let probability = if freqs.max_freq() > 0.0 {
        freqs.freq(pred) * dbds_analysis::edge_probability(g, pred, merge) / freqs.max_freq()
    } else {
        0.0
    };

    let mut acc = SegmentAcc {
        opportunities: Vec::new(),
        cycles_saved: 0.0,
        size_cost: 0,
    };
    let mut results = Vec::new();
    let mut path: Vec<BlockId> = Vec::new();
    let mut cur_pred = pred;
    let mut cur_merge = merge;
    // Set once the walk continues *through* a statically-decided branch
    // (the branch-splitting hop); the segment after it is the last.
    let mut via_fold = false;
    loop {
        path.push(cur_merge);
        budget.consume(g.block_insts(cur_merge).len() as u64 + 1)?;
        let saved_before = acc.cycles_saved;
        let continuation = simulate_segment(g, model, &mut env, cur_pred, cur_merge, &mut acc);
        // The trade-off tier ranks by `probability * cycles_saved`;
        // non-finite estimates would poison that total order (the NaN
        // comparator bug), so reject them at construction.
        debug_assert!(
            probability.is_finite() && acc.cycles_saved.is_finite(),
            "non-finite simulation estimate for ({pred} -> {merge}): \
             p={probability}, cycles_saved={}",
            acc.cycles_saved
        );
        // A split extension only earns its keep when the hop itself
        // uncovered further savings — otherwise the shorter merge-dup
        // prefix (already emitted) subsumes it and the candidate list
        // stays free of no-op split variants.
        if !via_fold || acc.cycles_saved > saved_before {
            results.push(SimulationResult {
                pred,
                merge,
                kind: if via_fold {
                    CandidateKind::BranchSplit
                } else {
                    CandidateKind::MergeDup
                },
                path: path.clone(),
                probability,
                cycles_saved: acc.cycles_saved,
                size_cost: acc.size_cost,
                opportunities: acc.opportunities.clone(),
            });
        }
        if via_fold {
            break; // a single hop through a decided branch
        }
        // §8 path extension: continue through an unconditional jump into a
        // further merge (each prefix was already emitted above) — or, when
        // branch splitting is on, through a branch this path decided
        // statically (the probability is unchanged: the branch has exactly
        // one live successor on this path).
        match continuation {
            SegmentCont::Jump(next)
                if path.len() < max_path_len
                    && g.is_merge(next)
                    && next != cur_merge
                    && !path.contains(&next)
                    && next != pred =>
            {
                cur_pred = cur_merge;
                cur_merge = next;
            }
            SegmentCont::Folded(next)
                if branch_split && next != cur_merge && !path.contains(&next) && next != pred =>
            {
                via_fold = true;
                cur_pred = cur_merge;
                cur_merge = next;
            }
            _ => break,
        }
    }
    Ok(results)
}

/// Running totals while a DST walks one or more merge segments.
struct SegmentAcc {
    opportunities: Vec<Opportunity>,
    cycles_saved: f64,
    size_cost: i64,
}

/// How one simulated segment ended: stop, an unconditional jump the §8
/// path extension may follow, or a branch the path's facts decided
/// statically (the branch-splitting continuation may follow its taken
/// successor).
enum SegmentCont {
    Stop,
    Jump(BlockId),
    Folded(BlockId),
}

/// Evaluates one merge block of a DST path under `env` (facts valid at
/// the end of `pred`), accumulating into `acc`. Returns how the
/// (possibly folded) terminator allows the path to continue.
fn simulate_segment(
    g: &Graph,
    model: &CostModel,
    env: &mut FactEnv,
    pred: BlockId,
    merge: BlockId,
    acc: &mut SegmentAcc,
) -> SegmentCont {
    let k = g.pred_index(merge, pred);

    // Seed the synonym map: every φ of the merge maps to its input on the
    // `pred` edge ("the synonym of relation" of Figure 3d).
    let phis: Vec<InstId> = g.phis(merge).to_vec();
    for &phi in &phis {
        let input = match g.inst(phi) {
            Inst::Phi { inputs } => inputs[k],
            _ => unreachable!(),
        };
        if env.resolve(input).id == phi {
            continue; // degenerate self-reference through a back edge
        }
        env.set_synonym(phi, Synonym::Value(input));

        // Predicted scalar replacement (Listing 3/4): if the φ input is an
        // allocation whose only escape is this φ, duplicating removes the
        // escape and the allocation dissolves.
        let rep = env.resolve(input).id;
        if let Inst::New { class } = g.inst(rep) {
            if escapes_only_via_merge_phis(g, rep, merge) {
                env.add_virtual(rep, *class);
                let saved = f64::from(model.cycles(InstKind::New));
                acc.cycles_saved += saved;
                acc.size_cost -= i64::from(model.size(InstKind::New));
                acc.opportunities.push(Opportunity {
                    inst: rep,
                    kind: OptKind::ScalarReplace,
                    cycles_saved: saved,
                    size_delta: -i64::from(model.size(InstKind::New)),
                });
            }
        }
    }

    // Walk the merge block's body as if appended to `pred`.
    for &i in &g.block_insts(merge)[phis.len()..] {
        let kind = g.inst(i).kind();
        let old_cycles = f64::from(model.cycles(kind));
        let old_size = i64::from(model.size(kind));
        let eval = evaluate(g, env, i);
        if let Inst::New { class } = g.inst(i) {
            env.add_virtual(i, *class);
        }
        match &eval.verdict {
            Verdict::Keep => {
                acc.size_cost += old_size;
            }
            Verdict::Const(_) => {
                acc.cycles_saved += old_cycles;
                acc.size_cost += i64::from(model.size(InstKind::Const));
                acc.opportunities.push(Opportunity {
                    inst: i,
                    kind: eval.kind.expect("progress has a kind"),
                    cycles_saved: old_cycles,
                    size_delta: i64::from(model.size(InstKind::Const)) - old_size,
                });
            }
            Verdict::Alias(_) | Verdict::Eliminated => {
                acc.cycles_saved += old_cycles;
                acc.opportunities.push(Opportunity {
                    inst: i,
                    kind: eval.kind.expect("progress has a kind"),
                    cycles_saved: old_cycles,
                    size_delta: -old_size,
                });
            }
            Verdict::Rewrite { op, .. } => {
                let new_kind = InstKind::from(*op);
                let saved = old_cycles - f64::from(model.cycles(new_kind));
                let new_size =
                    i64::from(model.size(new_kind)) + i64::from(model.size(InstKind::Const));
                acc.cycles_saved += saved;
                acc.size_cost += new_size;
                acc.opportunities.push(Opportunity {
                    inst: i,
                    kind: eval.kind.expect("progress has a kind"),
                    cycles_saved: saved,
                    size_delta: new_size - old_size,
                });
            }
        }
        record_effects(g, env, i, &eval);
    }

    // The copied terminator: a branch whose condition became a constant
    // folds to a jump.
    match g.terminator(merge) {
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
            ..
        } => {
            let known = env
                .resolve_full(g, *cond)
                .konst
                .and_then(ConstValue::as_bool)
                .or_else(|| env.stamp_of(g, *cond).as_bool_constant());
            match known {
                Some(taken) => {
                    let saved = f64::from(model.cycles(InstKind::Branch))
                        - f64::from(model.cycles(InstKind::Jump));
                    acc.cycles_saved += saved;
                    acc.size_cost += i64::from(model.size(InstKind::Jump));
                    acc.opportunities.push(Opportunity {
                        inst: *cond,
                        kind: OptKind::ConditionalElim,
                        cycles_saved: saved,
                        size_delta: i64::from(model.size(InstKind::Jump))
                            - i64::from(model.size(InstKind::Branch)),
                    });
                    SegmentCont::Folded(if taken { *then_bb } else { *else_bb })
                }
                None => {
                    acc.size_cost += i64::from(model.size(InstKind::Branch));
                    SegmentCont::Stop
                }
            }
        }
        Terminator::Jump { target } => {
            acc.size_cost += i64::from(model.size(InstKind::Jump));
            SegmentCont::Jump(*target)
        }
        term => {
            acc.size_cost += i64::from(model.size(term.kind()));
            SegmentCont::Stop
        }
    }
}

/// Returns `true` when every use of `alloc` is a field access, a foldable
/// test, or an input of a φ belonging to `merge` — i.e. duplicating
/// `merge` removes the only escape.
fn escapes_only_via_merge_phis(g: &Graph, alloc: InstId, merge: BlockId) -> bool {
    for b in g.blocks() {
        for &i in g.block_insts(b) {
            let mut mentions = false;
            g.inst(i).for_each_input(|input| mentions |= input == alloc);
            if !mentions {
                continue;
            }
            let ok = match g.inst(i) {
                Inst::LoadField { object, .. } => *object == alloc,
                Inst::StoreField { object, value, .. } => *object == alloc && *value != alloc,
                Inst::InstanceOf { object, .. } => *object == alloc,
                Inst::Phi { .. } => g.block_of(i) == Some(merge),
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        let mut in_term = false;
        g.terminator(b)
            .for_each_input(|input| in_term |= input == alloc);
        if in_term {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn model() -> CostModel {
        CostModel::new()
    }

    /// Figure 3's program f: x / φ(a>b ? x : 2) — on the false path the
    /// division strength-reduces to a shift, CS = 31.
    fn figure3() -> (Graph, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("f", &[Type::Int, Type::Int, Type::Int], empty_table());
        let a = b.param(0);
        let bb = b.param(1);
        let x = b.param(2);
        // Give x a non-negative stamp via a dominating guard: x >= 0.
        let zero = b.iconst(0);
        let guard = b.cmp(CmpOp::Ge, x, zero);
        let (bg, bdeopt) = (b.new_block(), b.new_block());
        b.branch(guard, bg, bdeopt, 0.999);
        b.switch_to(bdeopt);
        b.deopt();
        b.switch_to(bg);
        let two = b.iconst(2);
        let c = b.cmp(CmpOp::Gt, a, bb);
        let (bp1, bp2, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bp1, bp2, 0.5);
        b.switch_to(bp1);
        b.jump(bm);
        b.switch_to(bp2);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, two], Type::Int);
        let div = b.div(x, phi);
        b.ret(Some(div));
        (b.finish(), bp1, bp2, bm)
    }

    #[test]
    fn figure3_division_saves_31_cycles_on_constant_path() {
        let (g, bp1, bp2, bm) = figure3();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        let r2 = results
            .iter()
            .find(|r| r.pred == bp2 && r.merge == bm)
            .expect("pair (bp2, bm) simulated");
        // φ → 2, so x / 2 → x >> 1: CS = 32 − 1 = 31 (§4.1).
        assert!(
            (r2.cycles_saved - 31.0).abs() < 1e-9,
            "expected CS 31, got {}",
            r2.cycles_saved
        );
        assert_eq!(r2.opportunities.len(), 1);
        assert_eq!(r2.opportunities[0].kind, OptKind::StrengthReduce);

        // On the x path the φ becomes x: x / x is NOT reduced by our rules
        // (x may be 0), so no benefit.
        let r1 = results
            .iter()
            .find(|r| r.pred == bp1 && r.merge == bm)
            .expect("pair (bp1, bm) simulated");
        assert!(r1.cycles_saved < 31.0);
    }

    #[test]
    fn figure1_constant_folding_detected() {
        let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        assert_eq!(results.len(), 2);
        let rf = results.iter().find(|r| r.pred == bf).unwrap();
        // 2 + 0 constant-folds: CS = cycles(Add) = 1.
        assert!(rf.cycles_saved >= 1.0);
        assert!(rf
            .opportunities
            .iter()
            .any(|o| o.kind == OptKind::ConstantFold));
        let rt = results.iter().find(|r| r.pred == bt).unwrap();
        // 2 + x does not fold.
        assert!(rt.opportunities.is_empty());
    }

    #[test]
    fn listing1_conditional_elimination_detected() {
        // if (i > 0) p = i else p = 13; if (p > 12) return 12; return i.
        let mut b = GraphBuilder::new("ce", &[Type::Int], empty_table());
        let i = b.param(0);
        let zero = b.iconst(0);
        let thirteen = b.iconst(13);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm, b12, bi) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![i, thirteen], Type::Int);
        let c2 = b.cmp(CmpOp::Gt, p, twelve);
        b.branch(c2, b12, bi, 0.5);
        b.switch_to(b12);
        b.ret(Some(twelve));
        b.switch_to(bi);
        b.ret(Some(i));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        // On the false path p = 13 > 12 is true: compare folds + branch
        // folds.
        let rf = results.iter().find(|r| r.pred == bf).unwrap();
        let kinds: Vec<OptKind> = rf.opportunities.iter().map(|o| o.kind).collect();
        // The compare of two pinned constants folds (classified as CF) and
        // the branch on it disappears (classified as CE).
        assert!(
            kinds.contains(&OptKind::ConditionalElim) && kinds.len() >= 2,
            "expected compare + branch fold, got {kinds:?}"
        );
        // On the true path i > 0 does not pin i > 12: no fold.
        let rt = results.iter().find(|r| r.pred == bt).unwrap();
        assert!(rt.opportunities.len() < rf.opportunities.len());
    }

    #[test]
    fn listing3_pea_detected() {
        // if (a == null) p = new A(0) else p = a; return p.x.
        let mut t = ClassTable::new();
        let acls = t.add_class("A");
        let fx = t.add_field(acls, "x", Type::Int);
        let mut b = GraphBuilder::new("pea", &[Type::Ref(acls)], Arc::new(t));
        let a = b.param(0);
        let null = b.null(acls);
        let isnull = b.cmp(CmpOp::Eq, a, null);
        let (balloc, bpass, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(isnull, balloc, bpass, 0.5);
        b.switch_to(balloc);
        let fresh = b.new_object(acls);
        let zero = b.iconst(0);
        b.store(fresh, fx, zero);
        b.jump(bm);
        b.switch_to(bpass);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![fresh, a], Type::Ref(acls));
        let load = b.load(p, fx);
        b.ret(Some(load));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        let ralloc = results.iter().find(|r| r.pred == balloc).unwrap();
        // Allocation elimination (8 cycles) + load from virtual (2 cycles).
        assert!(
            ralloc.cycles_saved >= 10.0,
            "expected ≥10 cycles saved, got {}",
            ralloc.cycles_saved
        );
        assert!(ralloc
            .opportunities
            .iter()
            .any(|o| o.kind == OptKind::ScalarReplace));
        // Negative size contribution from the removed allocation.
        let rpass = results.iter().find(|r| r.pred == bpass).unwrap();
        assert!(ralloc.size_cost < rpass.size_cost);
    }

    #[test]
    fn listing5_read_elimination_detected() {
        // if (i > 0) { s = a.x } else { s = 0 }; return a.x.
        let mut t = ClassTable::new();
        let acls = t.add_class("A");
        let fx = t.add_field(acls, "x", Type::Int);
        let scls = t.add_class("S");
        let fs = t.add_field(scls, "s", Type::Int);
        let mut b = GraphBuilder::new(
            "re",
            &[Type::Ref(acls), Type::Int, Type::Ref(scls)],
            Arc::new(t),
        );
        let a = b.param(0);
        let i = b.param(1);
        let s = b.param(2);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let read1 = b.load(a, fx);
        b.store(s, fs, read1);
        b.jump(bm);
        b.switch_to(bf);
        b.store(s, fs, zero);
        b.jump(bm);
        b.switch_to(bm);
        let read2 = b.load(a, fx);
        b.ret(Some(read2));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        let rt = results.iter().find(|r| r.pred == bt).unwrap();
        // Read2 becomes fully redundant on the true path.
        assert!(rt.opportunities.iter().any(|o| o.kind == OptKind::ReadElim));
        let rf = results.iter().find(|r| r.pred == bf).unwrap();
        assert!(!rf.opportunities.iter().any(|o| o.kind == OptKind::ReadElim));
    }

    /// Listing 1 extended with a payload behind the second test: on the
    /// false path p = 13, so `p > 12` folds *and* the taken successor's
    /// `p + 1` folds too — which only branch splitting can reach.
    fn split_payoff() -> (Graph, BlockId, BlockId, BlockId, BlockId) {
        let mut b = GraphBuilder::new("bs", &[Type::Int], empty_table());
        let i = b.param(0);
        let zero = b.iconst(0);
        let thirteen = b.iconst(13);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm, b12, bi) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![i, thirteen], Type::Int);
        let c2 = b.cmp(CmpOp::Gt, p, twelve);
        b.branch(c2, b12, bi, 0.5);
        b.switch_to(b12);
        let one = b.iconst(1);
        let q = b.add(p, one);
        b.ret(Some(q));
        b.switch_to(bi);
        b.ret(Some(i));
        (b.finish(), bt, bf, bm, b12)
    }

    #[test]
    fn branch_split_continues_through_a_decided_branch() {
        let (g, bt, bf, bm, b12) = split_payoff();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        // The false path decides c2: the DST threads through it into b12
        // where p + 1 folds, producing a strictly better split candidate
        // on top of the plain merge-dup prefix.
        let dup = results
            .iter()
            .find(|r| r.pred == bf && r.kind == CandidateKind::MergeDup)
            .expect("merge-dup prefix emitted");
        let split = results
            .iter()
            .find(|r| r.pred == bf && r.kind == CandidateKind::BranchSplit)
            .expect("split extension emitted");
        assert_eq!(split.path, vec![bm, b12]);
        assert_eq!(dup.path, vec![bm]);
        assert!(
            split.cycles_saved > dup.cycles_saved,
            "the hop must add savings ({} vs {})",
            split.cycles_saved,
            dup.cycles_saved
        );
        assert!(split
            .opportunities
            .iter()
            .any(|o| o.kind == OptKind::ConstantFold));
        // The true path decides nothing: no split candidate.
        assert!(!results
            .iter()
            .any(|r| r.pred == bt && r.kind == CandidateKind::BranchSplit));
    }

    #[test]
    fn trim_rule_drops_payoff_free_splits() {
        // Plain Listing 1: the taken successor only returns a constant —
        // the hop adds no cycles, so no BranchSplit variant is emitted
        // and the candidate list matches the pre-split corpus.
        let mut b = GraphBuilder::new("ce", &[Type::Int], empty_table());
        let i = b.param(0);
        let zero = b.iconst(0);
        let thirteen = b.iconst(13);
        let twelve = b.iconst(12);
        let c = b.cmp(CmpOp::Gt, i, zero);
        let (bt, bf, bm, b12, bi) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let p = b.phi(vec![i, thirteen], Type::Int);
        let c2 = b.cmp(CmpOp::Gt, p, twelve);
        b.branch(c2, b12, bi, 0.5);
        b.switch_to(b12);
        b.ret(Some(twelve));
        b.switch_to(bi);
        b.ret(Some(i));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        assert!(results
            .iter()
            .all(|r| r.kind == CandidateKind::MergeDup && r.path.len() == 1));
    }

    #[test]
    fn disabling_branch_split_suppresses_split_candidates() {
        let (g, _, _, _, _) = split_payoff();
        let outcome = simulate_paths_parallel(
            &g,
            &model(),
            &mut AnalysisCache::new(),
            1,
            &Budget::unlimited(),
            1,
            false,
        );
        assert!(!outcome.results.is_empty());
        assert!(outcome
            .results
            .iter()
            .all(|r| r.kind == CandidateKind::MergeDup));
    }

    #[test]
    fn probability_reflects_edge_frequency() {
        let mut b = GraphBuilder::new("p", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.9);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        let g = b.finish();
        let results = simulate(&g, &model(), &mut AnalysisCache::new());
        let rt = results.iter().find(|r| r.pred == bt).unwrap();
        let rf = results.iter().find(|r| r.pred == bf).unwrap();
        assert!((rt.probability - 0.9).abs() < 1e-9);
        assert!((rf.probability - 0.1).abs() < 1e-9);
    }

    #[test]
    fn no_merges_no_results() {
        let mut b = GraphBuilder::new("s", &[Type::Int], empty_table());
        let x = b.param(0);
        b.ret(Some(x));
        let g = b.finish();
        assert!(simulate(&g, &model(), &mut AnalysisCache::new()).is_empty());
    }

    #[test]
    fn budgeted_simulation_matches_unbudgeted_when_unlimited() {
        use crate::bailout::Budget;
        let (g, _, _, _) = figure3();
        let plain = simulate(&g, &model(), &mut AnalysisCache::new());
        let outcome = simulate_paths_budgeted(
            &g,
            &model(),
            &mut AnalysisCache::new(),
            1,
            &Budget::unlimited(),
        );
        assert!(outcome.stopped.is_none());
        assert!(outcome.panicked.is_empty());
        assert_eq!(outcome.results.len(), plain.len());
        for (a, b) in plain.iter().zip(&outcome.results) {
            assert_eq!((a.pred, a.merge), (b.pred, b.merge));
            assert_eq!(a.cycles_saved, b.cycles_saved);
        }
    }

    #[test]
    fn tiny_fuel_stops_the_walk_with_fuel_exhausted() {
        use crate::bailout::{BailoutReason, Budget, GuardConfig};
        let (g, _, _, _) = figure3();
        let guard = GuardConfig {
            fuel: Some(1),
            ..GuardConfig::default()
        };
        let budget = Budget::new(&guard);
        let outcome = simulate_paths_budgeted(&g, &model(), &mut AnalysisCache::new(), 1, &budget);
        assert_eq!(outcome.stopped, Some(BailoutReason::FuelExhausted));
        // Partial results are still usable (possibly empty).
        assert!(outcome.results.len() <= 4);
    }

    /// Runs the parallel tier at `threads` and asserts the outcome is
    /// bit-identical to the 1-thread baseline (modulo the timing and
    /// load fields, which are scheduling-dependent by design).
    fn assert_parallel_matches(
        g: &Graph,
        fuel: Option<u64>,
        threads: usize,
        baseline: &SimulationOutcome,
    ) {
        let guard = crate::bailout::GuardConfig {
            fuel,
            ..crate::bailout::GuardConfig::default()
        };
        let budget = Budget::new(&guard);
        let outcome = simulate_paths_parallel(
            &g.clone(),
            &model(),
            &mut AnalysisCache::new(),
            1,
            &budget,
            threads,
            BRANCH_SPLIT_DEFAULT,
        );
        assert_eq!(
            outcome.results, baseline.results,
            "results diverged at {threads} threads (fuel {fuel:?})"
        );
        assert_eq!(
            outcome.stopped, baseline.stopped,
            "stop reason diverged at {threads} threads (fuel {fuel:?})"
        );
        assert_eq!(
            outcome.panicked, baseline.panicked,
            "panic records diverged at {threads} threads (fuel {fuel:?})"
        );
    }

    #[test]
    fn parallel_matches_sequential_across_thread_counts() {
        let (g, _, _, _) = figure3();
        let baseline = simulate_paths_budgeted(
            &g,
            &model(),
            &mut AnalysisCache::new(),
            1,
            &Budget::unlimited(),
        );
        assert!(!baseline.results.is_empty());
        for threads in [2, 3, 8] {
            assert_parallel_matches(&g, None, threads, &baseline);
        }
    }

    #[test]
    fn parallel_matches_sequential_under_fuel_pressure() {
        let (g, _, _, _) = figure3();
        for fuel in [1, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            let guard = crate::bailout::GuardConfig {
                fuel: Some(fuel),
                ..crate::bailout::GuardConfig::default()
            };
            let budget = Budget::new(&guard);
            let baseline =
                simulate_paths_budgeted(&g, &model(), &mut AnalysisCache::new(), 1, &budget);
            let baseline_used = budget.fuel_used();
            for threads in [2, 3, 8] {
                let budget = Budget::new(&guard);
                let outcome = simulate_paths_parallel(
                    &g,
                    &model(),
                    &mut AnalysisCache::new(),
                    1,
                    &budget,
                    threads,
                    BRANCH_SPLIT_DEFAULT,
                );
                assert_eq!(outcome.results, baseline.results, "fuel {fuel}");
                assert_eq!(outcome.stopped, baseline.stopped, "fuel {fuel}");
                assert_eq!(outcome.panicked, baseline.panicked, "fuel {fuel}");
                // The committed fuel accounting must match too: the
                // trade-off and optimization tiers inherit this budget.
                assert_eq!(budget.fuel_used(), baseline_used, "fuel {fuel}");
            }
        }
    }

    #[test]
    fn audit_reproduces_recorded_opportunities_on_unchanged_graph() {
        // The contract the prediction audit relies on: replaying the
        // dominator chain gives back exactly the collect-time facts, so
        // on an unmutated graph the audit confirms every opportunity of
        // every candidate.
        let (g, _, _, _) = figure3();
        let mut cache = AnalysisCache::new();
        let results = simulate(&g, &model(), &mut cache);
        assert!(!results.is_empty());
        for r in &results {
            let rerun = audit_opportunities(&g, &model(), &mut cache, r)
                .expect("candidate exists on the unchanged graph");
            assert_eq!(
                rerun, r.opportunities,
                "audit diverged for ({} -> {})",
                r.pred, r.merge
            );
            assert_eq!(count_mispredictions(&r.opportunities, &rerun), 0);
        }
    }

    #[test]
    fn audit_detects_fabricated_misprediction() {
        // Fail-first for LintId::Misprediction: tamper a recorded
        // opportunity so its applicability check cannot re-fire, and the
        // audit must flag it.
        let (g, _, bp2, bm) = figure3();
        let mut cache = AnalysisCache::new();
        let results = simulate(&g, &model(), &mut cache);
        let mut r = results
            .iter()
            .find(|r| r.pred == bp2 && r.merge == bm)
            .expect("pair simulated")
            .clone();
        assert!(!r.opportunities.is_empty());
        // Point the opportunity at an instruction the DST never visits.
        r.opportunities[0].inst = InstId(0);
        r.opportunities[0].kind = OptKind::ScalarReplace;
        let rerun =
            audit_opportunities(&g, &model(), &mut cache, &r).expect("candidate still exists");
        assert!(
            count_mispredictions(&r.opportunities, &rerun) >= 1,
            "tampered opportunity must be reported as mispredicted"
        );
    }

    #[test]
    fn audit_returns_none_for_unreachable_pred() {
        let (g, _, bp2, bm) = figure3();
        let mut cache = AnalysisCache::new();
        let results = simulate(&g, &model(), &mut cache);
        let mut r = results
            .iter()
            .find(|r| r.pred == bp2 && r.merge == bm)
            .expect("pair simulated")
            .clone();
        // A detached block is unreachable; the candidate is gone.
        let mut g2 = g.clone();
        let orphan = g2.add_block();
        r.pred = orphan;
        assert!(audit_opportunities(&g2, &model(), &mut AnalysisCache::new(), &r).is_none());
    }

    #[test]
    fn size_cost_matches_copy_size_when_nothing_fires() {
        // A merge whose body can't be optimized: the size cost is the full
        // copy (body + terminator).
        let mut b = GraphBuilder::new("sz", &[Type::Int, Type::Int], empty_table());
        let x = b.param(0);
        let y = b.param(1);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, y], Type::Int);
        let s = b.add(phi, y);
        let m = b.mul(s, s);
        b.ret(Some(m));
        let g = b.finish();
        let model = model();
        let results = simulate(&g, &model, &mut AnalysisCache::new());
        for r in &results {
            // add(1) + mul(1) + return(2) = 4 size units.
            assert_eq!(r.size_cost, 4, "pred {}", r.pred);
            assert!(r.opportunities.is_empty());
        }
    }
}
