//! Deterministic fault injection for the bailout-and-recovery guardrails.
//!
//! Compiled only with the `fault-injection` feature; the production build
//! contains none of this code and no injection-point calls. A test arms a
//! seeded [`FaultPlan`] on the current thread; the next time the named
//! injection point is reached for the plan's trigger count, the plan
//! fires exactly once: a panic, a verifier-detectable graph corruption,
//! or an artificial budget exhaustion that the next cooperative
//! [`Budget`](crate::Budget) poll reports. The `faultsim` harness binary
//! sweeps every site × kind across the workload suite and asserts each
//! compilation still ends with a verified, interpreter-equivalent graph.

use crate::bailout::BailoutReason;
use dbds_ir::{Graph, Inst, InstId};
use std::cell::{Cell, RefCell};

/// What an armed [`FaultPlan`] does when its injection point fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the injection point (exercises `catch_unwind` isolation).
    Panic,
    /// Mutate the graph into a state the verifier provably rejects
    /// (exercises checkpoint + rollback). A no-op at sites without graph
    /// access.
    CorruptGraph,
    /// Report fuel exhaustion at the next budget poll.
    ExhaustFuel,
    /// Report a missed deadline at the next budget poll.
    ExhaustDeadline,
}

impl FaultKind {
    /// Every kind, in sweep order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Panic,
        FaultKind::CorruptGraph,
        FaultKind::ExhaustFuel,
        FaultKind::ExhaustDeadline,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::CorruptGraph => "corrupt-graph",
            FaultKind::ExhaustFuel => "exhaust-fuel",
            FaultKind::ExhaustDeadline => "exhaust-deadline",
        }
    }
}

/// Registered injection points, in sweep order. Each name appears as a
/// [`fault_point`] call on a reachable error path of the transform, SSA
/// repair, simulation, or optimization code.
pub const SITES: &[&str] = &[
    "transform/entry",
    "transform/copy-body",
    "transform/retarget",
    "transform/ssa-repair",
    "simulation/dst",
    "phase/optimize",
];

/// A seeded, deterministic fault: fire `kind` on the `nth` hit of `site`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injection point, one of [`SITES`].
    pub site: &'static str,
    /// What to do when it fires.
    pub kind: FaultKind,
    /// Zero-based hit count of `site` at which the fault fires (a plan
    /// fires at most once).
    pub nth: u32,
    /// The seed the plan was derived from (recorded for reproduction).
    pub seed: u64,
}

impl FaultPlan {
    /// The full deterministic sweep for `seed`: every site × kind, each
    /// twice — once on the first hit and once on a later, seed-derived
    /// hit (so faults land both at the start and in the middle of a
    /// compilation).
    pub fn sweep(seed: u64) -> Vec<FaultPlan> {
        let mut plans = Vec::new();
        for &site in SITES {
            for kind in FaultKind::ALL {
                let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
                for byte in site.bytes().chain([kind.name().len() as u8]) {
                    h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
                }
                let later = 1 + (h >> 33) as u32 % 3;
                for nth in [0, later] {
                    plans.push(FaultPlan {
                        site,
                        kind,
                        nth,
                        seed,
                    });
                }
            }
        }
        plans
    }
}

/// Arming state: the plan plus its hit counter.
struct Armed {
    plan: FaultPlan,
    hits: u32,
    fired: bool,
}

thread_local! {
    static ARMED: RefCell<Option<Armed>> = const { RefCell::new(None) };
    static PENDING_EXHAUSTION: Cell<Option<FaultKind>> = const { Cell::new(None) };
}

/// Arms `plan` on the current thread, replacing any previous plan and
/// clearing pending exhaustion state.
pub fn arm(plan: FaultPlan) {
    PENDING_EXHAUSTION.with(|p| p.set(None));
    ARMED.with(|a| {
        *a.borrow_mut() = Some(Armed {
            plan,
            hits: 0,
            fired: false,
        });
    });
}

/// Disarms the current thread's plan; returns how often its site was hit
/// and whether it fired.
pub fn disarm() -> (u32, bool) {
    PENDING_EXHAUSTION.with(|p| p.set(None));
    ARMED.with(|a| {
        a.borrow_mut()
            .take()
            .map_or((0, false), |armed| (armed.hits, armed.fired))
    })
}

/// A fault decision taken *ahead of execution* for a graph-less site.
///
/// The parallel simulation tier decides faults at candidate-collection
/// time (on the coordinating thread, in candidate order — the same order
/// the sequential tier hits the site) and ships the decision to whichever
/// worker runs the DST. That keeps `nth`-hit counting deterministic under
/// sharding: the hit counter lives in one thread-local, never raced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PlannedFault {
    /// Panic inside the DST's isolation (see [`injected_panic`]).
    Panic,
    /// The DST's first budget poll reports fuel exhaustion.
    ExhaustFuel,
    /// The DST's first budget poll reports a missed deadline.
    ExhaustDeadline,
}

/// Advances `site`'s hit counter exactly like [`fault_point`] and returns
/// the fault to enact later, if the armed plan fires at this hit.
/// `CorruptGraph` plans mark themselves fired but return `None` — these
/// sites have no graph to corrupt, matching `fault_point(site, None)`.
///
/// Used by the parallel simulation tier to take fault decisions on the
/// coordinating thread, in candidate order, before fan-out (the armed
/// plan's hit counter must never race). One observable shift from the
/// inline `fault_point` era: the decision happens at *collection* time,
/// which consumes no budget, so a plan can report `fired` even when
/// budget exhaustion stops the phase before that candidate's DST would
/// have run sequentially. `fault_props` only asserts the `!fired`
/// direction, which is unaffected.
pub(crate) fn take_site_plan(site: &'static str) -> Option<PlannedFault> {
    ARMED.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(armed) if armed.plan.site == site => {
                let n = armed.hits;
                armed.hits += 1;
                if !armed.fired && n == armed.plan.nth {
                    armed.fired = true;
                    match armed.plan.kind {
                        FaultKind::Panic => Some(PlannedFault::Panic),
                        FaultKind::ExhaustFuel => Some(PlannedFault::ExhaustFuel),
                        FaultKind::ExhaustDeadline => Some(PlannedFault::ExhaustDeadline),
                        FaultKind::CorruptGraph => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    })
}

/// Enacts a [`PlannedFault::Panic`]: panics with the exact message
/// [`fault_point`] would have used at `site`, so bailout records are
/// byte-identical whether the fault fires inline or on a worker.
pub(crate) fn injected_panic(site: &str) -> ! {
    panic!("injected fault: panic at {site}")
}

/// An injection point. Call sites pass the graph when corruption is
/// meaningful there (`None` keeps `CorruptGraph` a no-op).
///
/// # Panics
///
/// Panics when an armed [`FaultKind::Panic`] plan fires here — that is
/// the injected fault.
pub fn fault_point(site: &str, g: Option<&mut Graph>) {
    let fire = ARMED.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(armed) if armed.plan.site == site => {
                let n = armed.hits;
                armed.hits += 1;
                if !armed.fired && n == armed.plan.nth {
                    armed.fired = true;
                    Some(armed.plan.kind)
                } else {
                    None
                }
            }
            _ => None,
        }
    });
    match fire {
        None => {}
        Some(FaultKind::Panic) => panic!("injected fault: panic at {site}"),
        Some(FaultKind::CorruptGraph) => {
            if let Some(g) = g {
                corrupt(g);
            }
        }
        Some(k @ (FaultKind::ExhaustFuel | FaultKind::ExhaustDeadline)) => {
            PENDING_EXHAUSTION.with(|p| p.set(Some(k)));
        }
    }
}

/// Consumes a pending artificial exhaustion; called by
/// [`Budget::consume`](crate::Budget::consume) so injected exhaustion
/// surfaces through the same cooperative path as the real thing.
pub fn take_pending_exhaustion() -> Option<BailoutReason> {
    PENDING_EXHAUSTION.with(|p| p.take()).map(|k| match k {
        FaultKind::ExhaustFuel => BailoutReason::FuelExhausted,
        _ => BailoutReason::DeadlineExceeded,
    })
}

// ---------------------------------------------------------------------
// Store-level faults (compilation-service persistent store)
// ---------------------------------------------------------------------

/// What an armed [`StoreFaultPlan`] does to the compiled-graph store
/// when it fires. These model the disk-level failure modes the
/// on-disk backend must survive; the `servsim` sweep proves each one
/// degrades to a recompute, never to a wrong served graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFault {
    /// A write is cut short mid-payload but still renamed into place —
    /// the entry exists with a checksum that cannot match (a torn
    /// write surviving a crash).
    TornWrite,
    /// A bit of the payload flips between disk and the reader (media
    /// corruption; detected by the checksum footer).
    BitFlipRead,
    /// The write fails with "no space left on device" — a *transient*
    /// store error the service retries with backoff.
    Enospc,
    /// The writer dies after the temp file is written but before the
    /// atomic rename (kill-during-write): the entry never appears and
    /// the stray temp file is garbage for the next recovery scan.
    AbortBeforeRename,
}

impl StoreFault {
    /// Every kind, in sweep order.
    pub const ALL: [StoreFault; 4] = [
        StoreFault::TornWrite,
        StoreFault::BitFlipRead,
        StoreFault::Enospc,
        StoreFault::AbortBeforeRename,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            StoreFault::TornWrite => "torn-write",
            StoreFault::BitFlipRead => "bit-flip-read",
            StoreFault::Enospc => "enospc",
            StoreFault::AbortBeforeRename => "abort-before-rename",
        }
    }

    /// The store operation this fault strikes.
    pub fn op(self) -> StoreOp {
        match self {
            StoreFault::BitFlipRead => StoreOp::Get,
            _ => StoreOp::Put,
        }
    }
}

/// The two store operations faults can strike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Reading an entry.
    Get,
    /// Writing an entry.
    Put,
}

/// A seeded, deterministic store fault: fire `kind` on the `nth` store
/// operation of the kind's op class. Armed per thread, independently of
/// the compile-phase [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// What to do when it fires.
    pub kind: StoreFault,
    /// Zero-based hit count (of the matching [`StoreOp`]) at which the
    /// fault fires; a plan fires at most once.
    pub nth: u32,
    /// The seed the plan was derived from (recorded for reproduction).
    pub seed: u64,
    /// Restricts the fault to one shard of a sharded store: `None`
    /// strikes any shard (and counts every matching op), `Some(s)`
    /// strikes only ops routed to shard `s` (and counts only those) —
    /// the per-shard fault sites the `servsim` shard sweep exercises.
    pub shard: Option<u32>,
}

impl StoreFaultPlan {
    /// The full deterministic sweep for `seed`: every kind, firing both
    /// on the first matching operation and on a later, seed-derived one
    /// (so faults land on cold and warm store traffic). Plans are
    /// shard-agnostic; see [`StoreFaultPlan::sweep_sharded`] for the
    /// per-shard grid.
    pub fn sweep(seed: u64) -> Vec<StoreFaultPlan> {
        let mut plans = Vec::new();
        for kind in StoreFault::ALL {
            let mut h = seed ^ 0x517c_c1b7_2722_0a95;
            for byte in kind.name().bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
            let later = 1 + (h >> 33) as u32 % 5;
            for nth in [0, later] {
                plans.push(StoreFaultPlan {
                    kind,
                    nth,
                    seed,
                    shard: None,
                });
            }
        }
        plans
    }

    /// The per-shard sweep for `seed`: every kind targeted at each
    /// shard in `shards`, firing on that shard's first matching
    /// operation. Hit counting is per `(op class, shard)`, so a fault
    /// aimed at shard 2 fires on shard 2's first put however much
    /// traffic the other shards see first.
    pub fn sweep_sharded(seed: u64, shards: &[u32]) -> Vec<StoreFaultPlan> {
        let mut plans = Vec::new();
        for kind in StoreFault::ALL {
            for &shard in shards {
                plans.push(StoreFaultPlan {
                    kind,
                    nth: 0,
                    seed,
                    shard: Some(shard),
                });
            }
        }
        plans
    }
}

thread_local! {
    static ARMED_STORE: RefCell<Option<ArmedStore>> = const { RefCell::new(None) };
}

/// Arming state of a store fault: the plan plus its hit counter.
struct ArmedStore {
    plan: StoreFaultPlan,
    hits: u32,
    fired: bool,
}

/// Arms `plan` against the store operations of the current thread,
/// replacing any previous store plan.
pub fn arm_store(plan: StoreFaultPlan) {
    ARMED_STORE.with(|a| {
        *a.borrow_mut() = Some(ArmedStore {
            plan,
            hits: 0,
            fired: false,
        });
    });
}

/// Disarms the current thread's store plan; returns how often its op
/// class was hit and whether the plan fired.
pub fn disarm_store() -> (u32, bool) {
    ARMED_STORE.with(|a| {
        a.borrow_mut()
            .take()
            .map_or((0, false), |armed| (armed.hits, armed.fired))
    })
}

/// A store injection point: the on-disk backend calls this on every
/// `op` with the shard it serves (unsharded backends pass 0) and enacts
/// the returned fault. Counting is per op class — and, when the plan
/// targets a shard, only ops on that shard count — so a `nth = 1` read
/// fault fires on the second matching `get`, however many `put`s (or
/// other shards' gets) happen in between.
pub fn take_store_fault(op: StoreOp, shard: u32) -> Option<StoreFault> {
    ARMED_STORE.with(|a| {
        let mut a = a.borrow_mut();
        match a.as_mut() {
            Some(armed)
                if armed.plan.kind.op() == op && armed.plan.shard.is_none_or(|s| s == shard) =>
            {
                let n = armed.hits;
                armed.hits += 1;
                if !armed.fired && n == armed.plan.nth {
                    armed.fired = true;
                    Some(armed.plan.kind)
                } else {
                    None
                }
            }
            _ => None,
        }
    })
}

/// Mutates `g` into a state `dbds_ir::verify` provably rejects, without
/// making it unwalkable (downstream code may still traverse it before
/// the next checkpoint).
fn corrupt(g: &mut Graph) {
    // Preferred: widen an existing φ past its block's predecessor count
    // (arity mismatch).
    let first_phi: Option<InstId> = g.blocks().flat_map(|b| g.phis(b).to_vec()).next();
    if let Some(phi) = first_phi {
        if let Inst::Phi { inputs } = g.inst_mut(phi) {
            if let Some(&dup) = inputs.first() {
                inputs.push(dup);
                return;
            }
        }
    }
    // Fallback: detach an instruction that still has uses (dangling-use
    // violation). Scan for any instruction used by another one.
    for b in g.reachable_blocks() {
        for &i in g.block_insts(b) {
            let mut used = false;
            for b2 in g.reachable_blocks() {
                for &u in g.block_insts(b2) {
                    if u != i {
                        g.inst(u).for_each_input(|input| used |= input == i);
                    }
                }
                g.terminator(b2).for_each_input(|input| used |= input == i);
            }
            if used {
                g.remove_inst(i);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{verify, ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("fi", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        b.finish()
    }

    #[test]
    fn sweep_is_deterministic_and_covers_all_sites() {
        let a = FaultPlan::sweep(42);
        let b = FaultPlan::sweep(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), SITES.len() * FaultKind::ALL.len() * 2);
        for &site in SITES {
            assert!(a.iter().any(|p| p.site == site));
        }
        assert_ne!(FaultPlan::sweep(1), FaultPlan::sweep(2));
    }

    #[test]
    fn plan_fires_exactly_once_at_the_nth_hit() {
        arm(FaultPlan {
            site: "transform/entry",
            kind: FaultKind::ExhaustFuel,
            nth: 1,
            seed: 0,
        });
        fault_point("transform/entry", None);
        assert!(take_pending_exhaustion().is_none(), "hit 0 must not fire");
        fault_point("simulation/dst", None); // other sites don't count
        fault_point("transform/entry", None);
        assert_eq!(
            take_pending_exhaustion(),
            Some(BailoutReason::FuelExhausted)
        );
        fault_point("transform/entry", None);
        assert!(take_pending_exhaustion().is_none(), "fires at most once");
        let (hits, fired) = disarm();
        assert_eq!(hits, 3);
        assert!(fired);
    }

    #[test]
    fn corruption_is_verifier_detectable() {
        let mut g = diamond();
        verify(&g).unwrap();
        corrupt(&mut g);
        assert!(verify(&g).is_err(), "corruption must be detectable:\n{g}");
    }

    #[test]
    fn corruption_fallback_without_phis_is_detectable() {
        let mut b = GraphBuilder::new("nophi", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let one = b.iconst(1);
        let s = b.add(x, one);
        b.ret(Some(s));
        let mut g = b.finish();
        verify(&g).unwrap();
        corrupt(&mut g);
        assert!(verify(&g).is_err(), "fallback corruption detectable:\n{g}");
    }

    #[test]
    fn disarmed_points_are_free_of_effects() {
        disarm();
        fault_point("transform/entry", None);
        assert!(take_pending_exhaustion().is_none());
    }

    #[test]
    fn store_sweep_is_deterministic_and_covers_all_kinds() {
        let a = StoreFaultPlan::sweep(7);
        assert_eq!(a, StoreFaultPlan::sweep(7));
        assert_eq!(a.len(), StoreFault::ALL.len() * 2);
        for kind in StoreFault::ALL {
            assert!(a.iter().any(|p| p.kind == kind && p.nth == 0));
            assert!(a.iter().any(|p| p.kind == kind && p.nth > 0));
        }
    }

    #[test]
    fn store_fault_counts_per_op_class_and_fires_once() {
        arm_store(StoreFaultPlan {
            kind: StoreFault::BitFlipRead,
            nth: 1,
            seed: 0,
            shard: None,
        });
        assert_eq!(
            take_store_fault(StoreOp::Get, 0),
            None,
            "hit 0 must not fire"
        );
        // Puts do not advance a read fault's counter.
        assert_eq!(take_store_fault(StoreOp::Put, 0), None);
        assert_eq!(
            take_store_fault(StoreOp::Get, 0),
            Some(StoreFault::BitFlipRead)
        );
        assert_eq!(
            take_store_fault(StoreOp::Get, 0),
            None,
            "fires at most once"
        );
        let (hits, fired) = disarm_store();
        assert_eq!(hits, 3);
        assert!(fired);
        // Disarmed: free of effects.
        assert_eq!(take_store_fault(StoreOp::Put, 0), None);
    }

    #[test]
    fn shard_targeted_fault_only_counts_its_shard() {
        arm_store(StoreFaultPlan {
            kind: StoreFault::Enospc,
            nth: 0,
            seed: 0,
            shard: Some(2),
        });
        // Other shards' puts neither fire nor advance the counter.
        assert_eq!(take_store_fault(StoreOp::Put, 0), None);
        assert_eq!(take_store_fault(StoreOp::Put, 1), None);
        assert_eq!(take_store_fault(StoreOp::Put, 2), Some(StoreFault::Enospc));
        let (hits, fired) = disarm_store();
        assert_eq!(hits, 1, "only shard 2's put counts");
        assert!(fired);
    }

    #[test]
    fn sharded_sweep_targets_every_kind_on_every_shard() {
        let shards = [0, 2, 3];
        let plans = StoreFaultPlan::sweep_sharded(9, &shards);
        assert_eq!(plans, StoreFaultPlan::sweep_sharded(9, &shards));
        assert_eq!(plans.len(), StoreFault::ALL.len() * shards.len());
        for kind in StoreFault::ALL {
            for &s in &shards {
                assert!(plans
                    .iter()
                    .any(|p| p.kind == kind && p.shard == Some(s) && p.nth == 0));
            }
        }
    }
}
