//! Cost/trade-off sanity lints over simulation results.
//!
//! The trade-off tier's total order (`probability × cycles_saved` under
//! `total_cmp`) and its saturating size accounting assume the simulation
//! tier hands it finite estimates and that accepting candidates never
//! drives the accrued code size negative. These lints turn those
//! assumptions into checked invariants: [`lint_simulation`] audits a
//! batch of [`SimulationResult`]s the way `dbds_ir::lint` audits a
//! graph, emitting [`LintId::NonFiniteBenefit`] and
//! [`LintId::NegativeAccruedSize`] diagnostics for the harness's
//! `figures --lint` sweep and the CI gate.

use crate::simulation::SimulationResult;
use dbds_ir::lint::{Diagnostic, LintId};

/// Audits a batch of simulation results for cost-model sanity.
///
/// Emits:
///
/// - [`LintId::NonFiniteBenefit`] for any result whose `probability` is
///   non-finite or negative, or whose `cycles_saved` (total or
///   per-opportunity) is non-finite — either would poison the trade-off
///   tier's ranking order.
/// - [`LintId::NegativeAccruedSize`] when accepting the results in
///   order would drive the accrued code size (starting from
///   `current_size`) below zero — the saturating arithmetic in the
///   trade-off tier would silently clamp exactly here.
pub fn lint_simulation(results: &[SimulationResult], current_size: u64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in results {
        if !r.probability.is_finite() || r.probability < 0.0 {
            out.push(Diagnostic::new(
                LintId::NonFiniteBenefit,
                Some(r.merge),
                None,
                format!(
                    "candidate ({} -> {}) has unusable probability {}",
                    r.pred, r.merge, r.probability
                ),
            ));
        }
        if !r.cycles_saved.is_finite() {
            out.push(Diagnostic::new(
                LintId::NonFiniteBenefit,
                Some(r.merge),
                None,
                format!(
                    "candidate ({} -> {}) has non-finite cycles_saved {}",
                    r.pred, r.merge, r.cycles_saved
                ),
            ));
        }
        for o in &r.opportunities {
            if !o.cycles_saved.is_finite() {
                out.push(Diagnostic::new(
                    LintId::NonFiniteBenefit,
                    Some(r.merge),
                    Some(o.inst),
                    format!(
                        "opportunity {:?} at {} has non-finite cycles_saved {}",
                        o.kind, o.inst, o.cycles_saved
                    ),
                ));
            }
        }
    }
    // Accrued-size replay: apply every candidate's size delta in order
    // on an i128 (no saturation) and flag the first dip below zero.
    let mut accrued = i128::from(current_size);
    for r in results {
        accrued += i128::from(r.size_cost);
        if accrued < 0 {
            out.push(Diagnostic::new(
                LintId::NegativeAccruedSize,
                Some(r.merge),
                None,
                format!(
                    "accepting ({} -> {}) drives accrued size to {accrued}",
                    r.pred, r.merge
                ),
            ));
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationResult;
    use dbds_ir::BlockId;

    fn result(probability: f64, cycles_saved: f64, size_cost: i64) -> SimulationResult {
        SimulationResult {
            pred: BlockId(1),
            merge: BlockId(2),
            path: vec![BlockId(2)],
            probability,
            cycles_saved,
            size_cost,
            opportunities: Vec::new(),
        }
    }

    #[test]
    fn clean_results_produce_no_diagnostics() {
        let results = vec![result(0.5, 31.0, 4), result(0.5, 0.0, 2)];
        assert!(lint_simulation(&results, 100).is_empty());
    }

    #[test]
    fn non_finite_probability_is_flagged() {
        // Fail-first for LintId::NonFiniteBenefit.
        for bad in [f64::NAN, f64::INFINITY, -0.25] {
            let results = vec![result(bad, 1.0, 0)];
            let out = lint_simulation(&results, 100);
            assert!(
                out.iter().any(|d| d.lint == LintId::NonFiniteBenefit),
                "probability {bad} must be flagged"
            );
        }
    }

    #[test]
    fn non_finite_cycles_saved_is_flagged() {
        let results = vec![result(0.5, f64::NAN, 0)];
        let out = lint_simulation(&results, 100);
        assert!(out.iter().any(|d| d.lint == LintId::NonFiniteBenefit));
    }

    #[test]
    fn negative_accrued_size_is_flagged() {
        // Fail-first for LintId::NegativeAccruedSize: a bogus size delta
        // larger than the whole unit drives the running total negative.
        let results = vec![result(0.5, 1.0, -500)];
        let out = lint_simulation(&results, 100);
        assert!(out.iter().any(|d| d.lint == LintId::NegativeAccruedSize));
        // With enough headroom the same delta is fine.
        assert!(lint_simulation(&results, 1000).is_empty());
    }
}
