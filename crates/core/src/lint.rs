//! Cost/trade-off sanity lints over simulation results.
//!
//! The trade-off tier's total order (`probability × cycles_saved` under
//! `total_cmp`) and its saturating size accounting assume the simulation
//! tier hands it finite estimates and that accepting candidates never
//! drives the accrued code size negative. These lints turn those
//! assumptions into checked invariants: [`lint_simulation`] audits a
//! batch of [`SimulationResult`]s the way `dbds_ir::lint` audits a
//! graph, emitting [`LintId::NonFiniteBenefit`] and
//! [`LintId::NegativeAccruedSize`] diagnostics for the harness's
//! `figures --lint` sweep and the CI gate.
//!
//! [`lint_frontier`] is the post-duplication structural check
//! ([`LintId::FrontierViolation`]): the fresh copy's and its source
//! merge's dominance frontiers must match a definition-based
//! recomputation over the forward edges, and — whenever neither block
//! dominates the other — must be equal to each other. The phase driver
//! runs it after every applied duplication and rolls the transaction
//! back on a violation.

use crate::simulation::SimulationResult;
use dbds_analysis::{DomFrontiers, DomTree, PostDomTree};
use dbds_ir::lint::{Diagnostic, LintId};
use dbds_ir::{BlockId, Graph};

/// Audits a batch of simulation results for cost-model sanity.
///
/// Emits:
///
/// - [`LintId::NonFiniteBenefit`] for any result whose `probability` is
///   non-finite or negative, or whose `cycles_saved` (total or
///   per-opportunity) is non-finite — either would poison the trade-off
///   tier's ranking order.
/// - [`LintId::NegativeAccruedSize`] when accepting the results in
///   order would drive the accrued code size (starting from
///   `current_size`) below zero — the saturating arithmetic in the
///   trade-off tier would silently clamp exactly here.
pub fn lint_simulation(results: &[SimulationResult], current_size: u64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in results {
        if !r.probability.is_finite() || r.probability < 0.0 {
            out.push(Diagnostic::new(
                LintId::NonFiniteBenefit,
                Some(r.merge),
                None,
                format!(
                    "candidate ({} -> {}) has unusable probability {}",
                    r.pred, r.merge, r.probability
                ),
            ));
        }
        if !r.cycles_saved.is_finite() {
            out.push(Diagnostic::new(
                LintId::NonFiniteBenefit,
                Some(r.merge),
                None,
                format!(
                    "candidate ({} -> {}) has non-finite cycles_saved {}",
                    r.pred, r.merge, r.cycles_saved
                ),
            ));
        }
        for o in &r.opportunities {
            if !o.cycles_saved.is_finite() {
                out.push(Diagnostic::new(
                    LintId::NonFiniteBenefit,
                    Some(r.merge),
                    Some(o.inst),
                    format!(
                        "opportunity {:?} at {} has non-finite cycles_saved {}",
                        o.kind, o.inst, o.cycles_saved
                    ),
                ));
            }
        }
    }
    // Accrued-size replay: apply every candidate's size delta in order
    // on an i128 (no saturation) and flag the first dip below zero.
    let mut accrued = i128::from(current_size);
    for r in results {
        accrued += i128::from(r.size_cost);
        if accrued < 0 {
            out.push(Diagnostic::new(
                LintId::NegativeAccruedSize,
                Some(r.merge),
                None,
                format!(
                    "accepting ({} -> {}) drives accrued size to {accrued}",
                    r.pred, r.merge
                ),
            ));
            break;
        }
    }
    out
}

/// The dominance frontier of `b` recomputed straight from the
/// definition — `DF(b) = { y : ∃ q ∈ preds(y), b dom q, b !sdom y }` —
/// but discovered by walking the *forward* edges of every block `b`
/// dominates. The Cytron-style [`DomFrontiers`] construction walks idom
/// chains from each join's *predecessor* list, so comparing the two
/// cross-checks the pred/succ mirrors the CFG repair must keep in sync.
/// Like the join-driven construction, only genuine joins (two or more
/// predecessors) enter a frontier.
fn definition_frontier(g: &Graph, dt: &DomTree, b: BlockId) -> Vec<BlockId> {
    let mut out = Vec::new();
    for i in 0..g.block_count() {
        let q = BlockId(i as u32);
        if !dt.is_reachable(q) || !dt.dominates(b, q) {
            continue;
        }
        for y in g.succs(q) {
            if g.preds(y).len() >= 2 && !dt.strictly_dominates(b, y) {
                out.push(y);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The post-duplication dominance-frontier invariant
/// ([`LintId::FrontierViolation`]), in two layers:
///
/// 1. **Consistency**: for both the fresh copy and its source merge,
///    the [`DomFrontiers`] result (built from predecessor lists) must
///    match [`definition_frontier`] (built from successor lists). A
///    divergence means the CFG/SSA repair left the edge mirrors or the
///    dominator inputs inconsistent.
/// 2. **Equality**: immediately after a tail duplication the copy's
///    terminator is a verbatim copy of the merge's, so when *neither
///    block dominates the other* each dominates only itself and both
///    frontiers are exactly the shared successor set — they must be
///    equal. When one dominates the other (duplicating a loop header
///    into an in-loop predecessor re-roots the loop's dominance), the
///    frontiers legitimately diverge and only layer 1 applies.
///
/// Returns `None` when the invariant holds, and also when `merge` has
/// become unreachable (it then has no frontier to compare; a real
/// duplication never strands a reachable merge, so that case only
/// arises on hand-mutated graphs).
pub fn lint_frontier(g: &Graph, copy: BlockId, merge: BlockId) -> Option<Diagnostic> {
    let dt = DomTree::compute(g);
    let pd = PostDomTree::compute(g);
    let df = DomFrontiers::compute(g, &dt, &pd);
    // An unreachable merge has an empty frontier by construction, not
    // by defect.
    if !dt.is_reachable(merge) {
        return None;
    }
    for b in [copy, merge] {
        let reference = definition_frontier(g, &dt, b);
        if reference != df.df(b) {
            return Some(Diagnostic::new(
                LintId::FrontierViolation,
                Some(copy),
                None,
                format!(
                    "frontier-violation: {b} has dominance frontier {:?} but the edge mirrors say {:?}",
                    df.df(b),
                    reference
                ),
            ));
        }
    }
    if !dt.dominates(copy, merge) && !dt.dominates(merge, copy) && df.df(copy) != df.df(merge) {
        return Some(Diagnostic::new(
            LintId::FrontierViolation,
            Some(copy),
            None,
            format!(
                "frontier-violation: copy {copy} of {merge} has dominance frontier {:?} but the merge has {:?}",
                df.df(copy),
                df.df(merge)
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{CandidateKind, SimulationResult};
    use dbds_ir::BlockId;

    fn result(probability: f64, cycles_saved: f64, size_cost: i64) -> SimulationResult {
        SimulationResult {
            pred: BlockId(1),
            merge: BlockId(2),
            path: vec![BlockId(2)],
            probability,
            cycles_saved,
            size_cost,
            opportunities: Vec::new(),
            kind: CandidateKind::MergeDup,
        }
    }

    #[test]
    fn clean_results_produce_no_diagnostics() {
        let results = vec![result(0.5, 31.0, 4), result(0.5, 0.0, 2)];
        assert!(lint_simulation(&results, 100).is_empty());
    }

    #[test]
    fn non_finite_probability_is_flagged() {
        // Fail-first for LintId::NonFiniteBenefit.
        for bad in [f64::NAN, f64::INFINITY, -0.25] {
            let results = vec![result(bad, 1.0, 0)];
            let out = lint_simulation(&results, 100);
            assert!(
                out.iter().any(|d| d.lint == LintId::NonFiniteBenefit),
                "probability {bad} must be flagged"
            );
        }
    }

    #[test]
    fn non_finite_cycles_saved_is_flagged() {
        let results = vec![result(0.5, f64::NAN, 0)];
        let out = lint_simulation(&results, 100);
        assert!(out.iter().any(|d| d.lint == LintId::NonFiniteBenefit));
    }

    fn diamond() -> (Graph, BlockId, BlockId, BlockId) {
        use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
        let mut b = GraphBuilder::new("d", &[Type::Int], std::sync::Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        let two = b.iconst(2);
        let sum = b.add(two, phi);
        b.ret(Some(sum));
        (b.finish(), bt, bf, bm)
    }

    #[test]
    fn frontier_violation_fires_on_mismatched_pair() {
        // Fail-first for LintId::FrontierViolation: bt (frontier {bm})
        // and bm (frontier {}) are not a copy/merge pair, so the check
        // must flag them.
        let (g, bt, _bf, bm) = diamond();
        let d = lint_frontier(&g, bt, bm).expect("mismatched frontiers must be flagged");
        assert_eq!(d.lint, LintId::FrontierViolation);
        assert!(d.message.starts_with("frontier-violation"), "{}", d.message);
    }

    #[test]
    fn genuine_duplication_satisfies_the_frontier_invariant() {
        let (mut g, bt, _bf, bm) = diamond();
        let dup = crate::transform::duplicate(&mut g, bt, bm);
        assert!(lint_frontier(&g, dup.copy, dup.merge).is_none());
    }

    #[test]
    fn loop_header_duplication_is_exempt_from_the_equality_layer() {
        // Duplicating a loop header into its back-edge predecessor
        // re-roots the loop's dominance: the copy and the old header end
        // up with genuinely different frontiers, and only the
        // consistency layer applies.
        use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
        let mut b = GraphBuilder::new("l", &[Type::Int], std::sync::Arc::new(ClassTable::new()));
        let n = b.param(0);
        let zero = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        let dup = crate::transform::duplicate(&mut g, body, header);
        assert!(lint_frontier(&g, dup.copy, dup.merge).is_none());
    }

    #[test]
    fn unreachable_merge_is_exempt() {
        // Orphan block with a diverging frontier: reachability exempts it.
        let (mut g, bt, _bf, _bm) = diamond();
        let orphan = g.add_block();
        g.set_terminator(orphan, dbds_ir::Terminator::Return { value: None });
        assert!(lint_frontier(&g, bt, orphan).is_none());
    }

    #[test]
    fn negative_accrued_size_is_flagged() {
        // Fail-first for LintId::NegativeAccruedSize: a bogus size delta
        // larger than the whole unit drives the running total negative.
        let results = vec![result(0.5, 1.0, -500)];
        let out = lint_simulation(&results, 100);
        assert!(out.iter().any(|d| d.lint == LintId::NegativeAccruedSize));
        // With enough headroom the same delta is fine.
        assert!(lint_simulation(&results, 1000).is_empty());
    }
}
