//! Property tests for the trade-off tier's parallel pricing: for *any*
//! candidate list, selection mode, size budget and visited set, pricing
//! `should_duplicate` on the worker pool and replaying the greedy accept
//! loop over the pre-priced candidates must produce acceptance order,
//! budget accrual and rejection records bit-identical to the sequential
//! `select_with_rejections` — including on the full 45-workload corpus.

use dbds_analysis::AnalysisCache;
use dbds_core::{
    select_with_rejections, select_with_rejections_parallel, simulate, CandidateKind,
    SelectionMode, SimulationResult, TradeoffConfig,
};
use dbds_costmodel::CostModel;
use dbds_ir::BlockId;
use dbds_workloads::all_workloads;
use proptest::prelude::*;
use std::collections::HashSet;

const THREADS: [usize; 3] = [2, 3, 8];
const MODES: [SelectionMode; 2] = [SelectionMode::CostBenefit, SelectionMode::Dupalot];

/// The comparable digest of a selection: accepted candidates in
/// application order (by identity pair) plus the rejection records.
type Digest = (Vec<(BlockId, BlockId)>, Vec<(BlockId, BlockId)>);

fn digest(
    results: &[SimulationResult],
    cfg: &TradeoffConfig,
    mode: SelectionMode,
    initial: u64,
    current: u64,
    visited: &HashSet<BlockId>,
    threads: usize,
) -> Digest {
    let sel = if threads == 0 {
        select_with_rejections(results, cfg, mode, initial, current, visited)
    } else {
        let priced =
            select_with_rejections_parallel(results, cfg, mode, initial, current, visited, threads);
        priced.selection
    };
    (
        sel.accepted.iter().map(|r| (r.pred, r.merge)).collect(),
        sel.size_rejected,
    )
}

fn candidate(raw: &(u32, u32, i64, u32, i64)) -> SimulationResult {
    let &(pred, merge, benefit_tenths, prob_pct, size_cost) = raw;
    SimulationResult {
        pred: BlockId(pred),
        merge: BlockId(merge),
        path: vec![BlockId(merge)],
        probability: prob_pct as f64 / 100.0,
        cycles_saved: benefit_tenths as f64 / 10.0,
        size_cost,
        opportunities: Vec::new(),
        kind: CandidateKind::MergeDup,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random candidate lists — including zero/negative benefits,
    /// zero probabilities, shrinking (negative) size costs, duplicate
    /// merges and tight budgets — price identically at every pool width.
    #[test]
    fn parallel_pricing_matches_sequential(
        raw in proptest::collection::vec(
            (0u32..24, 0u32..24, -40i64..400, 0u32..120, -60i64..200),
            0..48,
        ),
        initial in 50u64..400,
        headroom in 0u64..200,
        visited_mask in 0u32..256,
    ) {
        let results: Vec<SimulationResult> = raw.iter().map(candidate).collect();
        // A visited set carved out of the merge-id space, so freshness
        // actually flips for some candidates.
        let visited: HashSet<BlockId> = (0..24)
            .filter(|m| visited_mask & (1 << (m % 8)) != 0 && m % 3 == 0)
            .map(BlockId)
            .collect();
        let current = initial + headroom;
        let cfg = TradeoffConfig::default();
        for mode in MODES {
            let seq = digest(&results, &cfg, mode, initial, current, &visited, 0);
            for threads in THREADS {
                let par = digest(&results, &cfg, mode, initial, current, &visited, threads);
                prop_assert_eq!(
                    &seq, &par,
                    "selection diverged at {} threads ({:?})", threads, mode
                );
            }
            // Steal-heavy flavor: the same pricing executed on a 2-D
            // scheduler worker publishes its fan-out to the shared pool,
            // where two reserved sim workers steal chunks of it.
            let (stolen, _, _) = dbds_core::par::run_units(1, 2, &[()], |_, ()| {
                digest(&results, &cfg, mode, initial, current, &visited, 1)
            });
            prop_assert_eq!(
                &seq, &stolen[0],
                "selection diverged under scheduler stealing ({:?})", mode
            );
        }
    }
}

/// The acceptance-criteria check: on every workload of the full corpus,
/// the parallel pricing path selects and rejects bit-identically to the
/// sequential tier, for both selection modes, with and without a
/// visited set.
#[test]
fn parallel_pricing_matches_sequential_on_the_full_corpus() {
    let model = CostModel::new();
    let cfg = TradeoffConfig::default();
    let mut priced_candidates = 0usize;
    for w in all_workloads() {
        let mut cache = AnalysisCache::new();
        let results = simulate(&w.graph, &model, &mut cache);
        priced_candidates += results.len();
        let initial = model.graph_size(&w.graph);
        let fresh = HashSet::new();
        // Second round flavor: the first round's accepted merges are
        // already visited.
        let visited: HashSet<BlockId> = select_with_rejections(
            &results,
            &cfg,
            SelectionMode::CostBenefit,
            initial,
            initial,
            &fresh,
        )
        .accepted
        .iter()
        .map(|r| r.merge)
        .collect();
        for mode in MODES {
            for vis in [&fresh, &visited] {
                let seq = digest(&results, &cfg, mode, initial, initial, vis, 0);
                for threads in THREADS {
                    let par = digest(&results, &cfg, mode, initial, initial, vis, threads);
                    assert_eq!(
                        seq, par,
                        "{}: selection diverged at {threads} threads ({mode:?})",
                        w.name
                    );
                }
            }
        }
    }
    assert!(
        priced_candidates > 100,
        "corpus produced only {priced_candidates} candidates — not a meaningful sweep"
    );
}

/// Whole-corpus pricing dispatched *through the 2-D scheduler*: every
/// workload's pricing fan-out is published to the shared pool and
/// partially stolen by sim workers (and by unit workers whose cursor
/// ran dry), and must still match the sequential tier bit-for-bit at
/// several (unit, sim) splits.
#[test]
fn pricing_under_scheduler_stealing_matches_sequential_on_the_corpus() {
    let model = CostModel::new();
    let cfg = TradeoffConfig::default();
    let fresh = HashSet::new();
    let sims: Vec<(Vec<SimulationResult>, u64)> = all_workloads()
        .iter()
        .map(|w| {
            let mut cache = AnalysisCache::new();
            let results = simulate(&w.graph, &model, &mut cache);
            let initial = model.graph_size(&w.graph);
            (results, initial)
        })
        .collect();
    let expected: Vec<Digest> = sims
        .iter()
        .map(|(r, init)| digest(r, &cfg, SelectionMode::CostBenefit, *init, *init, &fresh, 0))
        .collect();
    for (unit_workers, sim_workers) in [(1, 2), (2, 2), (4, 0)] {
        let (got, _, _) =
            dbds_core::par::run_units(unit_workers, sim_workers, &sims, |_, (r, init)| {
                digest(r, &cfg, SelectionMode::CostBenefit, *init, *init, &fresh, 1)
            });
        assert_eq!(
            got, expected,
            "pricing diverged on the scheduler at {unit_workers}x{sim_workers}"
        );
    }
}
