//! Acceptance tests for the branch-splitting workload corpus: each of
//! the dedicated split benchmarks (`SPLIT_BENCHMARKS`) is built from
//! shapes the trade-off tier rejects under plain merge duplication —
//! the merge's payload outweighs the 2-cycle `cmp + branch` fold at
//! the cold path's probability — so only the branch-splitting
//! continuation, which also claims the constant cascade behind the
//! decided branch, can crack them. The combined phase must apply
//! splits and strictly improve the static estimate; the merge-only
//! ablation must leave the units untouched on that axis; and both
//! configurations must preserve interpreter semantics.

use dbds_analysis::AnalysisCache;
use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_ir::execute;
use dbds_workloads::{Suite, SPLIT_BENCHMARKS};

#[test]
fn split_benchmarks_are_cracked_only_by_branch_splitting() {
    let model = CostModel::new();
    let workloads = Suite::Micro.workloads();
    for name in SPLIT_BENCHMARKS {
        let w = workloads
            .iter()
            .find(|w| w.name == name)
            .expect("split benchmark exists in the Micro suite");
        let reference: Vec<_> = w
            .inputs
            .iter()
            .map(|i| execute(&w.graph, i).outcome)
            .collect();
        let run = |enable: bool| {
            let cfg = DbdsConfig {
                enable_branch_splitting: enable,
                ..DbdsConfig::default()
            };
            let mut g = w.graph.clone();
            let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
            let outcomes: Vec<_> = w.inputs.iter().map(|i| execute(&g, i).outcome).collect();
            assert_eq!(
                outcomes, reference,
                "{name}: semantics changed (split={enable})"
            );
            let cycles = model.weighted_cycles(&g, &mut AnalysisCache::new());
            (stats, cycles)
        };
        let (combined, combined_cycles) = run(true);
        let (merge_only, merge_only_cycles) = run(false);
        assert!(
            combined.split_applied >= 1,
            "{name}: combined phase applied no branch splits; stats {combined:?}"
        );
        assert_eq!(combined.frontier_violations, 0, "{name}");
        assert_eq!(merge_only.split_candidates, 0, "{name}");
        assert_eq!(merge_only.split_applied, 0, "{name}");
        assert!(
            combined_cycles < merge_only_cycles,
            "{name}: combined ({combined_cycles}) must strictly beat merge-only \
             ({merge_only_cycles}) — the shapes are sized so merge duplication alone is rejected"
        );
    }
}
