//! Property tests for the bailout-and-recovery guardrails: under *any*
//! seeded fault plan, a DBDS compilation must end with a verified graph
//! whose interpreter semantics match the no-duplication baseline.
//!
//! Compiled only with the `fault-injection` feature:
//!
//! ```text
//! cargo test -p dbds-core --features fault-injection --test fault_props
//! ```

#![cfg(feature = "fault-injection")]

use dbds_core::faultinject::{arm, disarm, FaultPlan};
use dbds_core::{compile, BailoutReason, DbdsConfig, GuardConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_ir::{execute, verify, ClassTable, CmpOp, Graph, GraphBuilder, Type, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn empty_table() -> Arc<ClassTable> {
    Arc::new(ClassTable::new())
}

/// Figure 1: the add constant-folds on the false path.
fn figure1() -> Graph {
    let mut b = GraphBuilder::new("foo", &[Type::Int], empty_table());
    let x = b.param(0);
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, x, zero);
    let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let phi = b.phi(vec![x, zero], Type::Int);
    let two = b.iconst(2);
    let sum = b.add(two, phi);
    b.ret(Some(sum));
    b.finish()
}

/// Listing 1: duplication enables conditional elimination at a second
/// branch.
fn listing1() -> Graph {
    let mut b = GraphBuilder::new("l1", &[Type::Int], empty_table());
    let i = b.param(0);
    let zero = b.iconst(0);
    let thirteen = b.iconst(13);
    let twelve = b.iconst(12);
    let c = b.cmp(CmpOp::Gt, i, zero);
    let (bt, bf, bm, b12, bi) = (
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
    );
    b.branch(c, bt, bf, 0.5);
    b.switch_to(bt);
    b.jump(bm);
    b.switch_to(bf);
    b.jump(bm);
    b.switch_to(bm);
    let p = b.phi(vec![i, thirteen], Type::Int);
    let c2 = b.cmp(CmpOp::Gt, p, twelve);
    b.branch(c2, b12, bi, 0.5);
    b.switch_to(b12);
    b.ret(Some(twelve));
    b.switch_to(bi);
    b.ret(Some(i));
    b.finish()
}

/// Two stacked diamonds sharing values: plenty of merges and candidates.
fn double_diamond() -> Graph {
    let mut b = GraphBuilder::new("dd", &[Type::Int, Type::Int], empty_table());
    let x = b.param(0);
    let y = b.param(1);
    let zero = b.iconst(0);
    let one = b.iconst(1);
    let c1 = b.cmp(CmpOp::Gt, x, zero);
    let (t1, f1, m1) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c1, t1, f1, 0.7);
    b.switch_to(t1);
    b.jump(m1);
    b.switch_to(f1);
    b.jump(m1);
    b.switch_to(m1);
    let p1 = b.phi(vec![x, one], Type::Int);
    let c2 = b.cmp(CmpOp::Gt, y, p1);
    let (t2, f2, m2) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(c2, t2, f2, 0.3);
    b.switch_to(t2);
    b.jump(m2);
    b.switch_to(f2);
    b.jump(m2);
    b.switch_to(m2);
    let p2 = b.phi(vec![p1, zero], Type::Int);
    let sum = b.add(p1, p2);
    b.ret(Some(sum));
    b.finish()
}

fn graph(idx: usize) -> Graph {
    match idx % 3 {
        0 => figure1(),
        1 => listing1(),
        _ => double_diamond(),
    }
}

const INPUTS: &[[i64; 2]] = &[[-7, 3], [0, 0], [1, -1], [5, 5], [13, 2], [100, -100]];

fn outcomes(g: &Graph, arity: usize) -> Vec<dbds_ir::Outcome> {
    INPUTS
        .iter()
        .map(|vals| {
            let args: Vec<Value> = vals.iter().take(arity).map(|&v| Value::Int(v)).collect();
            execute(g, &args).outcome
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any plan from any seed's sweep, armed over any of the sample
    /// graphs, still yields a verified, semantics-preserving result.
    #[test]
    fn any_fault_plan_preserves_verification_and_semantics(
        seed in 0u64..1_000_000,
        plan_idx in 0usize..48,
        graph_idx in 0usize..3,
    ) {
        let plans = FaultPlan::sweep(seed);
        let plan = plans[plan_idx % plans.len()].clone();
        let g0 = graph(graph_idx);
        let arity = if graph_idx % 3 == 2 { 2 } else { 1 };
        let model = CostModel::new();
        let cfg = DbdsConfig::default();

        let mut baseline = g0.clone();
        compile(&mut baseline, &model, OptLevel::Baseline, &cfg);
        let expected = outcomes(&baseline, arity);

        arm(plan.clone());
        let mut g = g0.clone();
        let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
        let (_, fired) = disarm();

        prop_assert!(
            verify(&g).is_ok(),
            "plan {:?} left an unverified graph:\n{}", plan, g
        );
        prop_assert_eq!(outcomes(&g, arity), expected);
        // A fired fault that changed anything must be accounted for: it
        // either surfaced as a bailout record or was absorbed without a
        // trace (e.g. corruption of an already-doomed copy); the converse
        // always holds.
        if !fired {
            prop_assert!(
                stats.bailouts.iter().all(|b| b.reason == BailoutReason::SizeBudgetExceeded),
                "no fault fired yet non-tradeoff bailouts recorded: {:?}", stats.bailouts
            );
        }
    }

    /// Fault plans compose with real budgets: tiny fuel plus an armed
    /// fault still ends in a verified graph.
    #[test]
    fn faults_under_fuel_pressure_stay_contained(
        seed in 0u64..100_000,
        plan_idx in 0usize..48,
        fuel in 1u64..200,
    ) {
        let plans = FaultPlan::sweep(seed);
        let plan = plans[plan_idx % plans.len()].clone();
        let model = CostModel::new();
        let cfg = DbdsConfig {
            guard: GuardConfig { fuel: Some(fuel), ..GuardConfig::default() },
            ..DbdsConfig::default()
        };

        let g0 = listing1();
        let mut baseline = g0.clone();
        compile(&mut baseline, &model, OptLevel::Baseline, &DbdsConfig::default());
        let expected = outcomes(&baseline, 1);

        arm(plan);
        let mut g = g0.clone();
        compile(&mut g, &model, OptLevel::Dbds, &cfg);
        disarm();

        prop_assert!(verify(&g).is_ok());
        prop_assert_eq!(outcomes(&g, 1), expected);
    }
}
