//! Property tests for the parallel tiers' determinism contract: for
//! *any* generated workload and *any* budget, running the DST pool at
//! 2, 3, or 8 threads must produce results, stop reasons, panic
//! records, and fuel accounting bit-identical to 1 thread; a whole
//! compilation at 4 threads must produce the same graph as at 1; and a
//! unit batch on the shared 2-D scheduler must commit bit-identical
//! results at *any* randomized (unit, sim) split, including steal-heavy
//! schedules where reserved sim workers drain other units' queues.

use dbds_core::{
    compile, simulate_paths_parallel, Budget, DbdsConfig, GuardConfig, OptLevel, SimulationOutcome,
    BRANCH_SPLIT_DEFAULT,
};
use dbds_costmodel::CostModel;
use dbds_ir::Graph;
use dbds_workloads::{generate_graph, Suite};
use proptest::prelude::*;

/// A deterministic generated compilation unit: suites differ in shape
/// mix (branchy, loopy, allocation-heavy), so sweeping `suite_idx`
/// exercises structurally different candidate lists.
fn workload_graph(suite_idx: usize, seed: u64) -> Graph {
    let suite = Suite::ALL[suite_idx % Suite::ALL.len()];
    generate_graph("par-props", &suite.profile(), seed)
}

fn run_sim(g: &Graph, fuel: Option<u64>, threads: usize) -> (SimulationOutcome, u64) {
    let guard = GuardConfig {
        fuel,
        ..GuardConfig::default()
    };
    let budget = Budget::new(&guard);
    let outcome = simulate_paths_parallel(
        g,
        &CostModel::new(),
        &mut dbds_analysis::AnalysisCache::new(),
        2,
        &budget,
        threads,
        BRANCH_SPLIT_DEFAULT,
    );
    let used = budget.fuel_used();
    (outcome, used)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thread count never changes what the simulation tier reports, with
    /// and without fuel-exhaustion pressure.
    #[test]
    fn parallel_simulation_is_thread_count_invariant(
        suite_idx in 0usize..4,
        seed in 0u64..10_000,
        // 0 = unlimited; small values stop the walk mid-flight.
        fuel in 0u64..600,
    ) {
        let g = workload_graph(suite_idx, seed);
        let fuel = (fuel > 0).then_some(fuel);
        let (baseline, base_used) = run_sim(&g, fuel, 1);
        for threads in [2usize, 3, 8] {
            let (outcome, used) = run_sim(&g, fuel, threads);
            prop_assert_eq!(
                &outcome.results, &baseline.results,
                "results diverged at {} threads (fuel {:?})", threads, fuel
            );
            prop_assert_eq!(
                &outcome.stopped, &baseline.stopped,
                "stop reason diverged at {} threads (fuel {:?})", threads, fuel
            );
            prop_assert_eq!(
                &outcome.panicked, &baseline.panicked,
                "panic records diverged at {} threads (fuel {:?})", threads, fuel
            );
            // The downstream tiers inherit this budget, so the committed
            // fuel accounting must match exactly as well.
            prop_assert_eq!(used, base_used, "fuel accounting diverged at {} threads", threads);
        }
    }

    /// End-to-end: a whole DBDS compilation is indistinguishable across
    /// thread counts — same graph, same decisions, same bailout records.
    #[test]
    fn whole_compilation_is_thread_count_invariant(
        suite_idx in 0usize..4,
        seed in 0u64..10_000,
        fuel in 0u64..2_000,
    ) {
        let g0 = workload_graph(suite_idx, seed);
        let model = CostModel::new();
        let fuel = (fuel > 0).then_some(fuel);
        let compiled = |threads: usize| {
            let cfg = DbdsConfig {
                guard: GuardConfig { fuel, ..GuardConfig::default() },
                sim_threads: threads,
                ..DbdsConfig::default()
            };
            let mut g = g0.clone();
            let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
            (g.to_string(), stats)
        };
        let (base_graph, base_stats) = compiled(1);
        for threads in [4usize, 8] {
            let (graph, stats) = compiled(threads);
            prop_assert_eq!(&graph, &base_graph, "graphs diverged at {} threads", threads);
            prop_assert_eq!(stats.duplications, base_stats.duplications);
            prop_assert_eq!(stats.candidates, base_stats.candidates);
            prop_assert_eq!(stats.iterations, base_stats.iterations);
            prop_assert_eq!(&stats.bailouts, &base_stats.bailouts);
            prop_assert_eq!(stats.final_size, base_stats.final_size);
        }
    }

    /// The 2-D scheduler's contract: a batch of units committed through
    /// `par::run_units` is bit-identical to the sequential batch at any
    /// randomized (unit, sim) split — stolen DST/pricing chunks, fuel
    /// pressure and all.
    #[test]
    fn unit_batch_is_split_invariant(
        seeds in proptest::collection::vec(0u64..10_000, 3..7),
        unit_workers in 1usize..5,
        sim_workers in 0usize..5,
        fuel in 0u64..2_000,
    ) {
        let graphs: Vec<Graph> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| workload_graph(i, s))
            .collect();
        let model = CostModel::new();
        let fuel = (fuel > 0).then_some(fuel);
        // The per-unit config the planner would hand out: nominally
        // sequential inner tiers that publish to the shared scheduler.
        let cfg = DbdsConfig {
            guard: GuardConfig { fuel, ..GuardConfig::default() },
            sim_threads: 1,
            unit_threads: 1,
            ..DbdsConfig::default()
        };
        let compile_unit = |g: &Graph| {
            let mut g = g.clone();
            let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
            (
                g.to_string(),
                stats.duplications,
                stats.candidates,
                stats.iterations,
                stats.final_size,
                stats.bailouts.clone(),
            )
        };
        let (baseline, _, _) = dbds_core::par::run_units(1, 0, &graphs, |_, g| compile_unit(g));
        let (split, loads, _) =
            dbds_core::par::run_units(unit_workers, sim_workers, &graphs, |_, g| compile_unit(g));
        prop_assert_eq!(
            &split, &baseline,
            "unit batch diverged at split {}x{}", unit_workers, sim_workers
        );
        // Load accounting stays coherent under stealing: every unit was
        // claimed exactly once, and stolen counts never exceed tasks.
        prop_assert!(loads.iter().map(|l| l.tasks).sum::<usize>() >= graphs.len());
        for load in &loads {
            prop_assert!(load.stolen <= load.tasks);
        }
    }
}
