//! Measurement of the paper's three metrics (§6.1): peak performance,
//! code size, and compile time.
//!
//! - **Peak performance** — the workload is interpreted on its inputs and
//!   the per-kind execution tally is priced by the node cost model
//!   (dynamic cycles, lower is better). An instruction-cache pressure
//!   model adds a penalty for oversized code: this is the mechanism by
//!   which unbounded duplication (*dupalot*) can *lose* peak performance,
//!   as the paper observes on `raytrace` (§6.2). See DESIGN.md §2.
//! - **Code size** — the static size estimate of the final IR (the same
//!   estimator Graal's budget uses).
//! - **Compile time** — wall-clock of the optimization pipeline, plus a
//!   deterministic work counter.

use dbds_core::{compile, DbdsConfig, OptLevel, PhaseStats};
use dbds_costmodel::CostModel;
use dbds_ir::{execute, Graph, Outcome};
use dbds_workloads::Workload;
use std::time::Instant;

/// A simple instruction-cache pressure model: code beyond `threshold`
/// size units costs `slope` fractional slowdown per threshold-multiple.
#[derive(Clone, Copy, Debug)]
pub struct IcacheModel {
    /// Size up to which code is penalty-free.
    pub threshold: f64,
    /// Fractional slowdown per `threshold` bytes of excess code.
    pub slope: f64,
}

impl Default for IcacheModel {
    fn default() -> Self {
        IcacheModel {
            threshold: 4500.0,
            slope: 0.30,
        }
    }
}

impl IcacheModel {
    /// The multiplicative run-time factor for a unit of `code_size`.
    pub fn factor(&self, code_size: u64) -> f64 {
        let excess = (code_size as f64 - self.threshold).max(0.0);
        1.0 + self.slope * (excess / self.threshold)
    }
}

/// The measured metrics of one compiled workload.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Dynamic cycles over all inputs, icache-adjusted (lower is better).
    pub peak_cycles: f64,
    /// Dynamic cycles without the icache adjustment.
    pub raw_cycles: u64,
    /// Static code-size estimate of the final IR.
    pub code_size: u64,
    /// Wall-clock compile time in nanoseconds.
    pub compile_ns: u128,
    /// Deterministic compile-work counter from the phase.
    pub work: u64,
    /// Phase statistics (duplications, candidates, …).
    pub stats: PhaseStats,
    /// The observable outcomes per input (used for differential checks).
    pub outcomes: Vec<Outcome>,
}

/// Compiles a copy of `w.graph` under `level` and measures all metrics.
///
/// # Panics
///
/// Panics if the compiled graph fails verification — an optimizer bug.
pub fn measure(
    w: &Workload,
    level: OptLevel,
    model: &CostModel,
    cfg: &DbdsConfig,
    icache: &IcacheModel,
) -> Metrics {
    measure_from(&w.graph, w, level, model, cfg, icache)
}

/// Like [`measure`], but compiles a clone of `pristine` instead of
/// `w.graph` — the unit-queue entry point: `run_suite` verifies each
/// workload's graph once and every `(workload, configuration)` unit
/// clones from that verified pristine copy.
pub fn measure_from(
    pristine: &Graph,
    w: &Workload,
    level: OptLevel,
    model: &CostModel,
    cfg: &DbdsConfig,
    icache: &IcacheModel,
) -> Metrics {
    let mut g = pristine.clone();
    // Compile time covers the whole pipeline — mid-tier optimizations and
    // duplication phase plus the back end (liveness, linear scan,
    // emission), like the paper's whole-compilation timing.
    let start = Instant::now();
    let stats = compile(&mut g, model, level, cfg);
    let machine = dbds_backend::compile_to_machine_code(&g);
    let compile_ns = start.elapsed().as_nanos();
    dbds_ir::verify(&g).unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, level.name()));
    let (raw_cycles, outcomes) = run_inputs(&g, w, model);
    // Code size is the installed machine code, as in §6.1 ("a counter
    // that tracks machine code size after code installation").
    let code_size = machine.size() as u64;
    Metrics {
        peak_cycles: raw_cycles as f64 * icache.factor(code_size),
        raw_cycles,
        code_size,
        compile_ns,
        work: stats.work,
        stats,
        outcomes,
    }
}

fn run_inputs(g: &Graph, w: &Workload, model: &CostModel) -> (u64, Vec<Outcome>) {
    let mut total = 0u64;
    let mut outcomes = Vec::with_capacity(w.inputs.len());
    for input in &w.inputs {
        let r = execute(g, input);
        total += model.dynamic_cycles(&r.counts);
        outcomes.push(r.outcome);
    }
    (total, outcomes)
}

/// Percent change of `new` relative to `old` where *increase* is positive
/// (used for code size and compile time).
pub fn pct_increase(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new / old - 1.0) * 100.0
    }
}

/// Percent *speedup* of `new` vs `old` cycle counts (positive = faster),
/// matching the paper's "peak performance increase".
pub fn pct_speedup(old_cycles: f64, new_cycles: f64) -> f64 {
    if new_cycles == 0.0 {
        0.0
    } else {
        (old_cycles / new_cycles - 1.0) * 100.0
    }
}

/// Geometric mean of `(1 + pct/100)` ratios, returned as a percentage.
pub fn geomean_pct(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_workloads::Suite;

    #[test]
    fn icache_model_is_flat_then_linear() {
        let m = IcacheModel {
            threshold: 1000.0,
            slope: 0.5,
        };
        assert_eq!(m.factor(500), 1.0);
        assert_eq!(m.factor(1000), 1.0);
        assert!((m.factor(1500) - 1.25).abs() < 1e-12);
        assert!((m.factor(2000) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percent_helpers() {
        assert!((pct_increase(100.0, 150.0) - 50.0).abs() < 1e-12);
        assert!((pct_speedup(150.0, 100.0) - 50.0).abs() < 1e-12);
        assert!((pct_speedup(100.0, 100.0)).abs() < 1e-12);
        let g = geomean_pct(&[10.0, 10.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert_eq!(geomean_pct(&[]), 0.0);
        // Mixing +100% and -50% cancels out geometrically.
        assert!(geomean_pct(&[100.0, -50.0]).abs() < 1e-9);
    }

    #[test]
    fn measure_baseline_vs_dbds_preserves_outcomes() {
        let w = &Suite::Micro.workloads()[0];
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let ic = IcacheModel::default();
        let base = measure(w, OptLevel::Baseline, &model, &cfg, &ic);
        let dbds = measure(w, OptLevel::Dbds, &model, &cfg, &ic);
        assert_eq!(
            base.outcomes, dbds.outcomes,
            "optimization changed semantics"
        );
        // Duplication never makes the interpreter execute more cycles.
        assert!(dbds.raw_cycles <= base.raw_cycles);
    }

    #[test]
    fn dbds_speeds_up_a_micro_benchmark() {
        // At least one micro benchmark must show a strict improvement.
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let ic = IcacheModel::default();
        let mut improved = 0;
        for w in Suite::Micro.workloads() {
            let base = measure(&w, OptLevel::Baseline, &model, &cfg, &ic);
            let dbds = measure(&w, OptLevel::Dbds, &model, &cfg, &ic);
            assert_eq!(base.outcomes, dbds.outcomes, "{}", w.name);
            if dbds.raw_cycles < base.raw_cycles {
                improved += 1;
            }
        }
        assert!(improved >= 5, "only {improved}/9 micro benchmarks improved");
    }
}
