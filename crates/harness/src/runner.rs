//! Suite execution: every benchmark under baseline / DBDS / dupalot,
//! exactly like the paper's three configurations (§6.1).

use crate::metrics::{measure, measure_from, pct_increase, pct_speedup, IcacheModel, Metrics};
use dbds_core::{par, BailoutReason, DbdsConfig, OptLevel, PoolPlan, WorkerLoad};
use dbds_costmodel::CostModel;
use dbds_workloads::{Suite, Workload};

/// The three per-configuration measurements of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkRow {
    /// Benchmark name.
    pub name: String,
    /// Duplication disabled.
    pub baseline: Metrics,
    /// The DBDS configuration.
    pub dbds: Metrics,
    /// The dupalot configuration.
    pub dupalot: Metrics,
}

impl BenchmarkRow {
    /// Peak performance change of a configuration vs baseline (positive =
    /// faster), as the figures plot it.
    pub fn peak_pct(&self, level: OptLevel) -> f64 {
        pct_speedup(self.baseline.peak_cycles, self.pick(level).peak_cycles)
    }

    /// Compile-time increase vs baseline, in percent.
    pub fn compile_pct(&self, level: OptLevel) -> f64 {
        pct_increase(
            self.baseline.compile_ns as f64,
            self.pick(level).compile_ns as f64,
        )
    }

    /// Code-size increase vs baseline, in percent.
    pub fn size_pct(&self, level: OptLevel) -> f64 {
        pct_increase(
            self.baseline.code_size as f64,
            self.pick(level).code_size as f64,
        )
    }

    /// The metrics of one suite configuration (panics for
    /// `Backtracking`, which never appears in suite rows).
    pub fn pick_metrics(&self, level: OptLevel) -> &Metrics {
        self.pick(level)
    }

    fn pick(&self, level: OptLevel) -> &Metrics {
        match level {
            OptLevel::Dbds => &self.dbds,
            OptLevel::Dupalot => &self.dupalot,
            OptLevel::Baseline => &self.baseline,
            OptLevel::Backtracking => panic!("backtracking is not part of suite rows"),
        }
    }

    /// Checks that every configuration computed the same outcomes as the
    /// baseline — the end-to-end correctness guarantee.
    pub fn outcomes_agree(&self) -> bool {
        self.baseline.outcomes == self.dbds.outcomes
            && self.baseline.outcomes == self.dupalot.outcomes
    }
}

/// A measured suite.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Which suite.
    pub suite: Suite,
    /// One row per benchmark, in figure order.
    pub rows: Vec<BenchmarkRow>,
    /// The resolved unit-worker count of the 2-D scheduler the suite
    /// ran on. Purely observational — `rows` is identical for every
    /// value.
    pub unit_threads: usize,
    /// The resolved reserved sim-worker (steal-helper) count of the
    /// scheduler. Observational, like `unit_threads`.
    pub sim_workers: usize,
    /// Wall-clock nanoseconds of the unit fan-out. Timing only, never
    /// part of the deterministic reports.
    pub unit_par_ns: u128,
    /// Per-worker loads of the unit pool, in worker-index order. Timing
    /// and scheduling observability only.
    pub unit_loads: Vec<WorkerLoad>,
}

impl SuiteResult {
    /// Aggregate analysis-cache counters for one configuration across the
    /// whole suite (hits / misses / invalidations, summed over rows).
    pub fn cache_totals(&self, level: OptLevel) -> dbds_analysis::CacheStats {
        let mut total = dbds_analysis::CacheStats::default();
        for row in &self.rows {
            total.absorb(row.pick(level).stats.cache);
        }
        total
    }

    /// Aggregate bailout counters for one configuration across the whole
    /// suite, by reason.
    pub fn bailout_totals(&self, level: OptLevel) -> BailoutTotals {
        let mut t = BailoutTotals::default();
        for row in &self.rows {
            for b in &row.pick(level).stats.bailouts {
                match b.reason {
                    BailoutReason::FuelExhausted => t.fuel_exhausted += 1,
                    BailoutReason::DeadlineExceeded => t.deadline_exceeded += 1,
                    BailoutReason::VerifierRejected(_) => t.verifier_rejected += 1,
                    BailoutReason::TransformPanicked(_) => t.transform_panicked += 1,
                    BailoutReason::SizeBudgetExceeded => t.size_budget_exceeded += 1,
                }
                if b.recovered {
                    t.recovered += 1;
                }
            }
        }
        t
    }

    /// Geometric-mean percentage for a metric/configuration pair.
    pub fn geomean(&self, level: OptLevel, metric: Metric) -> f64 {
        let pcts: Vec<f64> = self
            .rows
            .iter()
            .map(|r| match metric {
                Metric::Peak => r.peak_pct(level),
                Metric::CompileTime => r.compile_pct(level),
                Metric::CodeSize => r.size_pct(level),
            })
            .collect();
        crate::metrics::geomean_pct(&pcts)
    }
}

/// Suite-wide bailout counts of one configuration, by
/// [`BailoutReason`] variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BailoutTotals {
    /// Fuel-budget exhaustions.
    pub fuel_exhausted: usize,
    /// Missed wall-clock deadlines.
    pub deadline_exceeded: usize,
    /// Checkpoint / transform-invariant rejections.
    pub verifier_rejected: usize,
    /// Caught transformation panics.
    pub transform_panicked: usize,
    /// Size-budget rejections of otherwise-profitable candidates.
    pub size_budget_exceeded: usize,
    /// How many of the incidents were contained (rolled back or skipped)
    /// rather than stopping the phase.
    pub recovered: usize,
}

impl BailoutTotals {
    /// Total incidents, all reasons.
    pub fn total(&self) -> usize {
        self.fuel_exhausted
            + self.deadline_exceeded
            + self.verifier_rejected
            + self.transform_panicked
            + self.size_budget_exceeded
    }
}

/// The three metrics of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Peak performance change (higher is better).
    Peak,
    /// Compile-time increase (lower is better).
    CompileTime,
    /// Code-size increase (lower is better).
    CodeSize,
}

/// Runs one benchmark under all three configurations.
pub fn run_benchmark(
    w: &Workload,
    model: &CostModel,
    cfg: &DbdsConfig,
    icache: &IcacheModel,
) -> BenchmarkRow {
    BenchmarkRow {
        name: w.name.clone(),
        baseline: measure(w, OptLevel::Baseline, model, cfg, icache),
        dbds: measure(w, OptLevel::Dbds, model, cfg, icache),
        dupalot: measure(w, OptLevel::Dupalot, model, cfg, icache),
    }
}

/// Runs `f(index, &units[index])` over every unit on the
/// `dbds_core::par` 2-D scheduler described by `plan` and returns the
/// results in submission (index) order — execution order (including
/// stealing) never leaks into the output — plus the per-worker loads
/// and the wall-clock nanoseconds of the fan-out.
///
/// This is the harness's unit-level compilation queue: `run_suite`, the
/// lint sweep, the phase table and the fault sweep all dispatch their
/// independent per-unit work through it. Callers should compile each
/// unit with `plan.per_unit` so the inner tiers publish to the shared
/// scheduler instead of spawning nested pools. With one unit worker and
/// no sim workers everything runs inline on the calling thread in index
/// order, so the sequential path is the same code.
pub fn run_units<I: Sync, T: Send>(
    plan: &PoolPlan,
    units: &[I],
    f: impl Fn(usize, &I) -> T + Sync,
) -> (Vec<T>, Vec<WorkerLoad>, u128) {
    par::run_units(plan.unit_workers, plan.sim_workers, units, f)
}

/// Runs a whole suite: every `(workload, configuration)` pair is one
/// independent compilation unit, dispatched onto the worker pool behind
/// [`DbdsConfig::unit_threads`] and committed in submission order (the
/// result is byte-identical for every thread count).
///
/// Each workload's pristine graph is verified **once** here; every unit
/// clones from that verified copy instead of re-validating per
/// configuration.
pub fn run_suite(
    suite: Suite,
    model: &CostModel,
    cfg: &DbdsConfig,
    icache: &IcacheModel,
) -> SuiteResult {
    let workloads = suite.workloads();
    for w in &workloads {
        dbds_ir::verify(&w.graph)
            .unwrap_or_else(|e| panic!("workload {} failed pristine verification: {e}", w.name));
    }
    const LEVELS: [OptLevel; 3] = [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot];
    let units: Vec<(usize, OptLevel)> = (0..workloads.len())
        .flat_map(|wi| LEVELS.iter().map(move |&l| (wi, l)))
        .collect();
    let plan = cfg.pool_plan(units.len());
    let (metrics, unit_loads, unit_par_ns) = run_units(&plan, &units, |_, &(wi, level)| {
        let w = &workloads[wi];
        measure_from(&w.graph, w, level, model, &plan.per_unit, icache)
    });
    let mut metrics = metrics.into_iter();
    let mut next = || metrics.next().expect("one Metrics per unit");
    let rows = workloads
        .iter()
        .map(|w| BenchmarkRow {
            name: w.name.clone(),
            baseline: next(),
            dbds: next(),
            dupalot: next(),
        })
        .collect();
    SuiteResult {
        suite,
        rows,
        unit_threads: plan.unit_workers,
        sim_workers: plan.sim_workers,
        unit_par_ns,
        unit_loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_round_trip() {
        let model = CostModel::new();
        let cfg = DbdsConfig::default();
        let ic = IcacheModel::default();
        let result = run_suite(Suite::Micro, &model, &cfg, &ic);
        assert_eq!(result.rows.len(), 12);
        for row in &result.rows {
            assert!(row.outcomes_agree(), "{} outcomes diverged", row.name);
        }
        // Suite-level shape: positive mean peak improvement for DBDS, and
        // dupalot grows code at least as much as DBDS on average.
        let peak = result.geomean(OptLevel::Dbds, Metric::Peak);
        assert!(peak > 0.0, "micro DBDS geomean peak {peak}%");
        let dbds_size = result.geomean(OptLevel::Dbds, Metric::CodeSize);
        let dupalot_size = result.geomean(OptLevel::Dupalot, Metric::CodeSize);
        assert!(
            dupalot_size >= dbds_size - 1.0,
            "dupalot mean size {dupalot_size}% below DBDS {dbds_size}%"
        );
    }
}
