//! Ablation study over the trade-off constants of §5.4: sweeps the
//! benefit scale factor `BS`, the code-size increase budget `IB` and the
//! iteration bound, reporting duplications performed, peak performance
//! and code size on the micro suite.
//!
//! ```text
//! cargo run -p dbds-harness --bin ablations --release
//! ```

use dbds_core::{DbdsConfig, OptLevel, TradeoffConfig};
use dbds_costmodel::CostModel;
use dbds_harness::{geomean_pct, measure, IcacheModel};
use dbds_workloads::Suite;

fn main() {
    let model = CostModel::new();
    let icache = IcacheModel::default();
    let workloads = Suite::Micro.workloads();

    let sweep = |label: &str, cfgs: Vec<(String, DbdsConfig)>| {
        println!("=== Ablation: {label} (micro suite) ===");
        println!(
            "{:<10} | {:>6} | {:>9} | {:>9}",
            label, "dups", "peak", "size"
        );
        println!("{}", "-".repeat(44));
        for (name, cfg) in cfgs {
            let mut dups = 0usize;
            let mut peak = Vec::new();
            let mut size = Vec::new();
            for w in &workloads {
                let base = measure(w, OptLevel::Baseline, &model, &cfg, &icache);
                let dbds = measure(w, OptLevel::Dbds, &model, &cfg, &icache);
                assert_eq!(base.outcomes, dbds.outcomes, "{} diverged", w.name);
                dups += dbds.stats.duplications;
                peak.push(dbds_harness::pct_speedup(
                    base.peak_cycles,
                    dbds.peak_cycles,
                ));
                size.push(dbds_harness::pct_increase(
                    base.code_size as f64,
                    dbds.code_size as f64,
                ));
            }
            println!(
                "{:<10} | {:>6} | {:>8.2}% | {:>8.2}%",
                name,
                dups,
                geomean_pct(&peak),
                geomean_pct(&size)
            );
        }
        println!();
    };

    sweep(
        "BS",
        [1.0, 16.0, 256.0, 4096.0]
            .into_iter()
            .map(|bs| {
                (
                    format!("{bs}"),
                    DbdsConfig {
                        tradeoff: TradeoffConfig {
                            benefit_scale: bs,
                            ..TradeoffConfig::default()
                        },
                        ..DbdsConfig::default()
                    },
                )
            })
            .collect(),
    );

    sweep(
        "IB",
        [1.0, 1.25, 1.5, 2.0]
            .into_iter()
            .map(|ib| {
                (
                    format!("{ib}"),
                    DbdsConfig {
                        tradeoff: TradeoffConfig {
                            size_increase_budget: ib,
                            ..TradeoffConfig::default()
                        },
                        ..DbdsConfig::default()
                    },
                )
            })
            .collect(),
    );

    sweep(
        "path-len",
        [1usize, 2, 3]
            .into_iter()
            .map(|n| {
                (
                    format!("{n}"),
                    DbdsConfig {
                        max_path_length: n,
                        ..DbdsConfig::default()
                    },
                )
            })
            .collect(),
    );

    sweep(
        "iters",
        [1usize, 2, 3, 6]
            .into_iter()
            .map(|n| {
                (
                    format!("{n}"),
                    DbdsConfig {
                        max_iterations: n,
                        ..DbdsConfig::default()
                    },
                )
            })
            .collect(),
    );
}
