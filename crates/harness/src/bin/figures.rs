//! Command-line entry point reproducing the paper's figures and tables.
//!
//! ```text
//! figures --figure 5|6|7|8      one suite figure
//! figures --summary             cross-suite headline numbers
//! figures --table backtracking  the §3.1 compile-time comparison
//! figures --all                 everything, in paper order
//! figures --json <path|->       deterministic machine-readable report
//! figures --lint                IR lint + prediction audit over the corpus
//! figures --lint --json <path|->  the same sweep as JSON
//! ```
//!
//! `--lint` exits nonzero when any error-severity diagnostic or any
//! misprediction survives — the CI lint gate.
//!
//! `--sim-threads N` (combinable with every mode) sets the simulation
//! tier's DST worker count; `0` means one per hardware thread. The
//! default honors `DBDS_SIM_THREADS`. All measured results are
//! bit-identical for every value — only wall-clock changes.

use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_harness::{
    format_backtracking, format_figure, format_json, format_lint, format_lint_json, format_summary,
    run_lint_audit, run_suite, BacktrackRow, IcacheModel,
};
use dbds_workloads::Suite;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let model = CostModel::new();
    let mut cfg = DbdsConfig::default();
    let icache = IcacheModel::default();

    // `--sim-threads N` composes with every mode; strip it before the
    // mode match.
    if let Some(pos) = args.iter().position(|a| a == "--sim-threads") {
        let parsed = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok());
        match parsed {
            Some(n) => {
                cfg.sim_threads = n;
                args.drain(pos..=pos + 1);
            }
            None => {
                eprintln!("--sim-threads expects a thread count (0 = auto)");
                std::process::exit(2);
            }
        }
    }

    match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["--figure", n] => {
            let suite = match *n {
                "5" => Suite::JavaDaCapo,
                "6" => Suite::ScalaDaCapo,
                "7" => Suite::Micro,
                "8" => Suite::Octane,
                other => {
                    eprintln!("unknown figure `{other}` (expected 5, 6, 7 or 8)");
                    std::process::exit(2);
                }
            };
            let result = run_suite(suite, &model, &cfg, &icache);
            print!("{}", format_figure(&result));
        }
        ["--summary"] => {
            let results: Vec<_> = Suite::ALL
                .iter()
                .map(|&s| run_suite(s, &model, &cfg, &icache))
                .collect();
            print!("{}", format_summary(&results));
        }
        ["--table", "backtracking"] => {
            print!("{}", backtracking_table(&model, &cfg));
        }
        ["--table", "phases"] => {
            print!("{}", phases_table(&model, &cfg));
        }
        ["--json", path] => {
            let results: Vec<_> = Suite::ALL
                .iter()
                .map(|&s| run_suite(s, &model, &cfg, &icache))
                .collect();
            let json = format_json(&results, cfg.sim_threads);
            if *path == "-" {
                print!("{json}");
            } else if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        ["--lint"] | ["--lint", "--json", _] => {
            let audit = run_lint_audit(&Suite::ALL, &model, &cfg);
            if let ["--lint", "--json", path] = args
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice()
            {
                let json = format_lint_json(&audit);
                if *path == "-" {
                    print!("{json}");
                } else if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            } else {
                print!("{}", format_lint(&audit));
            }
            if !audit.gate_passes() {
                eprintln!(
                    "lint gate failed: {} error diagnostics, {} mispredictions",
                    audit.error_count(),
                    audit.mispredictions
                );
                std::process::exit(1);
            }
        }
        ["--all"] => {
            let mut results = Vec::new();
            for &suite in &Suite::ALL {
                let result = run_suite(suite, &model, &cfg, &icache);
                print!("{}", format_figure(&result));
                println!();
                results.push(result);
            }
            print!("{}", format_summary(&results));
            println!();
            print!("{}", backtracking_table(&model, &cfg));
        }
        _ => {
            eprintln!(
                "usage: figures [--sim-threads N] --figure <5|6|7|8> | --summary | \
                 --table backtracking | --table phases | --all | --json <path|-> | \
                 --lint [--json <path|->]"
            );
            std::process::exit(2);
        }
    }
}

/// Per-tier compile-time breakdown of the DBDS phase (the paper's
/// "timing statements … used throughout the compiler", §6.1): how the
/// phase splits between simulation, the duplication transform and the
/// optimization pipeline, per suite.
fn phases_table(model: &CostModel, cfg: &DbdsConfig) -> String {
    use dbds_workloads::Suite;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DBDS phase breakdown (per suite, sums over all benchmarks; \
         sim_threads = {})\n",
        cfg.sim_threads
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>11} | {:>11} | {:>11} | {:>11} | {:>9} | {:>7}",
        "suite", "simulate", "dst pool", "duplicate", "optimize", "sim share", "mispred"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for suite in Suite::ALL {
        let mut sim = 0u128;
        let mut par = 0u128;
        let mut tr = 0u128;
        let mut opt = 0u128;
        let mut mispred = 0usize;
        for w in suite.workloads() {
            let mut g = w.graph.clone();
            let stats = compile(&mut g, model, OptLevel::Dbds, cfg);
            sim += stats.sim_ns;
            par += stats.par_ns;
            tr += stats.transform_ns;
            opt += stats.opt_ns;
            mispred += stats.mispredictions;
        }
        let total = (sim + tr + opt).max(1);
        let _ = writeln!(
            out,
            "{:<14} | {:>8.2} ms | {:>8.2} ms | {:>8.2} ms | {:>8.2} ms | {:>8.1}% | {:>7}",
            suite.id(),
            sim as f64 / 1e6,
            par as f64 / 1e6,
            tr as f64 / 1e6,
            opt as f64 / 1e6,
            sim as f64 / total as f64 * 100.0,
            mispred
        );
    }
    out
}

/// Compares DBDS and backtracking compile times on the micro suite (the
/// suite is small enough that Algorithm 1's whole-graph copies finish in
/// reasonable time — which is exactly the point of the comparison).
fn backtracking_table(model: &CostModel, cfg: &DbdsConfig) -> String {
    let rows: Vec<BacktrackRow> = Suite::Micro
        .workloads()
        .iter()
        .map(|w| {
            let mut g1 = w.graph.clone();
            let t0 = Instant::now();
            let dbds = compile(&mut g1, model, OptLevel::Dbds, cfg);
            let dbds_ns = t0.elapsed().as_nanos();

            let mut g2 = w.graph.clone();
            let t1 = Instant::now();
            let back = compile(&mut g2, model, OptLevel::Backtracking, cfg);
            let backtracking_ns = t1.elapsed().as_nanos();

            BacktrackRow {
                name: w.name.clone(),
                dbds_ns,
                backtracking_ns,
                dbds_duplications: dbds.duplications,
                backtracking_accepted: back.duplications,
            }
        })
        .collect();
    format_backtracking(&rows)
}
