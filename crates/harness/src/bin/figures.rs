//! Command-line entry point reproducing the paper's figures and tables.
//!
//! ```text
//! figures --figure 5|6|7|8      one suite figure
//! figures --summary             cross-suite headline numbers
//! figures --table backtracking  the §3.1 compile-time comparison
//! figures --table ablation      combined vs merge-only branch splitting
//! figures --all                 everything, in paper order
//! figures --json <path|->       deterministic machine-readable report
//! figures --lint                IR lint + prediction audit over the corpus
//! figures --lint --json <path|->  the same sweep as JSON
//! ```
//!
//! `--lint` exits nonzero when any error-severity diagnostic or any
//! misprediction survives — the CI lint gate.
//!
//! `--sim-threads N` (combinable with every mode) sets the simulation
//! tier's DST worker count; `--unit-threads N` sets the width of the
//! unit-level compilation queue (independent `(workload, config)` units
//! overlapped on the worker pool). For both, `0` means one per hardware
//! thread and the defaults honor `DBDS_SIM_THREADS` /
//! `DBDS_UNIT_THREADS`. All measured results are bit-identical for
//! every value — only wall-clock changes.
//!
//! Compile-cache modes (the `dbds-server` integration):
//!
//! ```text
//! figures --json <path|-> --cache mem|DIR   embed a 2-pass compile-cache
//!                                           session's counters in the report
//! figures --client ADDR                     run the session against a live
//!                                           dbds-server daemon instead
//! ```
//!
//! `--cache mem` uses the in-memory store; any other value is an
//! on-disk store directory. Session counters are deterministic, so the
//! `--json` report stays byte-identical across thread counts.

use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_harness::{
    format_backtracking, format_figure, format_json, format_lint, format_lint_json,
    format_split_ablation, format_summary, run_lint_audit, run_split_ablation, run_suite,
    run_units, BacktrackRow, IcacheModel,
};
use dbds_workloads::Suite;
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let model = CostModel::new();
    let mut cfg = DbdsConfig::default();
    let icache = IcacheModel::default();

    // `--cache mem|DIR` composes with `--json`; strip it first.
    let mut cache: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--cache") {
        match args.get(pos + 1) {
            Some(v) => {
                cache = Some(v.clone());
                args.drain(pos..=pos + 1);
            }
            None => {
                eprintln!("--cache expects `mem` or a store directory");
                std::process::exit(2);
            }
        }
    }

    // `--sim-threads N` / `--unit-threads N` compose with every mode;
    // strip them before the mode match.
    for (flag, pick) in [
        (
            "--sim-threads",
            (|cfg, n| cfg.sim_threads = n) as fn(&mut DbdsConfig, usize),
        ),
        ("--unit-threads", |cfg, n| cfg.unit_threads = n),
    ] {
        if let Some(pos) = args.iter().position(|a| a == flag) {
            let parsed = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok());
            match parsed {
                Some(n) => {
                    pick(&mut cfg, n);
                    args.drain(pos..=pos + 1);
                }
                None => {
                    eprintln!("{flag} expects a thread count (0 = auto)");
                    std::process::exit(2);
                }
            }
        }
    }

    match args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["--figure", n] => {
            let suite = match *n {
                "5" => Suite::JavaDaCapo,
                "6" => Suite::ScalaDaCapo,
                "7" => Suite::Micro,
                "8" => Suite::Octane,
                other => {
                    eprintln!("unknown figure `{other}` (expected 5, 6, 7 or 8)");
                    std::process::exit(2);
                }
            };
            let result = run_suite(suite, &model, &cfg, &icache);
            print!("{}", format_figure(&result));
        }
        ["--summary"] => {
            let results: Vec<_> = Suite::ALL
                .iter()
                .map(|&s| run_suite(s, &model, &cfg, &icache))
                .collect();
            print!("{}", format_summary(&results));
        }
        ["--table", "backtracking"] => {
            print!("{}", backtracking_table(&model, &cfg));
        }
        ["--table", "phases"] => {
            print!("{}", phases_table(&model, &cfg));
        }
        ["--table", "ablation"] => {
            let ablation = run_split_ablation(&model, &cfg);
            print!("{}", format_split_ablation(&ablation));
            if !ablation.gate_passes() {
                eprintln!("ablation gate failed: combined does not dominate merge-only");
                std::process::exit(1);
            }
        }
        ["--json", path] => {
            let session = cache.as_deref().map(|choice| cache_session(choice, &cfg));
            let results: Vec<_> = Suite::ALL
                .iter()
                .map(|&s| run_suite(s, &model, &cfg, &icache))
                .collect();
            let json = format_json(
                &results,
                cfg.sim_threads,
                cfg.unit_threads,
                session.as_ref(),
            );
            if *path == "-" {
                print!("{json}");
            } else if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        ["--client", addr] => match client_session(addr) {
            Ok(()) => {}
            Err(msg) => {
                eprintln!("client session failed: {msg}");
                std::process::exit(1);
            }
        },
        ["--lint"] | ["--lint", "--json", _] => {
            let audit = run_lint_audit(&Suite::ALL, &model, &cfg);
            if let ["--lint", "--json", path] = args
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice()
            {
                let json = format_lint_json(&audit);
                if *path == "-" {
                    print!("{json}");
                } else if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            } else {
                print!("{}", format_lint(&audit));
            }
            if !audit.gate_passes() {
                eprintln!(
                    "lint gate failed: {} error diagnostics, {} mispredictions",
                    audit.error_count(),
                    audit.mispredictions
                );
                std::process::exit(1);
            }
        }
        ["--all"] => {
            let mut results = Vec::new();
            for &suite in &Suite::ALL {
                let result = run_suite(suite, &model, &cfg, &icache);
                print!("{}", format_figure(&result));
                println!();
                results.push(result);
            }
            print!("{}", format_summary(&results));
            println!();
            print!("{}", backtracking_table(&model, &cfg));
        }
        _ => {
            eprintln!(
                "usage: figures [--sim-threads N] [--unit-threads N] --figure <5|6|7|8> | \
                 --summary | --table backtracking | --table phases | --table ablation | --all | \
                 --json <path|-> [--cache mem|DIR] | --client ADDR | --lint [--json <path|->]"
            );
            std::process::exit(2);
        }
    }
}

/// Runs the standard two-pass compile-cache session in-process (the
/// first pass populates the store, the second measures it) and returns
/// the per-pass counters for the report's `store` block.
fn cache_session(choice: &str, cfg: &DbdsConfig) -> dbds_server::SessionReport {
    use dbds_server::{run_session, CompileService, CompiledStore, DiskStore, MemStore};
    let store: Box<dyn CompiledStore> = if choice == "mem" {
        Box::new(MemStore::new())
    } else {
        match DiskStore::open(choice) {
            Ok(s) => Box::new(s),
            Err(e) => {
                // The store is advisory by design: fall back to memory
                // rather than failing the report.
                eprintln!("cannot open store {choice}: {e}; using in-memory cache");
                Box::new(MemStore::new())
            }
        }
    };
    let svc = CompileService::new(store, cfg.clone(), dbds_server::ServiceConfig::default());
    run_session(
        &svc,
        &[OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot],
        2,
    )
}

/// Replays the two-pass session against a live daemon over the wire
/// protocol and prints per-pass tallies plus the server's own status
/// report (no timings — output is deterministic given the server
/// state).
fn client_session(addr: &str) -> Result<(), String> {
    use dbds_server::{Client, CompileRequest, CompileSource};
    let mut client = Client::connect(addr)?;
    let levels = [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot];
    let names: Vec<String> = dbds_workloads::all_workloads()
        .into_iter()
        .map(|w| w.name)
        .collect();
    for pass in 1..=2 {
        let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
        for name in &names {
            for level in levels {
                let outcome = client.compile(CompileRequest {
                    source: CompileSource::Workload(name.clone()),
                    level,
                    deadline_ms: None,
                })?;
                match outcome {
                    Ok(served) if served.cached => hits += 1,
                    Ok(_) => misses += 1,
                    Err(_) => errors += 1,
                }
            }
        }
        println!(
            "pass {pass}: {} requests, {hits} hits, {misses} misses, {errors} errors",
            names.len() * levels.len()
        );
    }
    print!("{}", client.status()?.pretty());
    Ok(())
}

/// Per-tier compile-time breakdown of the DBDS phase (the paper's
/// "timing statements … used throughout the compiler", §6.1): how the
/// phase splits between simulation, the duplication transform and the
/// optimization pipeline, per suite. Each suite's units run on the
/// unit-level queue; `unit pool` is the wall clock of that fan-out,
/// `price pool` the trade-off tier's pricing fan-out, and `undo` the
/// undo-log transaction bookkeeping (with the deterministic `edits` /
/// `rollb` counters next to it).
///
/// Column widths are measured from the rendered cells (numeric columns
/// right-aligned), so large `par_ns` sums widen their column instead of
/// overflowing it.
fn phases_table(model: &CostModel, cfg: &DbdsConfig) -> String {
    use dbds_workloads::Suite;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DBDS phase breakdown (per suite, sums over all benchmarks; \
         sim_threads = {}, unit_threads = {})\n",
        cfg.sim_threads, cfg.unit_threads
    );
    let header = [
        "suite",
        "simulate",
        "dst pool",
        "price pool",
        "duplicate",
        "optimize",
        "unit pool",
        "undo",
        "sim share",
        "mispred",
        "edits",
        "rollb",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for suite in Suite::ALL {
        let workloads = suite.workloads();
        let plan = cfg.pool_plan(workloads.len());
        let (stats_list, _loads, unit_ns) = run_units(&plan, &workloads, |_, w| {
            let mut g = w.graph.clone();
            compile(&mut g, model, OptLevel::Dbds, &plan.per_unit)
        });
        let mut sim = 0u128;
        let mut par = 0u128;
        let mut price = 0u128;
        let mut tr = 0u128;
        let mut opt = 0u128;
        let mut undo = 0u128;
        let mut mispred = 0usize;
        let mut edits = 0u64;
        let mut rollbacks = 0u64;
        for stats in &stats_list {
            sim += stats.sim_ns;
            par += stats.par_ns;
            price += stats.tradeoff_par_ns;
            tr += stats.transform_ns;
            opt += stats.opt_ns;
            undo += stats.undo_ns;
            mispred += stats.mispredictions;
            edits += stats.undo_edits;
            rollbacks += stats.undo_rollbacks;
        }
        let total = (sim + tr + opt).max(1);
        let ms = |ns: u128| format!("{:.2} ms", ns as f64 / 1e6);
        rows.push(vec![
            suite.id().to_string(),
            ms(sim),
            ms(par),
            ms(price),
            ms(tr),
            ms(opt),
            ms(unit_ns),
            ms(undo),
            format!("{:.1}%", sim as f64 / total as f64 * 100.0),
            mispred.to_string(),
            edits.to_string(),
            rollbacks.to_string(),
        ]);
    }
    // Measured widths: every cell (header included) fits, however large
    // the timing sums get.
    let mut width: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let render = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            if i == 0 {
                let _ = write!(line, "{:<1$}", cell, width[i]);
            } else {
                let _ = write!(line, "{:>1$}", cell, width[i]);
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", render(&header_cells));
    let rule_len = width.iter().sum::<usize>() + 3 * (header.len() - 1);
    let _ = writeln!(out, "{}", "-".repeat(rule_len));
    for row in &rows {
        let _ = writeln!(out, "{}", render(row));
    }
    out
}

/// Compares DBDS and backtracking compile times on the micro suite (the
/// suite is small enough that Algorithm 1's whole-graph copies finish in
/// reasonable time — which is exactly the point of the comparison).
fn backtracking_table(model: &CostModel, cfg: &DbdsConfig) -> String {
    let rows: Vec<BacktrackRow> = Suite::Micro
        .workloads()
        .iter()
        .map(|w| {
            let mut g1 = w.graph.clone();
            let t0 = Instant::now();
            let dbds = compile(&mut g1, model, OptLevel::Dbds, cfg);
            let dbds_ns = t0.elapsed().as_nanos();

            let mut g2 = w.graph.clone();
            let t1 = Instant::now();
            let back = compile(&mut g2, model, OptLevel::Backtracking, cfg);
            let backtracking_ns = t1.elapsed().as_nanos();

            BacktrackRow {
                name: w.name.clone(),
                dbds_ns,
                backtracking_ns,
                dbds_duplications: dbds.duplications,
                backtracking_accepted: back.duplications,
            }
        })
        .collect();
    format_backtracking(&rows)
}
