//! A command-line driver for the textual IR format: parse a module, run
//! a configuration, print the result, optionally execute it.
//!
//! ```text
//! irtool <file.dbir> [--opt baseline|dbds|dupalot|backtracking]
//!                    [--path-len N] [--print-before] [--simulate]
//!                    [--run a,b,c]
//! ```
//!
//! Examples:
//!
//! ```text
//! # Optimize with DBDS and show the result.
//! cargo run -p dbds-harness --bin irtool -- prog.dbir --opt dbds
//!
//! # Show what the simulation tier would price, without transforming.
//! cargo run -p dbds-harness --bin irtool -- prog.dbir --simulate
//!
//! # Optimize, then run with integer arguments 3,4,5.
//! cargo run -p dbds-harness --bin irtool -- prog.dbir --opt dbds --run 3,4,5
//! ```

use dbds_core::{compile, simulate, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_ir::{execute, parse_module, print_graph, verify, Value};
use std::process::ExitCode;

struct Options {
    file: String,
    opt: Option<OptLevel>,
    path_len: usize,
    print_before: bool,
    simulate: bool,
    run: Option<Vec<i64>>,
}

fn usage() -> ! {
    eprintln!(
        "usage: irtool <file.dbir> [--opt baseline|dbds|dupalot|backtracking] \
         [--path-len N] [--print-before] [--simulate] [--run a,b,c]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        opt: None,
        path_len: 1,
        print_before: false,
        simulate: false,
        run: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--opt" => {
                let level = args.next().unwrap_or_else(|| usage());
                opts.opt = Some(match level.as_str() {
                    "baseline" => OptLevel::Baseline,
                    "dbds" => OptLevel::Dbds,
                    "dupalot" => OptLevel::Dupalot,
                    "backtracking" => OptLevel::Backtracking,
                    _ => usage(),
                });
            }
            "--path-len" => {
                opts.path_len = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--print-before" => opts.print_before = true,
            "--simulate" => opts.simulate = true,
            "--run" => {
                let list = args.next().unwrap_or_else(|| usage());
                let vals: Option<Vec<i64>> = if list.is_empty() {
                    Some(Vec::new())
                } else {
                    list.split(',').map(|v| v.trim().parse().ok()).collect()
                };
                opts.run = Some(vals.unwrap_or_else(|| usage()));
            }
            f if !f.starts_with('-') && opts.file.is_empty() => opts.file = f.to_string(),
            _ => usage(),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("irtool: cannot read {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    let module = match parse_module(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("irtool: {e}");
            return ExitCode::from(1);
        }
    };
    let model = CostModel::new();
    let cfg = DbdsConfig {
        max_path_length: opts.path_len,
        ..DbdsConfig::default()
    };

    for mut graph in module.graphs {
        if let Err(e) = verify(&graph) {
            eprintln!("irtool: @{} does not verify:\n{e}", graph.name);
            return ExitCode::from(1);
        }
        if opts.print_before {
            println!("// before\n{}", print_graph(&graph));
        }
        if opts.simulate {
            println!("// simulation of @{}", graph.name);
            for r in simulate(&graph, &model, &mut dbds_analysis::AnalysisCache::new()) {
                println!(
                    "//   duplicate {} into {}: CS {:.1}, cost {}, p {:.3}",
                    r.merge, r.pred, r.cycles_saved, r.size_cost, r.probability
                );
            }
        }
        if let Some(level) = opts.opt {
            let stats = compile(&mut graph, &model, level, &cfg);
            if let Err(e) = verify(&graph) {
                eprintln!("irtool: optimizer bug — result does not verify:\n{e}");
                return ExitCode::from(1);
            }
            println!(
                "// after {} ({} duplications, size {} → {})",
                level.name(),
                stats.duplications,
                stats.initial_size,
                stats.final_size
            );
        }
        print!("{}", print_graph(&graph));
        if let Some(run) = &opts.run {
            if run.len() != graph.param_types().len() {
                eprintln!(
                    "irtool: @{} takes {} arguments, got {}",
                    graph.name,
                    graph.param_types().len(),
                    run.len()
                );
                return ExitCode::from(1);
            }
            let args: Vec<Value> = run.iter().map(|&v| Value::Int(v)).collect();
            let r = execute(&graph, &args);
            println!(
                "// @{}({run:?}) = {:?} ({} steps)",
                graph.name, r.outcome, r.steps
            );
        }
    }
    ExitCode::SUCCESS
}
