//! The §8 future-work experiment: validate the static performance
//! estimator against measured behaviour.
//!
//! Three correlations across all 45 synthetic benchmarks:
//!
//! 1. static probability-weighted cycle estimate vs. measured dynamic
//!    cycles (per executed entry),
//! 2. static code-size estimate (cost-model units) vs. emitted machine
//!    code bytes,
//! 3. the simulation tier's predicted probability-weighted benefit vs.
//!    the measured dynamic-cycle reduction of the DBDS phase.
//!
//! ```text
//! cargo run -p dbds-harness --bin validate_estimator --release
//! ```

use dbds_analysis::AnalysisCache;
use dbds_core::{compile, simulate, DbdsConfig, OptLevel, SelectionMode, TradeoffConfig};
use dbds_costmodel::CostModel;
use dbds_harness::{pearson, spearman};
use dbds_ir::{execute, Graph};
use dbds_workloads::{Suite, Workload};
use std::collections::HashSet;

fn weighted_estimate(g: &Graph, model: &CostModel, cache: &mut AnalysisCache) -> f64 {
    model.weighted_cycles(g, cache)
}

fn dynamic_cycles(g: &Graph, w: &Workload, model: &CostModel) -> f64 {
    let total: u64 = w
        .inputs
        .iter()
        .map(|i| model.dynamic_cycles(&execute(g, i).counts))
        .sum();
    total as f64 / w.inputs.len() as f64
}

fn main() {
    let model = CostModel::new();
    let cfg = DbdsConfig::default();

    let mut est_cycles = Vec::new();
    let mut real_cycles = Vec::new();
    let mut est_size = Vec::new();
    let mut real_size = Vec::new();
    let mut predicted_benefit = Vec::new();
    let mut measured_saving = Vec::new();

    for suite in Suite::ALL {
        for w in suite.workloads() {
            // One cache per workload: the baseline graph does not change
            // between the estimate and the simulation below, so the
            // simulation's analyses are served from the cache.
            let mut cache = AnalysisCache::new();
            // Baseline-compile once; everything else derives from it.
            let mut base = w.graph.clone();
            compile(&mut base, &model, OptLevel::Baseline, &cfg);

            est_cycles.push(weighted_estimate(&base, &model, &mut cache));
            real_cycles.push(dynamic_cycles(&base, &w, &model));
            est_size.push(model.graph_size(&base) as f64);
            real_size.push(dbds_backend::compile_to_machine_code(&base).size() as f64);

            // Predicted benefit of the candidates the trade-off accepts.
            let results = simulate(&base, &model, &mut cache);
            let initial = model.graph_size(&base);
            let accepted = dbds_core::select(
                &results,
                &TradeoffConfig::default(),
                SelectionMode::CostBenefit,
                initial,
                initial,
                &HashSet::new(),
            );
            let predicted: f64 = accepted.iter().map(|r| r.weighted_benefit()).sum();

            let mut opt = base.clone();
            compile(&mut opt, &model, OptLevel::Dbds, &cfg);
            let saving = dynamic_cycles(&base, &w, &model) - dynamic_cycles(&opt, &w, &model);
            predicted_benefit.push(predicted);
            measured_saving.push(saving.max(0.0));
        }
    }

    println!(
        "Estimator validation (§8 future work), n = {}\n",
        est_cycles.len()
    );
    println!(
        "{:<46} | {:>9} | {:>9}",
        "correlation", "Pearson r", "Spearman"
    );
    println!("{}", "-".repeat(70));
    println!(
        "{:<46} | {:>9.3} | {:>9.3}",
        "static weighted cycles vs dynamic cycles",
        pearson(&est_cycles, &real_cycles),
        spearman(&est_cycles, &real_cycles)
    );
    println!(
        "{:<46} | {:>9.3} | {:>9.3}",
        "static size estimate vs machine-code bytes",
        pearson(&est_size, &real_size),
        spearman(&est_size, &real_size)
    );
    println!(
        "{:<46} | {:>9.3} | {:>9.3}",
        "predicted duplication benefit vs measured",
        pearson(&predicted_benefit, &measured_saving),
        spearman(&predicted_benefit, &measured_saving)
    );
}
