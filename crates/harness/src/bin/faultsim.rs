//! Deterministic fault-injection sweep over the workload suites.
//!
//! For every seeded [`FaultPlan`] (each injection site × fault kind,
//! firing both at the first hit and at a later seed-derived one), every
//! workload is compiled under the *DBDS* configuration with the plan
//! armed, then checked against the three robustness guarantees:
//!
//! 1. the process never panics (injected panics are caught inside the
//!    phase),
//! 2. the final graph verifies, and
//! 3. the interpreter outcomes match the no-duplication baseline.
//!
//! Exit status is non-zero if any check fails.
//!
//! The per-plan workload loop runs on the unit-level compilation queue
//! (`DBDS_UNIT_THREADS`, default 1): arming is thread-local, so each
//! unit arms the plan on whichever worker compiles it and disarms before
//! the worker moves on — a fault contained in one unit can never leak
//! into a neighbor. Results are committed in submission order, so stdout
//! is byte-identical for every thread count (CI compares the sequential
//! and threaded sweeps with `cmp`).
//!
//! ```text
//! cargo run --release -p dbds-harness --features fault-injection --bin faultsim [-- <seed>]
//! ```

use dbds_core::faultinject::{arm, disarm, FaultPlan};
use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_harness::run_units;
use dbds_ir::{execute, verify, Outcome};
use dbds_workloads::all_workloads;

/// What one `(plan, workload)` unit reported, committed in submission
/// order so the sweep's output is deterministic.
struct UnitReport {
    fired: bool,
    bailouts: usize,
    undo_rollbacks: u64,
    failures: Vec<String>,
}

fn main() {
    let seed: u64 = match std::env::args().nth(1) {
        None => 0xDBD5,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("faultsim: error: seed must be a u64, got {s:?}");
                std::process::exit(2);
            }
        },
    };
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let workloads = all_workloads();
    let plan = cfg.pool_plan(workloads.len());
    let unit_cfg = &plan.per_unit;
    // Stderr only: stdout must stay byte-identical across (unit, sim)
    // splits.
    eprintln!(
        "faultsim: scheduler {}x{} (unit x sim workers)",
        plan.unit_workers, plan.sim_workers
    );

    // The ground truth each faulted compilation must still match: the
    // baseline (no duplication, no faults) interpreter outcomes.
    let (baselines, _, _): (Vec<Vec<Outcome>>, _, _) = run_units(&plan, &workloads, |_, w| {
        let mut g = w.graph.clone();
        compile(&mut g, &model, OptLevel::Baseline, unit_cfg);
        w.inputs.iter().map(|i| execute(&g, i).outcome).collect()
    });

    let plans = FaultPlan::sweep(seed);
    println!(
        "faultsim: seed {seed:#x}, {} plans x {} workloads",
        plans.len(),
        workloads.len()
    );

    let mut failures = 0usize;
    let mut fired_total = 0usize;
    let mut bailouts_total = 0usize;
    let mut undo_rollbacks_total = 0u64;
    for fault_plan in &plans {
        // Each unit arms on its own worker thread and disarms before the
        // worker claims the next unit — per-unit fault ownership. Stolen
        // DST chunks stay correct because fault decisions are taken at
        // collect time on the unit's worker and carried in the task.
        let (reports, _, _) = run_units(&plan, &workloads, |i, w| {
            arm(fault_plan.clone());
            let mut g = w.graph.clone();
            let stats = compile(&mut g, &model, OptLevel::Dbds, unit_cfg);
            let (_hits, fired) = disarm();
            let mut unit = UnitReport {
                fired,
                bailouts: stats.bailouts.len(),
                undo_rollbacks: stats.undo_rollbacks,
                failures: Vec::new(),
            };

            if let Err(e) = verify(&g) {
                unit.failures.push(format!(
                    "FAIL {}/{} nth={} on {}: final graph does not verify: {}",
                    fault_plan.site,
                    fault_plan.kind.name(),
                    fault_plan.nth,
                    w.name,
                    e.summary()
                ));
                return unit;
            }
            for (input, expected) in w.inputs.iter().zip(&baselines[i]) {
                let got = execute(&g, input).outcome;
                if &got != expected {
                    unit.failures.push(format!(
                        "FAIL {}/{} nth={} on {}: outcome diverged from baseline \
                         ({got:?} vs {expected:?})",
                        fault_plan.site,
                        fault_plan.kind.name(),
                        fault_plan.nth,
                        w.name,
                    ));
                    break;
                }
            }
            unit
        });

        let mut fired_here = 0usize;
        for r in &reports {
            fired_here += usize::from(r.fired);
            bailouts_total += r.bailouts;
            undo_rollbacks_total += r.undo_rollbacks;
            failures += r.failures.len();
            for f in &r.failures {
                eprintln!("{f}");
            }
        }
        fired_total += fired_here;
        println!(
            "  {:<22} {:<16} nth={}  fired in {:>3}/{} workloads",
            fault_plan.site,
            fault_plan.kind.name(),
            fault_plan.nth,
            fired_here,
            workloads.len()
        );
    }

    println!(
        "faultsim: {} plans swept, {fired_total} armed faults fired, \
         {bailouts_total} bailout records, {undo_rollbacks_total} undo rollbacks, \
         {failures} failures",
        plans.len()
    );
    assert!(
        fired_total > 0,
        "no fault ever fired: the sweep is not exercising the injection points"
    );
    // The recovery path under test *is* the undo log now: every contained
    // mid-transform fault must have rolled a transaction back. The count
    // is deterministic (all graph mutations happen on the coordinating
    // thread), so it is part of the `cmp`-gated stdout above.
    assert!(
        undo_rollbacks_total > 0,
        "no undo-log rollback happened: injected faults are not exercising \
         the transactional recovery path"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
