//! Deterministic fault-injection sweep over the workload suites.
//!
//! For every seeded [`FaultPlan`] (each injection site × fault kind,
//! firing both at the first hit and at a later seed-derived one), every
//! workload is compiled under the *DBDS* configuration with the plan
//! armed, then checked against the three robustness guarantees:
//!
//! 1. the process never panics (injected panics are caught inside the
//!    phase),
//! 2. the final graph verifies, and
//! 3. the interpreter outcomes match the no-duplication baseline.
//!
//! Exit status is non-zero if any check fails.
//!
//! ```text
//! cargo run --release -p dbds-harness --features fault-injection --bin faultsim [-- <seed>]
//! ```

use dbds_core::faultinject::{arm, disarm, FaultPlan};
use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_ir::{execute, verify, Outcome};
use dbds_workloads::all_workloads;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0xDBD5);
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let workloads = all_workloads();

    // The ground truth each faulted compilation must still match: the
    // baseline (no duplication, no faults) interpreter outcomes.
    let baselines: Vec<Vec<Outcome>> = workloads
        .iter()
        .map(|w| {
            let mut g = w.graph.clone();
            compile(&mut g, &model, OptLevel::Baseline, &cfg);
            w.inputs.iter().map(|i| execute(&g, i).outcome).collect()
        })
        .collect();

    let plans = FaultPlan::sweep(seed);
    println!(
        "faultsim: seed {seed:#x}, {} plans x {} workloads",
        plans.len(),
        workloads.len()
    );

    let mut failures = 0usize;
    let mut fired_total = 0usize;
    let mut bailouts_total = 0usize;
    for plan in &plans {
        let mut fired_here = 0usize;
        for (w, baseline) in workloads.iter().zip(&baselines) {
            arm(plan.clone());
            let mut g = w.graph.clone();
            let stats = compile(&mut g, &model, OptLevel::Dbds, &cfg);
            let (_hits, fired) = disarm();
            fired_here += usize::from(fired);
            bailouts_total += stats.bailouts.len();

            if let Err(e) = verify(&g) {
                failures += 1;
                eprintln!(
                    "FAIL {}/{} nth={} on {}: final graph does not verify: {}",
                    plan.site,
                    plan.kind.name(),
                    plan.nth,
                    w.name,
                    e.summary()
                );
                continue;
            }
            for (input, expected) in w.inputs.iter().zip(baseline) {
                let got = execute(&g, input).outcome;
                if &got != expected {
                    failures += 1;
                    eprintln!(
                        "FAIL {}/{} nth={} on {}: outcome diverged from baseline \
                         ({got:?} vs {expected:?})",
                        plan.site,
                        plan.kind.name(),
                        plan.nth,
                        w.name,
                    );
                    break;
                }
            }
        }
        fired_total += fired_here;
        println!(
            "  {:<22} {:<16} nth={}  fired in {:>3}/{} workloads",
            plan.site,
            plan.kind.name(),
            plan.nth,
            fired_here,
            workloads.len()
        );
    }

    println!(
        "faultsim: {} plans swept, {fired_total} armed faults fired, \
         {bailouts_total} bailout records, {failures} failures",
        plans.len()
    );
    assert!(
        fired_total > 0,
        "no fault ever fired: the sweep is not exercising the injection points"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
