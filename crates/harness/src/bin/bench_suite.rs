//! Emits `BENCH_suite.json`: the whole-corpus compilation pipeline swept
//! over the `unit_threads` × `sim_threads` matrix, with wall-clock per
//! configuration next to the deterministic counters that prove every
//! configuration did the same work. The perf trajectory of the suite
//! pipeline is tracked by committing this file per revision (schema
//! documented in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p dbds-harness --bin bench_suite [-- <out-path|->]
//! ```
//!
//! The deterministic counters (`work`, `candidates`, `duplications`,
//! `raw_cycles`, summed over every suite × benchmark × configuration)
//! must be identical across the matrix — the bin exits non-zero if any
//! combination disagrees with the sequential baseline. Wall-clock fields
//! (`wall_ms`, `unit_pool_ms`) are *not* deterministic: they depend on
//! the machine, its load, and `hardware_threads` (on a single-core host
//! the threaded rows bound pool overhead instead of showing overlap).

use dbds_core::DbdsConfig;
use dbds_costmodel::CostModel;
use dbds_harness::{run_suite, IcacheModel, SuiteResult};
use dbds_workloads::Suite;
use std::fmt::Write as _;
use std::time::Instant;

/// The thread-count matrix the sweep covers: `(unit_threads,
/// sim_threads)`. The `(1, 1)` row is the sequential baseline every
/// other row's counters must match.
const MATRIX: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

/// Deterministic whole-corpus work counters, summed over every
/// suite × benchmark × configuration.
#[derive(PartialEq, Eq, Clone, Copy, Debug, Default)]
struct Counters {
    work: u64,
    candidates: u64,
    duplications: u64,
    raw_cycles: u64,
}

fn counters(results: &[SuiteResult]) -> Counters {
    let mut c = Counters::default();
    for r in results {
        for row in &r.rows {
            for m in [&row.baseline, &row.dbds, &row.dupalot] {
                c.work += m.work;
                c.candidates += m.stats.candidates as u64;
                c.duplications += m.stats.duplications as u64;
                c.raw_cycles += m.raw_cycles;
            }
        }
    }
    c
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_suite.json".to_string());
    let model = CostModel::new();
    let icache = IcacheModel::default();
    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    let mut rows = Vec::new();
    for (unit, sim) in MATRIX {
        let cfg = DbdsConfig {
            unit_threads: unit,
            sim_threads: sim,
            ..DbdsConfig::default()
        };
        let t = Instant::now();
        let results: Vec<SuiteResult> = Suite::ALL
            .iter()
            .map(|&s| run_suite(s, &model, &cfg, &icache))
            .collect();
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let unit_pool_ms: f64 = results.iter().map(|r| r.unit_par_ns as f64 / 1e6).sum();
        eprintln!(
            "bench_suite: unit_threads={unit} sim_threads={sim}: {wall_ms:.1} ms wall, \
             {unit_pool_ms:.1} ms in the unit pool"
        );
        rows.push((unit, sim, counters(&results), wall_ms, unit_pool_ms));
    }

    let base = rows[0].2;
    for &(unit, sim, c, _, _) in &rows {
        if c != base {
            eprintln!(
                "bench_suite: DETERMINISM VIOLATION at unit_threads={unit} \
                 sim_threads={sim}: {c:?} != sequential {base:?}"
            );
            std::process::exit(1);
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"schema\": \"{}\",",
        dbds_harness::BENCH_SUITE_SCHEMA
    );
    let _ = writeln!(out, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(out, "  \"workloads\": 48,");
    let _ = writeln!(out, "  \"configs_per_workload\": 3,");
    let _ = writeln!(out, "  \"runs\": [");
    let last = rows.len() - 1;
    for (i, (unit, sim, c, wall_ms, unit_pool_ms)) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"unit_threads\": {unit},");
        let _ = writeln!(out, "      \"sim_threads\": {sim},");
        let _ = writeln!(out, "      \"work\": {},", c.work);
        let _ = writeln!(out, "      \"candidates\": {},", c.candidates);
        let _ = writeln!(out, "      \"duplications\": {},", c.duplications);
        let _ = writeln!(out, "      \"raw_cycles\": {},", c.raw_cycles);
        let _ = writeln!(out, "      \"wall_ms\": {wall_ms:.3},");
        let _ = writeln!(out, "      \"unit_pool_ms\": {unit_pool_ms:.3}");
        let _ = writeln!(out, "    }}{}", if i < last { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    if path == "-" {
        print!("{out}");
    } else if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}
