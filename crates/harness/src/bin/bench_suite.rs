//! Emits `BENCH_suite.json`: the whole-corpus compilation pipeline swept
//! over candidate `(unit_threads, sim_threads)` splits of the shared 2-D
//! scheduler — the explicit matrix plus the adaptive `(0, 0)` plan —
//! with wall-clock per configuration next to the deterministic counters
//! that prove every split did the same work. The winner by wall clock is
//! recorded as the `chosen` plan. The perf trajectory of the suite
//! pipeline is tracked by committing this file per revision (schema
//! documented in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p dbds-harness --bin bench_suite [-- <out-path|->]
//! ```
//!
//! The deterministic counters (`work`, `candidates`, `duplications`,
//! `raw_cycles`, summed over every suite × benchmark × configuration)
//! must be identical across the sweep — the bin exits non-zero if any
//! split disagrees with the sequential baseline, and a split is only
//! eligible to win on wall clock after passing that gate. Wall-clock
//! fields (`wall_ms`, `unit_pool_ms`) are *not* deterministic: they
//! depend on the machine, its load, and `hardware_threads` (on a
//! single-core host the threaded rows bound scheduler overhead instead
//! of showing overlap).

use dbds_core::DbdsConfig;
use dbds_costmodel::CostModel;
use dbds_harness::{run_suite, IcacheModel, SuiteResult};
use dbds_workloads::Suite;
use std::fmt::Write as _;
use std::time::Instant;

/// The candidate splits the sweep covers: `(unit_threads, sim_threads)`
/// as requested (0 = adaptive). The `(1, 1)` row is the sequential
/// baseline every other row's counters must match.
const MATRIX: [(usize, usize); 5] = [(1, 1), (1, 4), (4, 1), (4, 4), (0, 0)];

/// Deterministic whole-corpus work counters, summed over every
/// suite × benchmark × configuration.
#[derive(PartialEq, Eq, Clone, Copy, Debug, Default)]
struct Counters {
    work: u64,
    candidates: u64,
    duplications: u64,
    raw_cycles: u64,
}

fn counters(results: &[SuiteResult]) -> Counters {
    let mut c = Counters::default();
    for r in results {
        for row in &r.rows {
            for m in [&row.baseline, &row.dbds, &row.dupalot] {
                c.work += m.work;
                c.candidates += m.stats.candidates as u64;
                c.duplications += m.stats.duplications as u64;
                c.raw_cycles += m.raw_cycles;
            }
        }
    }
    c
}

/// One measured split of the sweep.
struct Run {
    /// Requested values (0 = adaptive).
    unit_threads: usize,
    sim_threads: usize,
    /// What the planner resolved them to on this machine.
    unit_workers: usize,
    sim_workers: usize,
    counters: Counters,
    wall_ms: f64,
    unit_pool_ms: f64,
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_suite.json".to_string());
    let model = CostModel::new();
    let icache = IcacheModel::default();
    let hardware_threads = dbds_core::par::hardware_threads();

    let mut runs = Vec::new();
    for (unit, sim) in MATRIX {
        let cfg = DbdsConfig {
            unit_threads: unit,
            sim_threads: sim,
            ..DbdsConfig::default()
        };
        let t = Instant::now();
        let results: Vec<SuiteResult> = Suite::ALL
            .iter()
            .map(|&s| run_suite(s, &model, &cfg, &icache))
            .collect();
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let unit_pool_ms: f64 = results.iter().map(|r| r.unit_par_ns as f64 / 1e6).sum();
        // Every suite in the corpus has more workloads than any sane
        // worker count, so the resolved split is suite-invariant; take
        // it from the first result.
        let (unit_workers, sim_workers) = results
            .first()
            .map_or((1, 0), |r| (r.unit_threads, r.sim_workers));
        eprintln!(
            "bench_suite: requested {unit}x{sim} -> scheduler {unit_workers}x{sim_workers}: \
             {wall_ms:.1} ms wall, {unit_pool_ms:.1} ms in the unit pool"
        );
        runs.push(Run {
            unit_threads: unit,
            sim_threads: sim,
            unit_workers,
            sim_workers,
            counters: counters(&results),
            wall_ms,
            unit_pool_ms,
        });
    }

    // Hard determinism gate: a split whose counters diverge from the
    // sequential baseline fails the whole sweep (and can never win).
    let base = runs[0].counters;
    for run in &runs {
        if run.counters != base {
            eprintln!(
                "bench_suite: DETERMINISM VIOLATION at unit_threads={} sim_threads={}: \
                 {:?} != sequential {:?}",
                run.unit_threads, run.sim_threads, run.counters, base
            );
            std::process::exit(1);
        }
    }

    // All splits passed the gate; the winner is pure wall clock.
    let chosen = runs
        .iter()
        .min_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms))
        .expect("the matrix is never empty");
    eprintln!(
        "bench_suite: chosen plan {}x{} (requested {}x{}), {:.1} ms",
        chosen.unit_workers,
        chosen.sim_workers,
        chosen.unit_threads,
        chosen.sim_threads,
        chosen.wall_ms
    );

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"schema\": \"{}\",",
        dbds_harness::BENCH_SUITE_SCHEMA
    );
    let _ = writeln!(out, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(out, "  \"workloads\": 48,");
    let _ = writeln!(out, "  \"configs_per_workload\": 3,");
    let _ = writeln!(out, "  \"chosen\": {{");
    let _ = writeln!(out, "    \"unit_threads\": {},", chosen.unit_threads);
    let _ = writeln!(out, "    \"sim_threads\": {},", chosen.sim_threads);
    let _ = writeln!(out, "    \"unit_workers\": {},", chosen.unit_workers);
    let _ = writeln!(out, "    \"sim_workers\": {},", chosen.sim_workers);
    let _ = writeln!(out, "    \"wall_ms\": {:.3}", chosen.wall_ms);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"runs\": [");
    let last = runs.len() - 1;
    for (i, run) in runs.iter().enumerate() {
        let c = run.counters;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"unit_threads\": {},", run.unit_threads);
        let _ = writeln!(out, "      \"sim_threads\": {},", run.sim_threads);
        let _ = writeln!(out, "      \"unit_workers\": {},", run.unit_workers);
        let _ = writeln!(out, "      \"sim_workers\": {},", run.sim_workers);
        let _ = writeln!(out, "      \"work\": {},", c.work);
        let _ = writeln!(out, "      \"candidates\": {},", c.candidates);
        let _ = writeln!(out, "      \"duplications\": {},", c.duplications);
        let _ = writeln!(out, "      \"raw_cycles\": {},", c.raw_cycles);
        let _ = writeln!(out, "      \"wall_ms\": {:.3},", run.wall_ms);
        let _ = writeln!(out, "      \"unit_pool_ms\": {:.3}", run.unit_pool_ms);
        let _ = writeln!(out, "    }}{}", if i < last { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");

    if path == "-" {
        print!("{out}");
    } else if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}
