//! Small statistics helpers for the estimator-validation experiment
//! (§8: "we plan to validate the presented IR performance estimator …
//! validating a correlation between our benefit and cost estimations and
//! the real performance and code size of an application").

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 for degenerate inputs (fewer than two points or zero
/// variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must pair up");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation: Pearson over the rank transforms (average
/// ranks for ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        // Group ties and assign the average rank.
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 6.0, 3.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_spearman_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[5.0, 1.0, 5.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }
}
