//! Text rendering of the paper's figures and tables.
//!
//! Each suite figure (Figures 5–8) becomes a table with one row per
//! benchmark and the three metrics for both configurations, followed by
//! the geometric-mean block the paper prints beneath each figure.

use crate::metrics::geomean_pct;
use crate::runner::{Metric, SuiteResult};
use dbds_core::OptLevel;
use dbds_server::SessionReport;
use std::fmt::Write as _;

/// Renders one suite's figure-style table.
pub fn format_figure(result: &SuiteResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure {}: Duplication {} — peak performance (higher is better),",
        result.suite.figure(),
        result.suite.title()
    );
    let _ = writeln!(
        out,
        "compile time (lower is better), code size (lower is better).\n"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "peak", "", "compile", "", "size", ""
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "", "DBDS", "dupalot", "DBDS", "dupalot", "DBDS", "dupalot"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for row in &result.rows {
        let _ = writeln!(
            out,
            "{:<14} | {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}%",
            row.name,
            row.peak_pct(OptLevel::Dbds),
            row.peak_pct(OptLevel::Dupalot),
            row.compile_pct(OptLevel::Dbds),
            row.compile_pct(OptLevel::Dupalot),
            row.size_pct(OptLevel::Dbds),
            row.size_pct(OptLevel::Dupalot),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(78));
    let _ = writeln!(out, "Geometric Mean");
    let _ = writeln!(
        out,
        "{:<14} | {:>16} | {:>16} | {:>16}",
        "Configuration", "peak performance", "compile time", "code size"
    );
    for level in [OptLevel::Dbds, OptLevel::Dupalot] {
        let _ = writeln!(
            out,
            "{:<14} | {:>15.2}% | {:>15.2}% | {:>15.2}%",
            level.name(),
            result.geomean(level, Metric::Peak),
            result.geomean(level, Metric::CompileTime),
            result.geomean(level, Metric::CodeSize),
        );
    }
    let _ = writeln!(
        out,
        "\nAnalysis cache (hits / misses / invalidations; forward | reverse)"
    );
    for level in [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot] {
        let c = result.cache_totals(level);
        let _ = writeln!(
            out,
            "{:<14} | {:>8} / {:>6} / {:>6} | {:>8} / {:>6} / {:>6}",
            level.name(),
            c.hits,
            c.misses,
            c.invalidations,
            c.rev_hits,
            c.rev_misses,
            c.rev_invalidations
        );
    }
    let _ = writeln!(
        out,
        "\nBranch splitting (candidates / applied / frontier violations)"
    );
    for level in [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot] {
        let (mut cand, mut applied, mut viol) = (0usize, 0usize, 0usize);
        for row in &result.rows {
            let s = &row.pick_metrics(level).stats;
            cand += s.split_candidates;
            applied += s.split_applied;
            viol += s.frontier_violations;
        }
        let _ = writeln!(
            out,
            "{:<14} | {:>8} / {:>6} / {:>6}",
            level.name(),
            cand,
            applied,
            viol
        );
    }
    let _ = writeln!(
        out,
        "\nBailouts (total/recovered; fuel, deadline, verifier, panic, size)"
    );
    for level in [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot] {
        let b = result.bailout_totals(level);
        let _ = writeln!(
            out,
            "{:<14} | {:>5} / {:<5} ({}, {}, {}, {}, {})",
            level.name(),
            b.total(),
            b.recovered,
            b.fuel_exhausted,
            b.deadline_exceeded,
            b.verifier_rejected,
            b.transform_panicked,
            b.size_budget_exceeded,
        );
    }
    out
}

/// Renders the cross-suite summary (the abstract's headline numbers:
/// mean peak +5.89 %, compile time +18.44 %, code size +9.93 % in the
/// paper's setup).
pub fn format_summary(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Cross-suite summary (geometric means over all benchmarks)\n"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>16} | {:>16} | {:>16}",
        "Configuration", "peak performance", "compile time", "code size"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for level in [OptLevel::Dbds, OptLevel::Dupalot] {
        let mut peak = Vec::new();
        let mut ct = Vec::new();
        let mut cs = Vec::new();
        for r in results {
            for row in &r.rows {
                peak.push(row.peak_pct(level));
                ct.push(row.compile_pct(level));
                cs.push(row.size_pct(level));
            }
        }
        let _ = writeln!(
            out,
            "{:<14} | {:>15.2}% | {:>15.2}% | {:>15.2}%",
            level.name(),
            geomean_pct(&peak),
            geomean_pct(&ct),
            geomean_pct(&cs),
        );
    }
    // Maximum observed speedup (the paper reports "up to 40%").
    let max_dbds = results
        .iter()
        .flat_map(|r| &r.rows)
        .map(|row| row.peak_pct(OptLevel::Dbds))
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "\nMaximum DBDS peak performance increase: {max_dbds:.2}%"
    );
    out
}

/// Renders the machine-readable suite report: every *deterministic*
/// measurement of every benchmark/configuration, as stable-ordered JSON
/// (hand-rolled — the build has no serde).
///
/// Two invariants CI's determinism gate relies on:
///
/// - **No timing fields.** `compile_ns`/`sim_ns`/`par_ns`/
///   `tradeoff_par_ns`/`unit_par_ns`/`guard_ns`/`undo_ns` are excluded,
///   so two runs over identical inputs produce byte-identical output.
/// - **`sim_threads` and `unit_threads` each sit alone on their own
///   line** (the only thread-count-dependent values), so reports taken
///   at different thread counts can be diffed with those two lines
///   filtered out.
///
/// When `store` carries the result of a compile-cache session
/// (`figures --json --cache …`), the report embeds its per-pass and
/// total service counters; those are deterministic too (store traffic
/// is sequential in submission order), so the block is covered by the
/// same byte-identity gate. Without a session the field is `null` so
/// the schema is stable either way.
pub fn format_json(
    results: &[SuiteResult],
    sim_threads: usize,
    unit_threads: usize,
    store: Option<&SessionReport>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"sim_threads\": {sim_threads},");
    let _ = writeln!(out, "  \"unit_threads\": {unit_threads},");
    match store {
        None => {
            let _ = writeln!(out, "  \"store\": null,");
        }
        Some(session) => {
            let _ = writeln!(out, "  \"store\": {{");
            let _ = writeln!(out, "    \"backend\": {},", json_str(&session.backend));
            let _ = writeln!(out, "    \"evictions\": {},", session.evictions);
            let _ = writeln!(out, "    \"passes\": [");
            for (pi, pass) in session.passes.iter().enumerate() {
                let _ = writeln!(out, "      {{");
                let _ = writeln!(out, "        \"pass\": {},", pi + 1);
                let _ = writeln!(out, "        \"served\": {},", pass.served);
                for (name, value) in pass.counters.fields() {
                    let _ = writeln!(out, "        \"{name}\": {value},");
                }
                let _ = writeln!(
                    out,
                    "        \"hit_rate_pct\": {:?}",
                    session.hit_rate(pi) * 100.0
                );
                let _ = writeln!(
                    out,
                    "      }}{}",
                    if pi + 1 < session.passes.len() {
                        ","
                    } else {
                        ""
                    }
                );
            }
            let _ = writeln!(out, "    ],");
            let _ = writeln!(out, "    \"totals\": {{");
            let totals = session.totals.fields();
            for (i, (name, value)) in totals.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      \"{name}\": {value}{}",
                    if i + 1 < totals.len() { "," } else { "" }
                );
            }
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }},");
        }
    }
    let _ = writeln!(out, "  \"suites\": [");
    for (si, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"suite\": {},", json_str(r.suite.id()));
        let _ = writeln!(out, "      \"benchmarks\": [");
        for (bi, row) in r.rows.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"name\": {},", json_str(&row.name));
            let _ = writeln!(out, "          \"configs\": [");
            let levels = [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot];
            for (li, &level) in levels.iter().enumerate() {
                let m = match level {
                    OptLevel::Baseline => &row.baseline,
                    OptLevel::Dbds => &row.dbds,
                    _ => &row.dupalot,
                };
                let s = &m.stats;
                let recovered = s.bailouts.iter().filter(|b| b.recovered).count();
                let _ = writeln!(out, "            {{");
                let _ = writeln!(out, "              \"level\": {},", json_str(level.name()));
                let _ = writeln!(out, "              \"raw_cycles\": {},", m.raw_cycles);
                let _ = writeln!(out, "              \"peak_cycles\": {:?},", m.peak_cycles);
                let _ = writeln!(out, "              \"code_size\": {},", m.code_size);
                let _ = writeln!(out, "              \"work\": {},", m.work);
                let _ = writeln!(out, "              \"iterations\": {},", s.iterations);
                let _ = writeln!(out, "              \"candidates\": {},", s.candidates);
                let _ = writeln!(out, "              \"duplications\": {},", s.duplications);
                let _ = writeln!(out, "              \"final_size\": {},", s.final_size);
                let _ = writeln!(out, "              \"cache_hits\": {},", s.cache.hits);
                let _ = writeln!(out, "              \"cache_misses\": {},", s.cache.misses);
                let _ = writeln!(
                    out,
                    "              \"cache_invalidations\": {},",
                    s.cache.invalidations
                );
                let _ = writeln!(
                    out,
                    "              \"rev_cache_hits\": {},",
                    s.cache.rev_hits
                );
                let _ = writeln!(
                    out,
                    "              \"rev_cache_misses\": {},",
                    s.cache.rev_misses
                );
                let _ = writeln!(
                    out,
                    "              \"rev_cache_invalidations\": {},",
                    s.cache.rev_invalidations
                );
                let _ = writeln!(
                    out,
                    "              \"split_candidates\": {},",
                    s.split_candidates
                );
                let _ = writeln!(out, "              \"split_applied\": {},", s.split_applied);
                let _ = writeln!(
                    out,
                    "              \"frontier_violations\": {},",
                    s.frontier_violations
                );
                let _ = writeln!(
                    out,
                    "              \"mispredictions\": {},",
                    s.mispredictions
                );
                let _ = writeln!(out, "              \"stale_skips\": {},", s.stale_skips);
                let _ = writeln!(out, "              \"undo_edits\": {},", s.undo_edits);
                let _ = writeln!(
                    out,
                    "              \"undo_rollbacks\": {},",
                    s.undo_rollbacks
                );
                let _ = writeln!(out, "              \"undo_peak\": {},", s.undo_peak);
                let _ = writeln!(out, "              \"bailouts\": {},", s.bailouts.len());
                let _ = writeln!(out, "              \"bailouts_recovered\": {recovered}");
                let _ = writeln!(
                    out,
                    "            }}{}",
                    if li + 1 < levels.len() { "," } else { "" }
                );
            }
            let _ = writeln!(out, "          ]");
            let _ = writeln!(
                out,
                "        }}{}",
                if bi + 1 < r.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(
            out,
            "    }}{}",
            if si + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Minimal JSON string escaping (names and ids are plain ASCII, but stay
/// safe on quotes and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One row of the backtracking-vs-simulation comparison (§3.1).
#[derive(Clone, Debug)]
pub struct BacktrackRow {
    /// Benchmark name.
    pub name: String,
    /// DBDS compile time (ns).
    pub dbds_ns: u128,
    /// Backtracking compile time (ns).
    pub backtracking_ns: u128,
    /// Duplications performed by each.
    pub dbds_duplications: usize,
    /// Duplications kept by backtracking.
    pub backtracking_accepted: usize,
}

/// Renders the §3.1 comparison table: the paper measured the whole-graph
/// copy to make backtracking ~10× slower to compile.
pub fn format_backtracking(rows: &[BacktrackRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Backtracking vs simulation compile time (§3.1: copying increased\ncompilation time by a factor of 10)\n"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>12} | {:>14} | {:>8} | {:>10}",
        "benchmark", "DBDS (ms)", "backtrack (ms)", "ratio", "dups (D/B)"
    );
    let _ = writeln!(out, "{}", "-".repeat(70));
    let mut ratios = Vec::new();
    for r in rows {
        let ratio = r.backtracking_ns as f64 / r.dbds_ns.max(1) as f64;
        ratios.push((1.0 + ratio) * 100.0 - 100.0); // store as pct-like for geomean reuse
        let _ = writeln!(
            out,
            "{:<14} | {:>12.3} | {:>14.3} | {:>7.1}x | {:>4}/{:<5}",
            r.name,
            r.dbds_ns as f64 / 1e6,
            r.backtracking_ns as f64 / 1e6,
            ratio,
            r.dbds_duplications,
            r.backtracking_accepted,
        );
    }
    let geo_ratio = (geomean_pct(&ratios) + 100.0) / 100.0;
    let _ = writeln!(out, "{}", "-".repeat(70));
    let _ = writeln!(out, "Geometric mean compile-time ratio: {geo_ratio:.1}x");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::IcacheModel;
    use crate::runner::run_suite;
    use dbds_core::DbdsConfig;
    use dbds_costmodel::CostModel;
    use dbds_workloads::Suite;

    #[test]
    fn figure_table_contains_all_benchmarks_and_means() {
        let result = run_suite(
            Suite::Micro,
            &CostModel::new(),
            &DbdsConfig::default(),
            &IcacheModel::default(),
        );
        let text = format_figure(&result);
        for name in Suite::Micro.benchmark_names() {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("Geometric Mean"));
        assert!(text.contains("dupalot"));
        assert!(text.contains("Figure 7"));
        assert!(text.contains("Analysis cache"), "{text}");
        assert!(text.contains("Bailouts"), "{text}");
        // No budgets and no faults: the only records allowed are
        // recovered size-budget rejections from the trade-off tier.
        let bailouts = result.bailout_totals(dbds_core::OptLevel::Dbds);
        assert_eq!(bailouts.total(), bailouts.size_budget_exceeded, "{text}");
        assert_eq!(bailouts.total(), bailouts.recovered, "{text}");
        // Every configuration computed dominators at least once per
        // benchmark, and the DBDS loop re-used them at least once.
        let cache = result.cache_totals(dbds_core::OptLevel::Dbds);
        assert!(cache.misses as usize >= result.rows.len());
        assert!(cache.hits > 0);
        // The reverse-CFG analyses (postdom / frontiers / control-dep)
        // are live across the suite: computed at least once and then
        // revalidated as pure hits by the CDG cross-check and the
        // interference frontiers.
        assert!(cache.rev_misses > 0, "{cache:?}");
        assert!(cache.rev_hits > 0, "{cache:?}");
        assert!(text.contains("Branch splitting"), "{text}");
        // The split corpus rides in the Micro suite, so DBDS applies
        // branch splits somewhere in this figure.
        let split_applied: usize = result
            .rows
            .iter()
            .map(|r| {
                r.pick_metrics(dbds_core::OptLevel::Dbds)
                    .stats
                    .split_applied
            })
            .sum();
        assert!(split_applied >= 1, "{text}");
    }

    #[test]
    fn summary_mentions_max_speedup() {
        let result = run_suite(
            Suite::Micro,
            &CostModel::new(),
            &DbdsConfig::default(),
            &IcacheModel::default(),
        );
        let text = format_summary(&[result]);
        assert!(text.contains("Maximum DBDS peak performance increase"));
    }

    #[test]
    fn json_report_identical_across_thread_counts() {
        let model = CostModel::new();
        let ic = IcacheModel::default();
        let run = |sim: usize, unit: usize| {
            let cfg = DbdsConfig {
                sim_threads: sim,
                unit_threads: unit,
                ..DbdsConfig::default()
            };
            let results = vec![run_suite(Suite::Micro, &model, &cfg, &ic)];
            format_json(&results, sim, unit, None)
        };
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"sim_threads\"") && !l.contains("\"unit_threads\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        // The full unit_threads × sim_threads matrix — including the
        // adaptive (0, 0) plan, whatever it resolves to here — must
        // agree modulo the two header lines.
        let one = run(1, 1);
        for (sim, unit) in [(4, 1), (1, 4), (4, 4), (0, 0)] {
            let other = run(sim, unit);
            // Only the thread-count header lines may differ...
            assert_ne!(one, other, "sim={sim} unit={unit}");
            assert_eq!(strip(&one), strip(&other), "sim={sim} unit={unit}");
        }
        // ...and a rerun at the same counts is byte-identical (no timing
        // leaks into the report).
        assert_eq!(run(4, 4), run(4, 4));
        // Shape sanity: well-formed-ish JSON with all three configs.
        assert!(one.trim_start().starts_with('{') && one.trim_end().ends_with('}'));
        for level in ["baseline", "dbds", "dupalot"] {
            assert!(one.contains(&format!("\"level\": \"{level}\"")), "{one}");
        }
        // The prediction-audit counter is part of the stable schema.
        assert!(one.contains("\"mispredictions\""), "{one}");
        // The undo-log counters are part of the stable schema (they are
        // deterministic: all graph mutations happen on the coordinating
        // thread, so the gate covers them across the thread matrix).
        for key in ["\"undo_edits\"", "\"undo_rollbacks\"", "\"undo_peak\""] {
            assert!(one.contains(key), "{one}");
        }
        // The reverse-cache and branch-splitting counters are part of
        // the stable schema, and being deterministic they sit under the
        // same byte-identity gate as everything else.
        for key in [
            "\"rev_cache_hits\"",
            "\"rev_cache_misses\"",
            "\"rev_cache_invalidations\"",
            "\"split_candidates\"",
            "\"split_applied\"",
            "\"frontier_violations\"",
        ] {
            assert!(one.contains(key), "{one}");
        }
    }

    #[test]
    fn backtracking_table_formats() {
        let rows = vec![BacktrackRow {
            name: "demo".into(),
            dbds_ns: 1_000_000,
            backtracking_ns: 10_000_000,
            dbds_duplications: 3,
            backtracking_accepted: 2,
        }];
        let text = format_backtracking(&rows);
        assert!(text.contains("10.0x"), "{text}");
        assert!(text.contains("demo"));
    }
}
