//! The branch-splitting ablation: the whole Micro suite (which carries
//! the dedicated split corpus) compiled twice — once with the full
//! candidate set (*combined*: merge duplication + branch splitting) and
//! once with `enable_branch_splitting = false` (*merge-only*) — under
//! otherwise identical configuration.
//!
//! The CI gate asserts that combined dominates merge-only: on the
//! dedicated split benchmarks it must apply at least one branch split,
//! perform at least as many duplications, and strictly improve the
//! static cycle estimate (the shapes are sized so the trade-off tier
//! rejects plain merge duplication on them); merge-only must see zero
//! split candidates there; and nowhere may a frontier violation or a
//! semantic divergence appear.

use dbds_analysis::AnalysisCache;
use dbds_core::{compile, DbdsConfig, OptLevel, PhaseStats};
use dbds_costmodel::CostModel;
use dbds_ir::execute;
use dbds_workloads::{Suite, SPLIT_BENCHMARKS};
use std::fmt::Write as _;

/// One benchmark of the ablation, both configurations side by side.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: String,
    /// Whether this is one of the dedicated [`SPLIT_BENCHMARKS`].
    pub is_split_benchmark: bool,
    /// Duplications applied by the combined configuration.
    pub combined_dups: usize,
    /// Branch-split chains applied by the combined configuration.
    pub combined_splits: usize,
    /// Duplications applied by the merge-only configuration.
    pub merge_only_dups: usize,
    /// Branch-split candidates the merge-only configuration simulated
    /// (must be zero — the knob gates the continuation itself).
    pub merge_only_split_candidates: usize,
    /// Frontier violations across both configurations.
    pub frontier_violations: usize,
    /// Static weighted-cycle estimate after the combined phase.
    pub combined_cycles: f64,
    /// Static weighted-cycle estimate after the merge-only phase.
    pub merge_only_cycles: f64,
    /// Whether both compiled graphs computed the pristine outcomes on
    /// every input vector.
    pub outcomes_agree: bool,
}

/// The full ablation result.
#[derive(Clone, Debug)]
pub struct SplitAblation {
    /// One row per Micro benchmark, in suite order.
    pub rows: Vec<AblationRow>,
}

impl SplitAblation {
    /// The CI gate (see the module docs for the exact contract).
    pub fn gate_passes(&self) -> bool {
        self.rows.iter().all(|r| {
            let everywhere = r.frontier_violations == 0 && r.outcomes_agree;
            if r.is_split_benchmark {
                everywhere
                    && r.combined_splits >= 1
                    && r.merge_only_split_candidates == 0
                    && r.combined_dups >= r.merge_only_dups
                    && r.combined_cycles < r.merge_only_cycles
            } else {
                everywhere
            }
        })
    }
}

/// Runs the ablation over the Micro suite. Deterministic: both
/// configurations differ only in the `enable_branch_splitting` knob,
/// and nothing time- or thread-count-dependent enters the rows.
pub fn run_split_ablation(model: &CostModel, cfg: &DbdsConfig) -> SplitAblation {
    let workloads = Suite::Micro.workloads();
    let rows = workloads
        .iter()
        .map(|w| {
            let reference: Vec<_> = w
                .inputs
                .iter()
                .map(|i| execute(&w.graph, i).outcome)
                .collect();
            let run = |enable: bool| -> (PhaseStats, f64, bool) {
                let cfg = DbdsConfig {
                    enable_branch_splitting: enable,
                    ..cfg.clone()
                };
                let mut g = w.graph.clone();
                let stats = compile(&mut g, model, OptLevel::Dbds, &cfg);
                let cycles = model.weighted_cycles(&g, &mut AnalysisCache::new());
                let agree = w
                    .inputs
                    .iter()
                    .zip(&reference)
                    .all(|(i, r)| execute(&g, i).outcome == *r);
                (stats, cycles, agree)
            };
            let (combined, combined_cycles, combined_agree) = run(true);
            let (merge_only, merge_only_cycles, merge_only_agree) = run(false);
            AblationRow {
                name: w.name.clone(),
                is_split_benchmark: SPLIT_BENCHMARKS.contains(&w.name.as_str()),
                combined_dups: combined.duplications,
                combined_splits: combined.split_applied,
                merge_only_dups: merge_only.duplications,
                merge_only_split_candidates: merge_only.split_candidates,
                frontier_violations: combined.frontier_violations + merge_only.frontier_violations,
                combined_cycles,
                merge_only_cycles,
                outcomes_agree: combined_agree && merge_only_agree,
            }
        })
        .collect();
    SplitAblation { rows }
}

/// Renders the ablation as a text table plus the gate verdict.
pub fn format_split_ablation(ablation: &SplitAblation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Branch-splitting ablation (micro suite): combined vs merge-only\n"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>5} {:>6} | {:>5} | {:>12} {:>12} | {:>5}",
        "benchmark", "dups", "splits", "dups", "cycles", "cycles", "gate"
    );
    let _ = writeln!(
        out,
        "{:<14} | {:>12} | {:>5} | {:>12} {:>12} | {:>5}",
        "", "combined", "m-o", "combined", "merge-only", ""
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for r in &ablation.rows {
        let marker = if r.is_split_benchmark { "*" } else { " " };
        let _ = writeln!(
            out,
            "{:<13}{} | {:>5} {:>6} | {:>5} | {:>12.2} {:>12.2} | {:>5}",
            r.name,
            marker,
            r.combined_dups,
            r.combined_splits,
            r.merge_only_dups,
            r.combined_cycles,
            r.merge_only_cycles,
            if r.outcomes_agree && r.frontier_violations == 0 {
                "ok"
            } else {
                "FAIL"
            }
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(72));
    let _ = writeln!(
        out,
        "* dedicated split benchmark (merge duplication alone must be rejected)"
    );
    let _ = writeln!(
        out,
        "gate: {}",
        if ablation.gate_passes() {
            "combined dominates merge-only — passes"
        } else {
            "GATE FAILS"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_gate_passes_on_the_default_config() {
        let ablation = run_split_ablation(&CostModel::new(), &DbdsConfig::default());
        assert_eq!(ablation.rows.len(), 12);
        assert!(
            ablation.gate_passes(),
            "{}",
            format_split_ablation(&ablation)
        );
        // The three dedicated benchmarks are present and marked.
        let marked: Vec<_> = ablation
            .rows
            .iter()
            .filter(|r| r.is_split_benchmark)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(marked, SPLIT_BENCHMARKS);
    }

    #[test]
    fn ablation_is_deterministic_across_thread_counts() {
        let model = CostModel::new();
        let run = |sim: usize| {
            let cfg = DbdsConfig {
                sim_threads: sim,
                ..DbdsConfig::default()
            };
            format_split_ablation(&run_split_ablation(&model, &cfg))
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(run(4), run(4));
    }
}
