//! The `figures --lint` sweep: every workload in the corpus is linted
//! before and after the DBDS phase, the cached analyses are audited
//! against fresh recomputation, the simulation tier's estimates get the
//! cost-sanity lints, and the optimization tier's prediction audit
//! counter is aggregated. The result feeds the CI lint gate: the build
//! fails on any error-severity diagnostic or any misprediction.

use crate::runner::run_units;
use dbds_analysis::AnalysisCache;
use dbds_core::{lint_simulation, run_dbds, simulate, DbdsConfig, SelectionMode};
use dbds_costmodel::CostModel;
use dbds_ir::{Diagnostic, LintId, Severity};
use dbds_workloads::{Suite, Workload};
use std::fmt::Write as _;

/// Aggregated outcome of a lint sweep over a set of suites.
#[derive(Clone, Debug)]
pub struct LintAudit {
    /// Workloads audited.
    pub workloads: usize,
    /// Graphs linted (pristine + post-DBDS per workload).
    pub graphs_linted: usize,
    /// Optimization-tier prediction-audit rejections, summed over every
    /// workload's [`dbds_core::PhaseStats::mispredictions`].
    pub mispredictions: usize,
    /// Per-lint diagnostic counts, in [`LintId::ALL`] order.
    pub counts: Vec<(LintId, usize)>,
}

impl LintAudit {
    fn new() -> Self {
        LintAudit {
            workloads: 0,
            graphs_linted: 0,
            mispredictions: 0,
            counts: LintId::ALL.iter().map(|&l| (l, 0)).collect(),
        }
    }

    fn absorb(&mut self, diagnostics: &[Diagnostic]) {
        for d in diagnostics {
            if let Some(slot) = self.counts.iter_mut().find(|(l, _)| *l == d.lint) {
                slot.1 += 1;
            }
        }
    }

    /// Total error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|(l, _)| l.severity() == Severity::Error)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total warn-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|(l, _)| l.severity() == Severity::Warn)
            .map(|(_, n)| n)
            .sum()
    }

    /// The CI gate: no error-severity diagnostics and no mispredictions.
    pub fn gate_passes(&self) -> bool {
        self.error_count() == 0 && self.mispredictions == 0
    }
}

/// Runs the full lint sweep over `suites`.
///
/// Per workload, four probes feed the report:
///
/// 1. the pristine graph through [`dbds_ir::lint`];
/// 2. a [`run_dbds`] phase (collecting the prediction-audit counter);
/// 3. the post-phase graph through [`dbds_ir::lint`] plus the
///    [`AnalysisCache::audit`] diff of every still-current cached
///    analysis against fresh recomputation;
/// 4. one more simulation over the final graph, with
///    [`lint_simulation`]'s cost-sanity checks over its estimates.
pub fn run_lint_audit(suites: &[Suite], model: &CostModel, cfg: &DbdsConfig) -> LintAudit {
    // One unit per workload, dispatched onto the shared 2-D scheduler
    // (`DbdsConfig::pool_plan`) and absorbed in submission order — the
    // audit is byte-identical for every (unit, sim) split.
    let workloads: Vec<Workload> = suites.iter().flat_map(|s| s.workloads()).collect();
    let plan = cfg.pool_plan(workloads.len());
    let unit_cfg = &plan.per_unit;
    let (parts, _loads, _ns) = run_units(&plan, &workloads, |_, w| {
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        let mut g = w.graph.clone();
        diagnostics.extend_from_slice(dbds_ir::lint(&g).diagnostics());

        let mut cache = AnalysisCache::new();
        let stats = run_dbds(
            &mut g,
            model,
            unit_cfg,
            SelectionMode::CostBenefit,
            &mut cache,
        );

        diagnostics.extend_from_slice(dbds_ir::lint(&g).diagnostics());
        diagnostics.extend(cache.audit(&g));

        let results = simulate(&g, model, &mut cache);
        diagnostics.extend(lint_simulation(&results, model.graph_size(&g)));
        (diagnostics, stats.mispredictions)
    });

    let mut audit = LintAudit::new();
    for (diagnostics, mispredictions) in &parts {
        audit.workloads += 1;
        audit.graphs_linted += 2;
        audit.mispredictions += mispredictions;
        audit.absorb(diagnostics);
    }
    audit
}

/// Renders the lint sweep as a text table. Deterministic: row order is
/// [`LintId::ALL`] order and nothing thread-count- or time-dependent is
/// printed.
pub fn format_lint(audit: &LintAudit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "IR lint & prediction audit (workload corpus)\n");
    let _ = writeln!(out, "workloads audited : {}", audit.workloads);
    let _ = writeln!(out, "graphs linted     : {}", audit.graphs_linted);
    let _ = writeln!(out, "mispredictions    : {}", audit.mispredictions);
    let _ = writeln!(out);
    let _ = writeln!(out, "{:<22} | {:<8} | {:>6}", "lint", "severity", "count");
    let _ = writeln!(out, "{}", "-".repeat(42));
    for &(lint, n) in &audit.counts {
        let _ = writeln!(
            out,
            "{:<22} | {:<8} | {:>6}",
            lint.name(),
            lint.severity().name(),
            n
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(42));
    let _ = writeln!(
        out,
        "errors: {}, warnings: {} -> {}",
        audit.error_count(),
        audit.warning_count(),
        if audit.gate_passes() {
            "gate passes"
        } else {
            "GATE FAILS"
        }
    );
    out
}

/// Renders the lint sweep as stable-ordered JSON (hand-rolled — the
/// build has no serde). Unlike [`crate::format_json`] there is no
/// `sim_threads` field at all: the sweep is byte-identical across
/// thread counts, so CI diffs it without filtering.
pub fn format_lint_json(audit: &LintAudit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"workloads\": {},", audit.workloads);
    let _ = writeln!(out, "  \"graphs_linted\": {},", audit.graphs_linted);
    let _ = writeln!(out, "  \"mispredictions\": {},", audit.mispredictions);
    let _ = writeln!(out, "  \"errors\": {},", audit.error_count());
    let _ = writeln!(out, "  \"warnings\": {},", audit.warning_count());
    let _ = writeln!(out, "  \"lints\": [");
    let last = audit.counts.len().saturating_sub(1);
    for (i, &(lint, n)) in audit.counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"lint\": \"{}\", \"severity\": \"{}\", \"count\": {} }}{}",
            lint.name(),
            lint.severity().name(),
            n,
            if i < last { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_is_lint_clean() {
        let audit = run_lint_audit(&[Suite::Micro], &CostModel::new(), &DbdsConfig::default());
        assert_eq!(audit.workloads, 12);
        assert_eq!(audit.graphs_linted, 24);
        assert_eq!(audit.error_count(), 0, "{}", format_lint(&audit));
        assert_eq!(audit.mispredictions, 0, "{}", format_lint(&audit));
        assert!(audit.gate_passes());
    }

    #[test]
    fn lint_report_is_byte_identical_across_runs_and_thread_counts() {
        let model = CostModel::new();
        let run = |sim: usize, unit: usize| {
            let cfg = DbdsConfig {
                sim_threads: sim,
                unit_threads: unit,
                ..DbdsConfig::default()
            };
            let audit = run_lint_audit(&[Suite::Micro], &model, &cfg);
            (format_lint(&audit), format_lint_json(&audit))
        };
        let one = run(1, 1);
        // No strip step here on purpose: the lint report carries no
        // thread-count field at all, so whole-output equality must hold
        // across the whole unit_threads × sim_threads matrix — the
        // adaptive (0, 0) plan included.
        for (sim, unit) in [(4, 1), (1, 4), (4, 4), (0, 0)] {
            assert_eq!(one, run(sim, unit), "sim={sim} unit={unit}");
        }
        assert_eq!(run(4, 4), run(4, 4));
        assert!(!one.1.contains("sim_threads"), "{}", one.1);
        assert!(!one.1.contains("unit_threads"), "{}", one.1);
    }

    #[test]
    fn lint_json_lists_every_lint_id() {
        let audit = run_lint_audit(&[Suite::Micro], &CostModel::new(), &DbdsConfig::default());
        let json = format_lint_json(&audit);
        for lint in dbds_ir::LintId::ALL {
            assert!(
                json.contains(&format!("\"lint\": \"{}\"", lint.name())),
                "{json}"
            );
        }
    }
}
