//! # dbds-harness — reproduction of the paper's evaluation (§6)
//!
//! Runs every synthetic benchmark under the paper's three configurations
//! — *baseline* (duplication disabled), *DBDS* and *dupalot* — measuring
//! peak performance (dynamic cycles), compile time and code size, and
//! renders the per-suite tables of Figures 5–8, the cross-suite headline
//! summary, and the §3.1 backtracking-vs-simulation comparison.
//!
//! The `figures` binary is the command-line entry point:
//!
//! ```text
//! cargo run -p dbds-harness --bin figures --release -- --figure 7
//! cargo run -p dbds-harness --bin figures --release -- --summary
//! cargo run -p dbds-harness --bin figures --release -- --table backtracking
//! cargo run -p dbds-harness --bin figures --release -- --all
//! ```
//!
//! # Examples
//!
//! ```
//! use dbds_core::{DbdsConfig, OptLevel};
//! use dbds_costmodel::CostModel;
//! use dbds_harness::{measure, IcacheModel};
//! use dbds_workloads::Suite;
//!
//! let w = &Suite::Micro.workloads()[0];
//! let m = measure(
//!     w,
//!     OptLevel::Dbds,
//!     &CostModel::new(),
//!     &DbdsConfig::default(),
//!     &IcacheModel::default(),
//! );
//! assert!(m.code_size > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod ablation;
mod lintaudit;
mod metrics;
mod report;
mod runner;
mod stats;

/// Schema tag the `bench_suite` binary stamps into its report; the
/// committed `BENCH_suite.json` must carry exactly this string (gated
/// by `tests/report_roundtrip.rs`), so schema changes are deliberate:
/// bump the tag here and regenerate the committed baseline together.
pub const BENCH_SUITE_SCHEMA: &str = "dbds-bench-suite-v2";

pub use ablation::{format_split_ablation, run_split_ablation, AblationRow, SplitAblation};
pub use lintaudit::{format_lint, format_lint_json, run_lint_audit, LintAudit};
pub use metrics::{
    geomean_pct, measure, measure_from, pct_increase, pct_speedup, IcacheModel, Metrics,
};
pub use report::{format_backtracking, format_figure, format_json, format_summary, BacktrackRow};
pub use runner::{run_benchmark, run_suite, run_units, BenchmarkRow, Metric, SuiteResult};
pub use stats::{pearson, spearman};
