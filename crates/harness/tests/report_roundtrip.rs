//! Report fidelity gates:
//!
//! 1. The harness `--json` report survives `serialize → parse →
//!    reserialize` byte-identically (so downstream tooling can safely
//!    rewrite reports through `dbds_server::json`).
//! 2. The committed `BENCH_suite.json` carries exactly the schema tag
//!    the `bench_suite` binary emits — a schema bump without a
//!    regenerated baseline fails here.
//! 3. The compile-cache session counters embedded in the report are
//!    byte-identical across unit-thread counts and show a full-hit
//!    second pass.

use dbds_core::{DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_harness::{format_json, run_suite, IcacheModel, BENCH_SUITE_SCHEMA};
use dbds_server::json::{parse, Json};
use dbds_server::{run_session, CompileService, MemStore, ServiceConfig, SessionReport};
use dbds_workloads::Suite;

fn micro_report(session: Option<&SessionReport>) -> String {
    let cfg = DbdsConfig::default();
    let results = vec![run_suite(
        Suite::Micro,
        &CostModel::new(),
        &cfg,
        &IcacheModel::default(),
    )];
    format_json(&results, cfg.sim_threads, cfg.unit_threads, session)
}

fn mem_session(unit_threads: usize) -> SessionReport {
    let cfg = DbdsConfig {
        unit_threads,
        ..DbdsConfig::default()
    };
    let svc = CompileService::new(Box::new(MemStore::new()), cfg, ServiceConfig::default());
    run_session(&svc, &[OptLevel::Dbds], 2)
}

#[test]
fn json_report_reserializes_byte_identically() {
    let text = micro_report(None);
    let tree = parse(&text).unwrap_or_else(|e| panic!("report does not parse: {e}"));
    assert_eq!(tree.pretty(), text, "parse → pretty is not the identity");
    // The null store placeholder keeps the schema stable without a
    // session.
    assert_eq!(tree.get("store"), Some(&Json::Null));
}

#[test]
fn json_report_with_store_session_reserializes_byte_identically() {
    let session = mem_session(1);
    let text = micro_report(Some(&session));
    let tree = parse(&text).unwrap_or_else(|e| panic!("report does not parse: {e}"));
    assert_eq!(tree.pretty(), text, "parse → pretty is not the identity");

    let store = tree.get("store").expect("store block missing");
    assert_eq!(store.get("backend").and_then(Json::as_str), Some("mem"));
    let counter = |name: &str| {
        store
            .get("totals")
            .and_then(|t| t.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing store counter {name}"))
    };
    // Every service counter the acceptance gate names is present.
    for name in [
        "hits",
        "misses",
        "quarantined",
        "shed",
        "retries",
        "degraded",
    ] {
        counter(name);
    }
    assert_eq!(
        counter("hits"),
        counter("misses"),
        "2-pass session: pass 2 all hits"
    );
}

#[test]
fn store_counters_identical_across_unit_thread_counts() {
    let one = mem_session(1);
    let four = mem_session(4);
    assert_eq!(one, four, "session counters depend on unit_threads");
}

#[test]
fn session_second_pass_hit_rate_exceeds_90_pct() {
    let session = mem_session(1);
    assert!(
        session.hit_rate(1) > 0.9,
        "second-pass hit rate {} ≤ 0.9",
        session.hit_rate(1)
    );
}

#[test]
fn committed_bench_baseline_matches_schema_const() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed BENCH_suite.json: {e}"));
    let tree = parse(&text).unwrap_or_else(|e| panic!("BENCH_suite.json does not parse: {e}"));
    assert_eq!(
        tree.get("schema").and_then(Json::as_str),
        Some(BENCH_SUITE_SCHEMA),
        "committed baseline schema drifted from BENCH_SUITE_SCHEMA"
    );
    // v2: the sweep records the winning scheduler split. The requested
    // values may be 0 (adaptive), but the resolved worker counts are
    // what the machine actually ran.
    let chosen = tree
        .get("chosen")
        .expect("v2 baseline lacks a chosen block");
    for key in ["unit_threads", "sim_threads", "wall_ms"] {
        assert!(chosen.get(key).is_some(), "chosen block lacks {key}");
    }
    let workers = |key: &str| {
        chosen
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("chosen block lacks {key}"))
    };
    assert!(
        workers("unit_workers") >= 1,
        "chosen plan has no unit worker"
    );
    let _ = workers("sim_workers");
}
