//! Steal-storm determinism gate: a unit batch built to maximise work
//! stealing — many tiny units that drain their owner's cursor almost
//! immediately, plus one pathologically large unit whose DST/pricing
//! fan-outs dominate the shared queue — must render a byte-identical
//! `--json` report at every `(unit, sim)` split of the 2-D scheduler,
//! including the adaptive `(0, 0)` plan. Under this shape nearly every
//! worker ends up stealing from the big unit's queues, so any
//! execution-order leak (commit order, float accumulation order, load
//! bookkeeping bleeding into results) shows up as a byte diff here.

use dbds_core::{DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_harness::{format_json, measure_from, run_units, BenchmarkRow, IcacheModel, SuiteResult};
use dbds_workloads::{generate_graph, generate_inputs, FragmentKind, Profile, Suite, Workload};
use proptest::prelude::*;
use std::sync::OnceLock;

const LEVELS: [OptLevel; 3] = [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot];

fn storm_profile(fragments: (usize, usize)) -> Profile {
    Profile {
        fragments,
        weights: vec![
            (FragmentKind::ConstFold, 2.0),
            (FragmentKind::CondElim, 2.0),
            (FragmentKind::StrengthReduce, 1.0),
            (FragmentKind::TypeCheck, 1.0),
            (FragmentKind::HotLoop, 1.0),
            (FragmentKind::Neutral, 1.0),
        ],
        input_sets: 2,
    }
}

/// Twelve near-empty units plus one unit an order of magnitude larger:
/// the tiny units' owners run dry fast and turn into stealers parked on
/// the big unit's fan-outs.
fn storm_workloads() -> Vec<Workload> {
    let tiny = storm_profile((1, 3));
    let big = storm_profile((48, 49));
    let mut out: Vec<Workload> = (0..12)
        .map(|i| {
            let name = format!("storm-tiny-{i}");
            let graph = generate_graph(&name, &tiny, 9_000 + i);
            Workload {
                name,
                suite: Suite::Micro,
                graph,
                inputs: generate_inputs(&tiny, 9_000 + i),
            }
        })
        .collect();
    let graph = generate_graph("storm-big", &big, 4_242);
    out.push(Workload {
        name: "storm-big".to_string(),
        suite: Suite::Micro,
        graph,
        inputs: generate_inputs(&big, 4_242),
    });
    for w in &out {
        dbds_ir::verify(&w.graph)
            .unwrap_or_else(|e| panic!("storm workload {} failed verification: {e}", w.name));
    }
    out
}

/// Renders the storm's full `--json` report with the batch dispatched
/// at the requested `(unit_threads, sim_threads)` split (0 = adaptive).
/// The report header is pinned to fixed values so the comparison is
/// whole-output byte identity, not identity modulo stripped lines.
fn report_at(workloads: &[Workload], unit_threads: usize, sim_threads: usize) -> String {
    let model = CostModel::new();
    let ic = IcacheModel::default();
    let cfg = DbdsConfig {
        unit_threads,
        sim_threads,
        ..DbdsConfig::default()
    };
    let units: Vec<(usize, OptLevel)> = (0..workloads.len())
        .flat_map(|wi| LEVELS.iter().map(move |&l| (wi, l)))
        .collect();
    let plan = cfg.pool_plan(units.len());
    let (metrics, loads, _) = run_units(&plan, &units, |_, &(wi, level)| {
        let w = &workloads[wi];
        measure_from(&w.graph, w, level, &model, &plan.per_unit, &ic)
    });
    // Load bookkeeping stays coherent even in a storm: every unit is
    // claimed exactly once and stolen counts never exceed task counts.
    assert!(loads.iter().map(|l| l.tasks).sum::<usize>() >= units.len());
    for load in &loads {
        assert!(load.stolen <= load.tasks, "stolen > tasks at {load:?}");
    }
    let mut metrics = metrics.into_iter();
    let mut next = || metrics.next().expect("one Metrics per unit");
    let rows: Vec<BenchmarkRow> = workloads
        .iter()
        .map(|w| BenchmarkRow {
            name: w.name.clone(),
            baseline: next(),
            dbds: next(),
            dupalot: next(),
        })
        .collect();
    let result = SuiteResult {
        suite: Suite::Micro,
        rows,
        unit_threads: plan.unit_workers,
        sim_workers: plan.sim_workers,
        unit_par_ns: 0,
        unit_loads: Vec::new(),
    };
    format_json(&[result], 1, 1, None)
}

/// The storm workloads and the sequential-baseline report, built once:
/// `(1, 1)` resolves to one unit worker with no sim helpers, i.e. the
/// pure inline path.
fn baseline() -> &'static (Vec<Workload>, String) {
    static BASE: OnceLock<(Vec<Workload>, String)> = OnceLock::new();
    BASE.get_or_init(|| {
        let workloads = storm_workloads();
        let report = report_at(&workloads, 1, 1);
        (workloads, report)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized splits: any explicit `(unit, sim)` request reproduces
    /// the sequential report byte-for-byte.
    #[test]
    fn steal_storm_report_is_split_invariant(
        unit_threads in 1usize..6,
        sim_threads in 0usize..6,
    ) {
        let (workloads, base) = baseline();
        let got = report_at(workloads, unit_threads, sim_threads);
        prop_assert_eq!(
            &got, base,
            "storm report diverged at split {}x{}", unit_threads, sim_threads
        );
    }
}

/// The adaptive plan — whatever `(0, 0)` resolves to on this machine —
/// sits under the same byte-identity gate as the explicit splits.
#[test]
fn steal_storm_report_matches_under_the_adaptive_plan() {
    let (workloads, base) = baseline();
    assert_eq!(
        &report_at(workloads, 0, 0),
        base,
        "storm report diverged under the adaptive plan"
    );
}
