#![allow(dead_code)] // each bench target compiles this module separately

//! Shared benchmark plumbing: compile a whole suite under one
//! configuration (the quantity the paper's compile-time figures measure).

use criterion::{BenchmarkId, Criterion};
use dbds_core::{compile, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_workloads::{Suite, Workload};
use std::hint::black_box;

/// Compiles every workload of `suite` under `level` once.
pub fn compile_suite(workloads: &[Workload], model: &CostModel, cfg: &DbdsConfig, level: OptLevel) {
    for w in workloads {
        let mut g = w.graph.clone();
        let stats = compile(&mut g, model, level, cfg);
        let machine = dbds_backend::compile_to_machine_code(&g);
        black_box((stats.duplications, machine.size()));
    }
}

/// Registers the three per-figure configuration benches for `suite`.
pub fn bench_suite_figure(c: &mut Criterion, suite: Suite) {
    let workloads = suite.workloads();
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let mut group = c.benchmark_group(format!("figure{}_{}", suite.figure(), suite.id()));
    group.sample_size(10);
    for level in [OptLevel::Baseline, OptLevel::Dbds, OptLevel::Dupalot] {
        group.bench_with_input(
            BenchmarkId::new("compile", level.name()),
            &level,
            |b, &level| b.iter(|| compile_suite(&workloads, &model, &cfg, level)),
        );
    }
    group.finish();
}
