//! Ablation for the parallel simulation tier: the same candidate list
//! priced at 1/2/4/8 DST worker threads. Results are bit-identical for
//! every thread count (see `core/tests/par_props.rs`), so this sweep
//! isolates pure wall-clock scaling — the target is ≥2× speedup of the
//! DST pool region at 4 threads on a simulation-bound unit.
//!
//! Scaling is hardware-bound: the sweep only shows speedup when the
//! machine actually has that many cores (`std::thread::available_parallelism`).
//! On a single-core container every thread count degenerates to
//! timeslicing and the interesting number is the *overhead* of the
//! 4-thread configuration over the inline 1-thread path, which this
//! sweep bounds instead.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbds_analysis::AnalysisCache;
use dbds_core::{simulate_paths_parallel, Budget, DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_opt::optimize_full;
use dbds_workloads::{generate_graph, Profile, Suite};
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A compilation unit several times larger than any suite benchmark, so
/// the candidate list is long enough for the pool to amortize fan-out.
fn large_unit() -> dbds_ir::Graph {
    let base = Suite::Octane.profile();
    let profile = Profile {
        fragments: (base.fragments.1 * 6, base.fragments.1 * 6 + 1),
        ..base
    };
    let mut g = generate_graph("sim-threads-large", &profile, 0xD8D5);
    optimize_full(&mut g, &mut AnalysisCache::new());
    g
}

fn bench_simulation_tier(c: &mut Criterion) {
    let model = CostModel::new();
    let g = large_unit();
    // Warm the analyses once: the sweep measures the DST pool, not
    // dominator/frequency computation (the phase driver reuses a warm
    // cache the same way).
    let mut cache = AnalysisCache::new();
    let mut group = c.benchmark_group("sim_threads_tier");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.live_inst_count() as u64));
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::new("simulate", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = simulate_paths_parallel(
                        &g,
                        &model,
                        &mut cache,
                        1,
                        &Budget::unlimited(),
                        threads,
                        dbds_core::BRANCH_SPLIT_DEFAULT,
                    );
                    black_box(out.results.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_whole_suite(c: &mut Criterion) {
    let workloads = Suite::Micro.workloads();
    let model = CostModel::new();
    let mut group = c.benchmark_group("sim_threads_suite");
    group.sample_size(10);
    for threads in THREADS {
        let cfg = DbdsConfig {
            sim_threads: threads,
            ..DbdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("compile", threads), &cfg, |b, cfg| {
            b.iter(|| common::compile_suite(&workloads, &model, cfg, OptLevel::Dbds))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_tier, bench_whole_suite);
criterion_main!(benches);
