//! The §3.1 comparison: simulation-based DBDS versus the backtracking
//! strategy of Algorithm 1 (whole-graph copy per tentative duplication).
//! The paper reports the copy alone costing a factor of ~10 in compile
//! time; this bench measures both strategies on the micro suite.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbds_core::{DbdsConfig, OptLevel};
use dbds_costmodel::CostModel;
use dbds_workloads::Suite;

fn bench(c: &mut Criterion) {
    let workloads = Suite::Micro.workloads();
    let model = CostModel::new();
    let cfg = DbdsConfig::default();
    let mut group = c.benchmark_group("backtracking_vs_simulation");
    group.sample_size(10);
    for level in [OptLevel::Dbds, OptLevel::Backtracking] {
        group.bench_with_input(
            BenchmarkId::new("compile_micro_suite", level.name()),
            &level,
            |b, &level| b.iter(|| common::compile_suite(&workloads, &model, &cfg, level)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
