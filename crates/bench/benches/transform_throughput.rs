//! Throughput of the duplication transform itself (§4.3): copying one
//! merge block into one predecessor including SSA repair. Compares
//! against whole-graph cloning, the cost driver of the backtracking
//! baseline — the gap is the reason simulation wins (§3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbds_analysis::AnalysisCache;
use dbds_core::duplicate;
use dbds_opt::optimize_full;
use dbds_workloads::Suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_throughput");
    group.sample_size(20);
    for suite in [Suite::Micro, Suite::Octane] {
        let mut w = suite.workloads().into_iter().next().unwrap();
        optimize_full(&mut w.graph, &mut AnalysisCache::new());
        let pair = w
            .graph
            .merge_blocks()
            .into_iter()
            .find_map(|m| {
                w.graph
                    .preds(m)
                    .iter()
                    .copied()
                    .find(|&p| p != m)
                    .map(|p| (p, m))
            })
            .expect("a duplicable pair");
        group.bench_with_input(
            BenchmarkId::new("duplicate_one_merge", suite.id()),
            &(&w.graph, pair),
            |b, (g, (p, m))| {
                b.iter(|| {
                    let mut copy = (*g).clone();
                    black_box(duplicate(&mut copy, *p, *m));
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("whole_graph_clone", suite.id()),
            &w.graph,
            |b, g| b.iter(|| black_box(g.clone())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
