//! Ablation benches for the design constants DESIGN.md §8 calls out:
//! the benefit scale factor `BS = 256`, the code-size increase budget
//! `IB = 1.5`, and the iteration bound 3 (§5.2/§5.4). Each sweep
//! measures whole-suite DBDS compile time at the given setting; the
//! companion `ablations` binary of the harness reports the quality side
//! (duplications, peak, size).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbds_core::{DbdsConfig, OptLevel, TradeoffConfig};
use dbds_costmodel::CostModel;
use dbds_workloads::Suite;

fn bench_benefit_scale(c: &mut Criterion) {
    let workloads = Suite::Micro.workloads();
    let model = CostModel::new();
    let mut group = c.benchmark_group("ablation_benefit_scale");
    group.sample_size(10);
    for bs in [1.0, 16.0, 256.0, 4096.0] {
        let cfg = DbdsConfig {
            tradeoff: TradeoffConfig {
                benefit_scale: bs,
                ..TradeoffConfig::default()
            },
            ..DbdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("bs", bs as u64), &cfg, |b, cfg| {
            b.iter(|| common::compile_suite(&workloads, &model, cfg, OptLevel::Dbds))
        });
    }
    group.finish();
}

fn bench_size_budget(c: &mut Criterion) {
    let workloads = Suite::Micro.workloads();
    let model = CostModel::new();
    let mut group = c.benchmark_group("ablation_size_budget");
    group.sample_size(10);
    for ib in [1.0, 1.25, 1.5, 2.0] {
        let cfg = DbdsConfig {
            tradeoff: TradeoffConfig {
                size_increase_budget: ib,
                ..TradeoffConfig::default()
            },
            ..DbdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("ib", format!("{ib}")), &cfg, |b, cfg| {
            b.iter(|| common::compile_suite(&workloads, &model, cfg, OptLevel::Dbds))
        });
    }
    group.finish();
}

fn bench_iterations(c: &mut Criterion) {
    let workloads = Suite::Micro.workloads();
    let model = CostModel::new();
    let mut group = c.benchmark_group("ablation_iterations");
    group.sample_size(10);
    for iters in [1usize, 2, 3, 6] {
        let cfg = DbdsConfig {
            max_iterations: iters,
            ..DbdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("iters", iters), &cfg, |b, cfg| {
            b.iter(|| common::compile_suite(&workloads, &model, cfg, OptLevel::Dbds))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_benefit_scale,
    bench_size_budget,
    bench_iterations
);
criterion_main!(benches);
