//! Figure 5 bench: whole-suite compilation under the three
//! configurations (baseline / DBDS / dupalot). The paper's compile-time
//! panel of Figure 5 is the relative cost of these runs; the peak
//! performance and code size panels are produced by the harness binary
//! (`figures --figure 5`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dbds_workloads::Suite;

fn bench(c: &mut Criterion) {
    common::bench_suite_figure(c, Suite::JavaDaCapo);
}

criterion_group!(benches, bench);
criterion_main!(benches);
