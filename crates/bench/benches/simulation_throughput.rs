//! Throughput of the simulation tier alone: how fast can DBDS price
//! every predecessor→merge pair of a compilation unit? This is the
//! operation whose cheapness justifies simulation over backtracking
//! (§3.2 — "simulating a duplication [must be] sufficiently less complex
//! in compilation time than performing the actual transformation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbds_analysis::AnalysisCache;
use dbds_core::simulate;
use dbds_costmodel::CostModel;
use dbds_opt::optimize_full;
use dbds_workloads::Suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = CostModel::new();
    let mut group = c.benchmark_group("simulation_throughput");
    group.sample_size(20);
    for suite in [Suite::Micro, Suite::Octane] {
        // Simulate the canonicalized graph, as the phase driver does.
        let mut w = suite.workloads().into_iter().next().unwrap();
        optimize_full(&mut w.graph, &mut AnalysisCache::new());
        group.throughput(Throughput::Elements(w.graph.live_inst_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("simulate", suite.id()),
            &w.graph,
            |b, g| {
                b.iter(|| {
                    // Cold cache per iteration: the bench measures the
                    // full simulate cost including analysis computation.
                    black_box(simulate(g, &model, &mut AnalysisCache::new()).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
