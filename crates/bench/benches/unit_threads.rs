//! Ablation for the unit-level compilation queue and the trade-off
//! tier's parallel pricing: the same suite compiled at 1/2/4/8 unit
//! workers, and the same candidate list priced at 1/2/4/8 pricing
//! workers. Results are bit-identical for every thread count
//! (`core/tests/tradeoff_par_props.rs`, the harness byte-identity
//! tests), so both sweeps isolate pure wall-clock scaling.
//!
//! Scaling is hardware-bound, exactly as for `sim_threads`: on a
//! single-core container every width degenerates to timeslicing and the
//! interesting number is the *overhead* of the threaded configuration
//! over the inline 1-thread path, which this sweep bounds instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbds_analysis::AnalysisCache;
use dbds_core::{select_with_rejections_parallel, simulate, DbdsConfig, SelectionMode};
use dbds_costmodel::CostModel;
use dbds_harness::{run_suite, IcacheModel};
use dbds_workloads::Suite;
use std::collections::HashSet;
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_unit_queue(c: &mut Criterion) {
    let model = CostModel::new();
    let icache = IcacheModel::default();
    let mut group = c.benchmark_group("unit_threads_suite");
    group.sample_size(10);
    for threads in THREADS {
        let cfg = DbdsConfig {
            unit_threads: threads,
            ..DbdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("run_suite", threads), &cfg, |b, cfg| {
            b.iter(|| {
                let result = run_suite(Suite::Micro, &model, cfg, &icache);
                black_box(result.rows.len())
            })
        });
    }
    group.finish();
}

fn bench_tradeoff_pricing(c: &mut Criterion) {
    let model = CostModel::new();
    // The largest suite's candidate lists, concatenated: a pricing batch
    // big enough for the pool to amortize fan-out.
    let mut results = Vec::new();
    for w in Suite::Octane.workloads() {
        results.extend(simulate(&w.graph, &model, &mut AnalysisCache::new()));
    }
    let cfg = dbds_core::TradeoffConfig::default();
    let visited = HashSet::new();
    let mut group = c.benchmark_group("tradeoff_pricing");
    group.sample_size(20);
    group.throughput(Throughput::Elements(results.len() as u64));
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("price", threads), &threads, |b, &t| {
            b.iter(|| {
                let priced = select_with_rejections_parallel(
                    &results,
                    &cfg,
                    SelectionMode::CostBenefit,
                    5_000,
                    5_000,
                    &visited,
                    t,
                );
                black_box(priced.selection.accepted.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unit_queue, bench_tradeoff_pricing);
criterion_main!(benches);
