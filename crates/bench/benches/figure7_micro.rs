//! Figure 7 bench: whole-suite compilation under the three
//! configurations (baseline / DBDS / dupalot). The paper's compile-time
//! panel of Figure 7 is the relative cost of these runs; the peak
//! performance and code size panels are produced by the harness binary
//! (`figures --figure 7`).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use dbds_workloads::Suite;

fn bench(c: &mut Criterion) {
    common::bench_suite_figure(c, Suite::Micro);
}

criterion_group!(benches, bench);
criterion_main!(benches);
