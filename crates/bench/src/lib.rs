//! # dbds-bench — Criterion benchmarks for the DBDS reproduction
//!
//! This crate's library is intentionally empty; all content lives in
//! `benches/`:
//!
//! | bench | paper artifact |
//! |---|---|
//! | `figure5_java_dacapo` … `figure8_octane` | the compile-time axis of Figures 5–8 (baseline vs DBDS vs dupalot per suite) |
//! | `backtracking_vs_simulation` | §3.1's "copying increased compilation time by a factor of 10" |
//! | `ablations` | sweeps of the §5.4 constants (BS, IB, iteration bound) |
//! | `simulation_throughput` | how fast the simulation tier prices all predecessor→merge pairs (§3.2's economics) |
//! | `transform_throughput` | one duplication + SSA repair vs Algorithm 1's whole-graph clone |
//!
//! Run everything with `cargo bench --workspace`; individual benches with
//! `cargo bench -p dbds-bench --bench <name>`.
