//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `proptest` its property tests use: the
//! [`Strategy`] trait over ranges, tuples, mapped strategies and
//! [`collection::vec`], the `proptest!` test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Semantics deliberately kept simple: cases are generated from a fixed
//! deterministic seed per test (reproducible CI), failures panic
//! immediately (no shrinking). That preserves the *checking* power of the
//! original tests while dropping the counterexample-minimization comfort.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic 64-bit generator driving value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Something usable as a collection-size specification: a fixed
    /// length or a half-open range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates a `Vec` of values from `element`, with `len` elements.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Skips the current case when its precondition does not hold.
///
/// Works because each generated case runs inside a `|| -> ()` closure,
/// so `return` abandons only that case, not the whole test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// Supports the subset of the upstream grammar this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Optional docs.
///     #[test]
///     fn my_property(x in 0u64..10, v in collection::vec(0u8..8, 10)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher: one test function at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // A fixed per-test seed keeps runs reproducible while varying
            // the stream between tests.
            let seed = {
                let name = stringify!($name);
                let mut h: u64 = 0xcbf29ce484222325;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                }
                h
            };
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(e) = result {
                    eprintln!(
                        "proptest: {} failed at case {}/{}",
                        stringify!($name), case + 1, config.cases
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds; vec lengths are respected.
        #[test]
        fn bounds_hold(n in 2usize..10, v in collection::vec(0u8..8, 10), x in 0.05f64..1.0) {
            prop_assert!((2..10).contains(&n));
            prop_assert_eq!(v.len(), 10);
            prop_assert!(v.iter().all(|&b| b < 8));
            prop_assert!((0.05..1.0).contains(&x));
        }

        #[test]
        fn tuples_and_map(p in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..25).contains(&p));
            prop_assert_ne!(p, 0);
        }
    }
}
