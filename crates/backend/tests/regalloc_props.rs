//! Property tests for the back end over real generated programs: the
//! fundamental register-allocation invariant (no two simultaneously live
//! values share a register) and structural emission properties.

use dbds_backend::{
    compile_to_machine_code, linear_scan, live_intervals, Linearization, Location, NUM_REGS,
};
use dbds_workloads::{generate_graph, FragmentKind, Profile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        2usize..8,
        proptest::collection::vec(0.05f64..1.0, FragmentKind::ALL.len()),
    )
        .prop_map(|(count, weights)| Profile {
            fragments: (count, count + 3),
            weights: FragmentKind::ALL.iter().copied().zip(weights).collect(),
            input_sets: 1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No two overlapping live intervals are assigned the same register.
    #[test]
    fn no_interference_in_registers(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("ra", &profile, seed);
        let lin = Linearization::compute(&g);
        let intervals = live_intervals(&g, &lin);
        let alloc = linear_scan(&intervals, NUM_REGS);
        for (i, a) in intervals.iter().enumerate() {
            for b in &intervals[i + 1..] {
                if b.start > a.end {
                    break; // sorted by start: no later interval overlaps a
                }
                // a and b overlap: [a.start, a.end] ∩ [b.start, b.end] ≠ ∅.
                let la = alloc.loc(a.value);
                let lb = alloc.loc(b.value);
                if let (Location::Reg(ra), Location::Reg(rb)) = (la, lb) {
                    prop_assert_ne!(
                        ra, rb,
                        "{} [{}..{}] and {} [{}..{}] share r{}",
                        a.value, a.start, a.end, b.value, b.start, b.end, ra
                    );
                }
            }
        }
    }

    /// Spilled values get distinct stack slots.
    #[test]
    fn spill_slots_are_unique(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("sl", &profile, seed);
        let lin = Linearization::compute(&g);
        let intervals = live_intervals(&g, &lin);
        let alloc = linear_scan(&intervals, 4); // force pressure
        let mut slots: Vec<u32> = alloc
            .locations
            .values()
            .filter_map(|l| match l {
                Location::Slot(s) => Some(*s),
                Location::Reg(_) => None,
            })
            .collect();
        let n = slots.len();
        slots.sort();
        slots.dedup();
        prop_assert_eq!(slots.len(), n, "duplicate stack slots");
    }

    /// Intervals are well-formed: start ≤ end, definition position
    /// matches the layout, and values are unique.
    #[test]
    fn intervals_are_wellformed(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("iv", &profile, seed);
        let lin = Linearization::compute(&g);
        let intervals = live_intervals(&g, &lin);
        let mut seen = std::collections::HashSet::new();
        for iv in &intervals {
            prop_assert!(iv.start <= iv.end);
            prop_assert_eq!(iv.start, lin.pos(iv.value));
            prop_assert!(seen.insert(iv.value), "duplicate interval for {}", iv.value);
        }
    }

    /// Fewer registers never produce *larger* register counts and always
    /// produce at least as many spills.
    #[test]
    fn pressure_monotonicity(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("pm", &profile, seed);
        let lin = Linearization::compute(&g);
        let intervals = live_intervals(&g, &lin);
        let tight = linear_scan(&intervals, 4);
        let roomy = linear_scan(&intervals, 32);
        prop_assert!(tight.spills >= roomy.spills);
        prop_assert!(tight.regs_used <= 4);
    }

    /// Machine code grows monotonically-ish with the instruction count:
    /// at least one byte per live instruction.
    #[test]
    fn emitted_code_covers_instructions(seed in 0u64..1_000_000, profile in arb_profile()) {
        let g = generate_graph("sz", &profile, seed);
        let mc = compile_to_machine_code(&g);
        prop_assert!(mc.size() >= g.live_inst_count());
    }
}
