//! Liveness analysis and live-interval construction for linear scan.

use crate::linearize::Linearization;
use dbds_ir::{Graph, Inst, InstId};
use std::collections::HashMap;

/// A dense bitset over instruction ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns `true` if it was not present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` on change.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterates over the members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }
}

/// The live interval of one SSA value in the linear layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// The value.
    pub value: InstId,
    /// First position (the definition).
    pub start: u32,
    /// Last position where the value is needed (inclusive).
    pub end: u32,
    /// Number of use sites — the spill heuristic prefers evicting rarely
    /// used long ranges over hot ones.
    pub uses: u32,
}

/// Computes live intervals for all non-void values of `g`.
///
/// φ semantics: a φ input is live at the end of the corresponding
/// predecessor (where the resolving move sits), not inside the φ's own
/// block.
pub fn live_intervals(g: &Graph, lin: &Linearization) -> Vec<Interval> {
    let n = g.inst_count();
    let mut live_in: HashMap<usize, BitSet> = HashMap::new();
    let mut live_out: HashMap<usize, BitSet> = HashMap::new();
    for &b in &lin.order {
        live_in.insert(b.index(), BitSet::new(n));
        live_out.insert(b.index(), BitSet::new(n));
    }

    // Backward fixpoint over the reachable blocks.
    let mut changed = true;
    while changed {
        changed = false;
        for &b in lin.order.iter().rev() {
            // live_out(b) = ∪_s (live_in(s) minus s's φ defs) ∪ φ inputs
            // flowing from b into s.
            let mut out = BitSet::new(n);
            for s in g.succs(b) {
                let mut from_s = live_in[&s.index()].clone();
                for &phi in g.phis(s) {
                    from_s.remove(phi.index());
                }
                out.union_with(&from_s);
                let k = g.pred_index(s, b);
                for &phi in g.phis(s) {
                    if let Inst::Phi { inputs } = g.inst(phi) {
                        out.insert(inputs[k].index());
                    }
                }
            }
            // live_in(b) = (uses(b) ∪ live_out(b)) \ defs(b), walking the
            // block backwards.
            let mut inn = out.clone();
            let mut term_uses = Vec::new();
            g.terminator(b).for_each_input(|u| term_uses.push(u));
            for u in term_uses {
                inn.insert(u.index());
            }
            for &i in g.block_insts(b).iter().rev() {
                inn.remove(i.index());
                if !g.inst(i).is_phi() {
                    g.inst(i).for_each_input(|u| {
                        inn.insert(u.index());
                    });
                }
            }
            // Every block in `lin.order` was seeded above, so the sets
            // exist; `entry` keeps the fixpoint total without unwraps.
            if live_out
                .entry(b.index())
                .or_insert_with(|| BitSet::new(n))
                .union_with(&out)
            {
                changed = true;
            }
            if live_in
                .entry(b.index())
                .or_insert_with(|| BitSet::new(n))
                .union_with(&inn)
            {
                changed = true;
            }
        }
    }

    // Build intervals: start at the definition, end at the latest use /
    // end of the latest block where the value is live-out.
    let mut end_of: HashMap<InstId, u32> = HashMap::new();
    let mut use_count: HashMap<InstId, u32> = HashMap::new();
    let bump = |v: InstId,
                p: u32,
                is_use: bool,
                end_of: &mut HashMap<InstId, u32>,
                use_count: &mut HashMap<InstId, u32>| {
        let e = end_of.entry(v).or_insert(p);
        if *e < p {
            *e = p;
        }
        if is_use {
            *use_count.entry(v).or_insert(0) += 1;
        }
    };
    for &b in &lin.order {
        for &i in g.block_insts(b) {
            if g.inst(i).is_phi() {
                continue;
            }
            let p = lin.pos(i);
            g.inst(i)
                .for_each_input(|u| bump(u, p, true, &mut end_of, &mut use_count));
        }
        let tp = lin.term_pos(b);
        g.terminator(b)
            .for_each_input(|u| bump(u, tp, true, &mut end_of, &mut use_count));
        // φ inputs from this block are read by the edge moves at the end.
        for s in g.succs(b) {
            let k = g.pred_index(s, b);
            for &phi in g.phis(s) {
                if let Inst::Phi { inputs } = g.inst(phi) {
                    bump(inputs[k], tp, true, &mut end_of, &mut use_count);
                }
            }
        }
        for v in live_out[&b.index()].iter() {
            bump(
                InstId::from_index(v),
                tp,
                false,
                &mut end_of,
                &mut use_count,
            );
        }
    }

    let mut intervals = Vec::new();
    for &b in &lin.order {
        for &i in g.block_insts(b) {
            if g.ty(i).is_void() {
                continue;
            }
            // Constants are rematerialized at their uses by the emitter
            // and never occupy a register across instructions.
            if matches!(g.inst(i), Inst::Const(_)) {
                continue;
            }
            let start = lin.pos(i);
            let end = end_of.get(&i).copied().unwrap_or(start).max(start);
            intervals.push(Interval {
                value: i,
                start,
                end,
                uses: use_count.get(&i).copied().unwrap_or(0),
            });
        }
    }
    intervals.sort_by_key(|iv| (iv.start, iv.value));
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(!s.contains(64));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
        let mut t = BitSet::new(130);
        t.insert(5);
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
    }

    #[test]
    fn straightline_intervals() {
        let mut b = GraphBuilder::new("s", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0); // pos 0
        let one = b.iconst(1); // pos 1
        let a = b.add(x, one); // pos 2
        let m = b.mul(a, a); // pos 3
        b.ret(Some(m)); // pos 4
        let g = b.finish();
        let lin = Linearization::compute(&g);
        let ivs = live_intervals(&g, &lin);
        let find = |v: dbds_ir::InstId| ivs.iter().find(|iv| iv.value == v).unwrap();
        assert_eq!(find(x).start, 0);
        assert_eq!(find(x).end, 2);
        assert_eq!(find(a).end, 3);
        assert_eq!(find(m).end, 4);
    }

    #[test]
    fn phi_inputs_live_at_pred_ends() {
        let mut b = GraphBuilder::new("p", &[Type::Bool, Type::Int], Arc::new(ClassTable::new()));
        let c = b.param(0);
        let x = b.param(1);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let a = b.add(x, x);
        b.jump(bm);
        b.switch_to(bf);
        let s = b.sub(x, x);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![a, s], Type::Int);
        b.ret(Some(phi));
        let g = b.finish();
        let lin = Linearization::compute(&g);
        let ivs = live_intervals(&g, &lin);
        let find = |v: dbds_ir::InstId| ivs.iter().find(|iv| iv.value == v).unwrap();
        // `a` lives exactly until the end of bt (the resolving move).
        assert_eq!(find(a).end, lin.term_pos(bt));
        assert_eq!(find(s).end, lin.term_pos(bf));
        // The φ lives from its block to the return.
        assert!(find(phi).end >= find(phi).start);
        // Constants are rematerialized: no interval.
        assert!(ivs.iter().all(|iv| iv.value != c || iv.start == 0));
    }

    #[test]
    fn loop_carried_value_lives_across_back_edge() {
        let mut b = GraphBuilder::new("l", &[Type::Int], Arc::new(ClassTable::new()));
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let cond = b.cmp(CmpOp::Lt, i, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        let inc = g.append_inst(
            body,
            dbds_ir::Inst::Binary {
                op: dbds_ir::BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let dbds_ir::Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        let lin = Linearization::compute(&g);
        let ivs = live_intervals(&g, &lin);
        let find = |v: dbds_ir::InstId| ivs.iter().find(|iv| iv.value == v).unwrap();
        // `inc` feeds the back-edge φ move: live to the body's end.
        assert_eq!(find(inc).end, lin.term_pos(body));
        // `n` is compared every iteration: live through the loop.
        assert!(find(n).end >= lin.term_pos(header));
        // `one` is a constant: rematerialized, no interval.
        assert!(!ivs.iter().any(|iv| iv.value == one));
    }
}
