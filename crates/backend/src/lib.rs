//! # dbds-backend — compiler back end substrate
//!
//! The paper measures *compile time* of whole compilations and *code
//! size* of installed machine code (§6.1). Both need a back end, so this
//! crate provides one for a compact fictional ISA:
//!
//! 1. [`Linearization`] — reverse-postorder block layout with global
//!    instruction numbering,
//! 2. [`live_intervals`] — dataflow liveness and live-interval
//!    construction (φ inputs live at predecessor ends),
//! 3. [`linear_scan`] — Poletto–Sarkar linear-scan register allocation
//!    with spilling,
//! 4. [`compile_to_machine_code`] — byte-accurate emission, including
//!    φ-resolving edge moves, spill reload/store code, write-barrier and
//!    bounds-check stubs, and call argument marshalling.
//!
//! The evaluation harness runs this back end after the optimizer in every
//! configuration, so compile-time and code-size comparisons cover the
//! whole pipeline like the paper's do.
//!
//! # Examples
//!
//! ```
//! use dbds_backend::compile_to_machine_code;
//! use dbds_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @f(x: int) {\n\
//!      entry:\n  one: int = const 1\n  s: int = add x, one\n  return s\n}",
//! )?;
//! let code = compile_to_machine_code(&m.graphs[0]);
//! assert!(code.size() > 0);
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod emit;
mod linearize;
mod liveness;
mod regalloc;

pub use emit::{compile_to_machine_code, MachineCode, NUM_REGS};
pub use linearize::Linearization;
pub use liveness::{live_intervals, BitSet, Interval};
pub use regalloc::{linear_scan, Allocation, Location};
