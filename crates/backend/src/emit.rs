//! Machine-code emission for a compact fictional ISA.
//!
//! The encoding is byte-accurate enough for realistic *code size*
//! measurements (the paper's third metric): every instruction costs an
//! opcode byte plus register operands, spilled operands cost explicit
//! reload/store bytes, large constants cost full immediates, φs dissolve
//! into edge moves emitted in predecessors, and calls marshal their
//! arguments.

use crate::linearize::Linearization;
use crate::liveness::live_intervals;
use crate::regalloc::{linear_scan, Allocation, Location};
use dbds_ir::{ConstValue, Graph, Inst, InstId, Terminator};

/// Number of allocatable registers of the fictional target.
pub const NUM_REGS: u8 = 16;

/// The emitted machine code and its statistics.
#[derive(Clone, Debug)]
pub struct MachineCode {
    /// The encoded bytes.
    pub bytes: Vec<u8>,
    /// Spilled value count.
    pub spills: u32,
    /// Stack frame slots.
    pub frame_slots: u32,
    /// φ-resolving moves emitted on edges.
    pub phi_moves: u32,
    /// Registers used.
    pub regs_used: u8,
}

impl MachineCode {
    /// The machine-code size in bytes — the paper's code-size metric.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

/// Runs the whole back end on `g`: linearization, liveness, linear scan,
/// emission.
pub fn compile_to_machine_code(g: &Graph) -> MachineCode {
    let lin = Linearization::compute(g);
    let intervals = live_intervals(g, &lin);
    let alloc = linear_scan(&intervals, NUM_REGS);
    emit(g, &lin, &alloc)
}

fn emit(g: &Graph, lin: &Linearization, alloc: &Allocation) -> MachineCode {
    let mut e = Emitter {
        g,
        alloc,
        bytes: Vec::new(),
        phi_moves: 0,
    };
    for (ix, &b) in lin.order.iter().enumerate() {
        for &i in g.block_insts(b) {
            e.emit_inst(i);
        }
        // φ-resolving moves for every outgoing edge, then the terminator.
        for s in g.succs(b) {
            let k = g.pred_index(s, b);
            for &phi in g.phis(s) {
                if let Inst::Phi { inputs } = g.inst(phi) {
                    e.emit_move(phi, inputs[k]);
                }
            }
        }
        // Jumps to the textually next block become fall-throughs and cost
        // no bytes, as in any real block layout.
        let next = lin.order.get(ix + 1).copied();
        e.emit_terminator(g.terminator(b), next);
    }
    MachineCode {
        bytes: e.bytes,
        spills: alloc.spills,
        frame_slots: alloc.slots,
        phi_moves: e.phi_moves,
        regs_used: alloc.regs_used,
    }
}

struct Emitter<'a> {
    g: &'a Graph,
    alloc: &'a Allocation,
    bytes: Vec<u8>,
    phi_moves: u32,
}

impl Emitter<'_> {
    fn op(&mut self, code: u8) {
        self.bytes.push(code);
    }

    /// Emits the bytes to bring `v` into an operand register, returning
    /// the register byte. Spilled values need a 3-byte reload; constants
    /// are rematerialized inline (2 bytes small, 9 bytes wide).
    fn use_val(&mut self, v: InstId) -> u8 {
        if let Inst::Const(c) = self.g.inst(v) {
            match c {
                ConstValue::Int(x) if !(-128..128).contains(x) => {
                    self.bytes.push(0xF2);
                    self.bytes.extend_from_slice(&x.to_le_bytes());
                }
                _ => {
                    self.bytes.push(0xF3);
                    self.bytes.push(match c {
                        ConstValue::Int(x) => *x as u8,
                        ConstValue::Bool(b) => *b as u8,
                        _ => 0,
                    });
                }
            }
            return 0xFE; // scratch register
        }
        match self.alloc.locations.get(&v) {
            Some(Location::Reg(r)) => *r,
            Some(Location::Slot(s)) => {
                // reload: opcode + slot16
                self.bytes.push(0xF0);
                self.bytes.extend_from_slice(&(*s as u16).to_le_bytes());
                0xFE // scratch register
            }
            None => 0xFF, // void/unallocated (never read at run time)
        }
    }

    /// Emits the bytes to park the result of `v`, returning the
    /// destination register byte. Spilled destinations need a 3-byte
    /// store.
    fn def_val(&mut self, v: InstId) -> u8 {
        match self.alloc.locations.get(&v) {
            Some(Location::Reg(r)) => *r,
            Some(Location::Slot(s)) => {
                self.bytes.push(0xF1);
                self.bytes.extend_from_slice(&(*s as u16).to_le_bytes());
                0xFE
            }
            None => 0xFF,
        }
    }

    fn emit_move(&mut self, dst: InstId, src: InstId) {
        if self.alloc.locations.get(&dst) == self.alloc.locations.get(&src) {
            return; // coalesced
        }
        self.phi_moves += 1;
        let s = self.use_val(src);
        let d = self.def_val(dst);
        self.op(0x01);
        self.bytes.push(d);
        self.bytes.push(s);
    }

    fn emit_inst(&mut self, i: InstId) {
        let kind = self.g.inst(i).kind() as u8;
        match self.g.inst(i).clone() {
            Inst::Phi { .. } => {} // resolved by edge moves
            Inst::Param(ix) => {
                // Parameters arrive in registers: a move at most.
                let d = self.def_val(i);
                self.op(0x02);
                self.bytes.push(d);
                self.bytes.push(ix as u8);
            }
            Inst::Const(_) => {} // rematerialized at each use
            Inst::Binary { lhs, rhs, .. } | Inst::Compare { lhs, rhs, .. } => {
                let a = self.use_val(lhs);
                let b = self.use_val(rhs);
                let d = self.def_val(i);
                self.op(0x10 + kind);
                self.bytes.push(d);
                self.bytes.push(a);
                self.bytes.push(b);
            }
            Inst::Not(x) | Inst::Neg(x) | Inst::ArrayLength(x) => {
                let a = self.use_val(x);
                let d = self.def_val(i);
                self.op(0x10 + kind);
                self.bytes.push(d);
                self.bytes.push(a);
            }
            Inst::New { class } => {
                // Inline TLAB allocation sequence (§5.3's CYCLES_8/SIZE_8
                // intuition): opcode + class16 + 8 setup bytes.
                let d = self.def_val(i);
                self.op(0x60);
                self.bytes.push(d);
                self.bytes
                    .extend_from_slice(&(class.index() as u16).to_le_bytes());
                self.bytes.extend_from_slice(&[0x90; 6]);
            }
            Inst::NewArray { length } => {
                let l = self.use_val(length);
                let d = self.def_val(i);
                self.op(0x61);
                self.bytes.push(d);
                self.bytes.push(l);
                self.bytes.extend_from_slice(&[0x90; 6]);
            }
            Inst::LoadField { object, field } => {
                let o = self.use_val(object);
                let d = self.def_val(i);
                self.op(0x62);
                self.bytes.push(d);
                self.bytes.push(o);
                self.bytes.push(field.index() as u8);
            }
            Inst::StoreField {
                object,
                field,
                value,
            } => {
                let o = self.use_val(object);
                let v = self.use_val(value);
                self.op(0x63);
                self.bytes.push(o);
                self.bytes.push(v);
                self.bytes.push(field.index() as u8);
                self.bytes.push(0x90); // write barrier stub
            }
            Inst::InstanceOf { object, class } => {
                let o = self.use_val(object);
                let d = self.def_val(i);
                self.op(0x64);
                self.bytes.push(d);
                self.bytes.push(o);
                self.bytes
                    .extend_from_slice(&(class.index() as u16).to_le_bytes());
            }
            Inst::ArrayLoad { array, index } => {
                let a = self.use_val(array);
                let x = self.use_val(index);
                let d = self.def_val(i);
                self.op(0x65);
                self.bytes.push(d);
                self.bytes.push(a);
                self.bytes.push(x);
                self.bytes.push(0x90); // bounds check stub
            }
            Inst::ArrayStore {
                array,
                index,
                value,
            } => {
                let a = self.use_val(array);
                let x = self.use_val(index);
                let v = self.use_val(value);
                self.op(0x66);
                self.bytes.push(a);
                self.bytes.push(x);
                self.bytes.push(v);
                self.bytes.push(0x90);
            }
            Inst::Invoke { args } => {
                // Argument marshalling: one move per argument, then the
                // call with a 4-byte target.
                for (n, &a) in args.iter().enumerate() {
                    let r = self.use_val(a);
                    self.op(0x05);
                    self.bytes.push(n as u8);
                    self.bytes.push(r);
                }
                let d = self.def_val(i);
                self.op(0x67);
                self.bytes.push(d);
                self.bytes.extend_from_slice(&[0, 0, 0, 0]);
            }
        }
    }

    fn emit_terminator(&mut self, t: &Terminator, next: Option<dbds_ir::BlockId>) {
        match t {
            Terminator::Jump { target } => {
                if Some(*target) == next {
                    return; // fall-through
                }
                self.op(0x70);
                self.bytes.extend_from_slice(&[0, 0, 0, 0]); // rel32
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                let c = self.use_val(*cond);
                // Conditional jump to the then target…
                self.op(0x71);
                self.bytes.push(c);
                self.bytes.extend_from_slice(&[0, 0, 0, 0]);
                let _ = then_bb;
                // …plus an unconditional jump to the else target unless it
                // falls through.
                if Some(*else_bb) != next {
                    self.op(0x70);
                    self.bytes.extend_from_slice(&[0, 0, 0, 0]);
                }
            }
            Terminator::Return { value } => {
                if let Some(v) = value {
                    let r = self.use_val(*v);
                    self.op(0x01);
                    self.bytes.push(0); // return register
                    self.bytes.push(r);
                }
                self.op(0x72);
            }
            Terminator::Deopt => {
                self.op(0x73);
                self.bytes.extend_from_slice(&[0; 7]); // deopt metadata
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    #[test]
    fn emits_nonempty_deterministic_code() {
        let mut b = GraphBuilder::new("e", &[Type::Int], empty_table());
        let x = b.param(0);
        let one = b.iconst(1);
        let s = b.add(x, one);
        b.ret(Some(s));
        let g = b.finish();
        let m1 = compile_to_machine_code(&g);
        let m2 = compile_to_machine_code(&g);
        assert_eq!(m1.bytes, m2.bytes);
        assert!(m1.size() > 0);
        assert_eq!(m1.spills, 0);
    }

    #[test]
    fn bigger_graphs_emit_more_bytes() {
        let small = {
            let mut b = GraphBuilder::new("s", &[Type::Int], empty_table());
            let x = b.param(0);
            b.ret(Some(x));
            b.finish()
        };
        let big = {
            let mut b = GraphBuilder::new("b", &[Type::Int], empty_table());
            let mut acc = b.param(0);
            for k in 0..50 {
                let c = b.iconst(k);
                acc = b.add(acc, c);
            }
            b.ret(Some(acc));
            b.finish()
        };
        assert!(
            compile_to_machine_code(&big).size() > compile_to_machine_code(&small).size() + 100
        );
    }

    #[test]
    fn phis_become_edge_moves() {
        let mut b = GraphBuilder::new("p", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        let two = b.iconst(2);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![one, two], Type::Int);
        // Keep both inputs live past the merge so the φ cannot be
        // coalesced with them.
        let s1 = b.add(phi, one);
        let s2 = b.add(s1, two);
        b.ret(Some(s2));
        let g = b.finish();
        let m = compile_to_machine_code(&g);
        assert!(
            m.phi_moves >= 2,
            "expected resolving moves, got {}",
            m.phi_moves
        );
    }

    #[test]
    fn high_register_pressure_spills() {
        // 40 simultaneously live values exceed the 16 registers.
        let mut b = GraphBuilder::new("hp", &[Type::Int], empty_table());
        let x = b.param(0);
        let vals: Vec<_> = (0..40)
            .map(|k| {
                let c = b.iconst(k);
                b.add(x, c)
            })
            .collect();
        // Sum them all so everything stays live.
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.add(acc, v);
        }
        b.ret(Some(acc));
        let g = b.finish();
        let m = compile_to_machine_code(&g);
        assert!(m.spills > 0, "expected spills under pressure");
        assert!(m.frame_slots > 0);
        assert_eq!(m.regs_used, NUM_REGS);
    }

    #[test]
    fn large_constants_cost_more_than_small_ones() {
        let size_for = |v: i64| {
            let mut b = GraphBuilder::new("c", &[], empty_table());
            let c = b.iconst(v);
            b.ret(Some(c));
            compile_to_machine_code(&b.finish()).size()
        };
        assert!(size_for(1 << 40) > size_for(1));
    }

    #[test]
    fn whole_suite_workload_compiles() {
        let mut b = GraphBuilder::new("loop", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.branch(c, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        let inc = g.append_inst(
            body,
            dbds_ir::Inst::Binary {
                op: dbds_ir::BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let dbds_ir::Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        let m = compile_to_machine_code(&g);
        assert!(m.size() > 20);
        // The back-edge update (i ← i+1) can never be coalesced because
        // both values are simultaneously live.
        assert!(m.phi_moves >= 1);
    }
}
