//! Linear-scan register allocation (Poletto & Sarkar style).

use crate::liveness::Interval;
use dbds_ir::InstId;
use std::collections::HashMap;

/// Where a value lives after allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Location {
    /// A machine register.
    Reg(u8),
    /// A stack slot (spilled).
    Slot(u32),
}

impl Location {
    /// Returns `true` for spilled values.
    pub fn is_slot(self) -> bool {
        matches!(self, Location::Slot(_))
    }
}

/// The allocation result.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of every allocated value.
    pub locations: HashMap<InstId, Location>,
    /// Number of stack slots used.
    pub slots: u32,
    /// Number of values spilled.
    pub spills: u32,
    /// Number of distinct registers used.
    pub regs_used: u8,
}

impl Allocation {
    /// Location of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not allocated (void or unreachable values).
    pub fn loc(&self, v: InstId) -> Location {
        self.locations[&v]
    }
}

/// Allocates `intervals` (sorted by start) to `num_regs` registers.
pub fn linear_scan(intervals: &[Interval], num_regs: u8) -> Allocation {
    assert!(num_regs > 0, "need at least one register");
    let mut locations: HashMap<InstId, Location> = HashMap::new();
    // Active intervals currently holding a register, sorted by end.
    let mut active: Vec<(Interval, u8)> = Vec::new();
    let mut free: Vec<u8> = (0..num_regs).rev().collect();
    let mut slots: u32 = 0;
    let mut spills: u32 = 0;
    let mut regs_used: u8 = 0;

    for &iv in intervals {
        // Expire intervals that ended before this one starts.
        let mut k = 0;
        while k < active.len() {
            if active[k].0.end < iv.start {
                free.push(active[k].1);
                active.remove(k);
            } else {
                k += 1;
            }
        }
        if let Some(r) = free.pop() {
            locations.insert(iv.value, Location::Reg(r));
            regs_used = regs_used.max(r + 1);
            active.push((iv, r));
            active.sort_by_key(|(a, _)| a.end);
        } else {
            // Spill heuristic: evict the candidate (an active interval or
            // the current one) with the worst range-length-per-use score —
            // long, rarely-used ranges go to the stack, hot values keep
            // their registers.
            let score =
                |a: &Interval| (a.end.saturating_sub(iv.start)) as f64 / (1.0 + a.uses as f64);
            let (victim_ix, _) = active
                .iter()
                .enumerate()
                .map(|(ix, (a, _))| (ix, score(a)))
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("active non-empty when full");
            if score(&active[victim_ix].0) > score(&iv) {
                let (victim, r) = active.remove(victim_ix);
                locations.insert(iv.value, Location::Reg(r));
                locations.insert(victim.value, Location::Slot(slots));
                slots += 1;
                spills += 1;
                active.push((iv, r));
                active.sort_by_key(|(a, _)| a.end);
            } else {
                locations.insert(iv.value, Location::Slot(slots));
                slots += 1;
                spills += 1;
            }
        }
    }
    Allocation {
        locations,
        slots,
        spills,
        regs_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(v: u32, start: u32, end: u32) -> Interval {
        Interval {
            value: InstId(v),
            start,
            end,
            uses: 1,
        }
    }

    #[test]
    fn disjoint_intervals_share_one_register() {
        let ivs = vec![iv(0, 0, 1), iv(1, 2, 3), iv(2, 4, 5)];
        let a = linear_scan(&ivs, 4);
        assert_eq!(a.spills, 0);
        assert_eq!(a.loc(InstId(0)), a.loc(InstId(1)));
        assert_eq!(a.loc(InstId(1)), a.loc(InstId(2)));
    }

    #[test]
    fn overlapping_intervals_get_distinct_registers() {
        let ivs = vec![iv(0, 0, 10), iv(1, 1, 9), iv(2, 2, 8)];
        let a = linear_scan(&ivs, 4);
        assert_eq!(a.spills, 0);
        let l0 = a.loc(InstId(0));
        let l1 = a.loc(InstId(1));
        let l2 = a.loc(InstId(2));
        assert_ne!(l0, l1);
        assert_ne!(l1, l2);
        assert_ne!(l0, l2);
        assert_eq!(a.regs_used, 3);
    }

    #[test]
    fn pressure_beyond_registers_spills_longest() {
        // Three overlapping intervals, two registers: the one ending last
        // gets spilled.
        let ivs = vec![iv(0, 0, 100), iv(1, 1, 5), iv(2, 2, 6)];
        let a = linear_scan(&ivs, 2);
        assert_eq!(a.spills, 1);
        assert!(a.loc(InstId(0)).is_slot(), "{:?}", a.locations);
        assert!(!a.loc(InstId(1)).is_slot());
        assert!(!a.loc(InstId(2)).is_slot());
    }

    #[test]
    fn current_interval_spilled_when_it_ends_last() {
        let ivs = vec![iv(0, 0, 5), iv(1, 1, 6), iv(2, 2, 100)];
        let a = linear_scan(&ivs, 2);
        assert_eq!(a.spills, 1);
        assert!(a.loc(InstId(2)).is_slot());
    }

    #[test]
    fn many_spills_use_distinct_slots() {
        let ivs: Vec<Interval> = (0..10).map(|v| iv(v, 0, 50)).collect();
        let a = linear_scan(&ivs, 2);
        assert_eq!(a.spills, 8);
        assert_eq!(a.slots, 8);
        let mut slot_ids: Vec<u32> = a
            .locations
            .values()
            .filter_map(|l| match l {
                Location::Slot(s) => Some(*s),
                Location::Reg(_) => None,
            })
            .collect();
        slot_ids.sort();
        slot_ids.dedup();
        assert_eq!(slot_ids.len(), 8);
    }
}
