//! Block linearization and global instruction numbering.
//!
//! The back end lays blocks out in reverse postorder (entry first, loop
//! bodies contiguous) and assigns every live instruction a global
//! position; liveness and linear scan work over these positions.

use dbds_analysis::reverse_postorder;
use dbds_ir::{BlockId, Graph, InstId};
use std::collections::HashMap;

/// A linear layout of a graph.
#[derive(Clone, Debug)]
pub struct Linearization {
    /// Reachable blocks in emission order.
    pub order: Vec<BlockId>,
    /// Global position of every instruction (terminators get the position
    /// after their block's last instruction).
    pub inst_pos: HashMap<InstId, u32>,
    /// Half-open position range `[start, end)` of each block, indexed by
    /// `BlockId::index()` (unreachable blocks keep `(0, 0)`).
    pub block_range: Vec<(u32, u32)>,
    /// Total number of positions (instructions + one terminator slot per
    /// block).
    pub len: u32,
}

impl Linearization {
    /// Lays out `g`.
    pub fn compute(g: &Graph) -> Self {
        let order = reverse_postorder(g);
        let mut inst_pos = HashMap::new();
        let mut block_range = vec![(0u32, 0u32); g.block_count()];
        let mut pos: u32 = 0;
        for &b in &order {
            let start = pos;
            for &i in g.block_insts(b) {
                inst_pos.insert(i, pos);
                pos += 1;
            }
            pos += 1; // terminator slot
            block_range[b.index()] = (start, pos);
        }
        Linearization {
            order,
            inst_pos,
            block_range,
            len: pos,
        }
    }

    /// Position of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in a reachable block.
    pub fn pos(&self, i: InstId) -> u32 {
        self.inst_pos[&i]
    }

    /// Position of the terminator of `b`.
    pub fn term_pos(&self, b: BlockId) -> u32 {
        self.block_range[b.index()].1 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
    use std::sync::Arc;

    #[test]
    fn entry_is_first_and_positions_are_dense() {
        let mut b = GraphBuilder::new("l", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.ret(Some(x));
        b.switch_to(bf);
        b.ret(Some(zero));
        let g = b.finish();
        let lin = Linearization::compute(&g);
        assert_eq!(lin.order[0], g.entry());
        assert_eq!(lin.pos(x), 0);
        assert_eq!(lin.pos(zero), 1);
        assert_eq!(lin.pos(c), 2);
        assert_eq!(lin.term_pos(g.entry()), 3);
        // 4 positions for entry (3 insts + term), 1 each for bt/bf.
        assert_eq!(lin.len, 6);
        let (s, e) = lin.block_range[bt.index()];
        assert_eq!(e - s, 1);
    }

    #[test]
    fn unreachable_blocks_are_skipped() {
        let mut b = GraphBuilder::new("u", &[], Arc::new(ClassTable::new()));
        b.ret(None);
        let mut g = b.finish();
        let dead = g.add_block();
        let lin = Linearization::compute(&g);
        assert!(!lin.order.contains(&dead));
        assert_eq!(lin.block_range[dead.index()], (0, 0));
    }
}
