//! Structured static-analysis framework for the IR.
//!
//! Where [`crate::verify`] answers "is this graph sound?" with a flat
//! list of strings, this module gives every check an identity
//! ([`LintId`]), a severity ([`Severity`]) and a location, so bailout
//! records, the harness and CI can reason about *which* invariant broke
//! and how often. The pieces:
//!
//! - [`Diagnostic`]: one finding — lint id, severity, optional block /
//!   instruction anchor and the human-readable message.
//! - [`LintPass`] / [`LintRegistry`]: graph-level passes and the registry
//!   that runs them. [`LintRegistry::default`] holds every built-in pass;
//!   higher layers (dbds-analysis' cached-analysis audit, dbds-core's
//!   cost-sanity and prediction audits) contribute [`Diagnostic`]s for
//!   the non-graph lints of [`LintId`] through [`LintReport::extend`].
//! - [`LintReport`]: the sorted, deterministic result. Diagnostics are
//!   ordered by (block, instruction, lint, message) regardless of the
//!   order passes emitted them, so two runs over the same graph render
//!   byte-identical output.
//!
//! [`crate::verify`] is a thin wrapper over this module: it runs the
//! default registry and reports the error-severity messages, so every
//! existing call site (including the bailout checkpoint path) now runs
//! the lint framework.
//!
//! # Examples
//!
//! ```
//! use dbds_ir::{lint, parse_module, LintId};
//!
//! let m = parse_module(
//!     "func @f(c: bool) {\n\
//!      entry:\n  branch c, bt, bf, prob 0.5\n\
//!      bt:\n  jump bm\n\
//!      bf:\n  jump bm\n\
//!      bm:\n  return\n}",
//! )?;
//! let report = lint(&m.graphs[0]);
//! assert!(report.is_clean());
//! assert_eq!(report.count_of(LintId::SsaDominance), 0);
//! # Ok::<(), dbds_ir::ParseError>(())
//! ```

use crate::ids::{BlockId, InstId};
use crate::inst::{CmpOp, Inst, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::collections::HashMap;
use std::fmt;

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A hygiene or quality finding; the graph is still sound.
    Warn,
    /// A broken invariant; the graph must not be compiled further.
    Error,
}

impl Severity {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declares [`LintId`] in one place: the variant (with its doc), its
/// stable kebab-case name and its fixed severity. The `ALL` slice,
/// `name()` and `severity()` are generated from the same list, so adding
/// a lint cannot desync the per-lint counters that iterate `ALL` — the
/// compiler derives the slice length from the declaration itself.
macro_rules! declare_lints {
    ($( $(#[$meta:meta])* $variant:ident = $name:literal => $sev:ident ),+ $(,)?) => {
        /// The identity of one lint. Every diagnostic the workspace
        /// produces carries one of these, and the per-lint counters of
        /// the harness report iterate [`LintId::ALL`] in this (stable)
        /// order.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum LintId {
            $( $(#[$meta])* $variant, )+
        }

        impl LintId {
            /// Every lint, in report order. Generated alongside the enum,
            /// so the slice can never go out of sync with the variants.
            pub const ALL: &'static [LintId] = &[ $(LintId::$variant),+ ];

            /// Stable kebab-case name (used by reports and the CI gate).
            pub fn name(self) -> &'static str {
                match self { $(LintId::$variant => $name),+ }
            }

            /// The fixed severity of this lint.
            pub fn severity(self) -> Severity {
                match self { $(LintId::$variant => Severity::$sev),+ }
            }
        }
    };
}

declare_lints! {
    /// Edge / listing bookkeeping: pred–succ symmetry, entry
    /// predecessors, duplicate branch targets, unreachable predecessors
    /// of reachable blocks, instruction↔block record mismatches.
    GraphConsistency = "graph-consistency" => Error,
    /// Branch probability outside `[0, 1]` or NaN.
    BranchProbability = "branch-probability" => Error,
    /// φ after a non-φ, φ arity vs. predecessor count, φ in a block
    /// without predecessors.
    PhiPlacement = "phi-placement" => Error,
    /// Param outside the entry block, index out of range, or type
    /// mismatch with the signature.
    ParamPlacement = "param-placement" => Error,
    /// A use of an out-of-range value or a removed instruction.
    DanglingUse = "dangling-use" => Error,
    /// An instruction whose operand or result types violate its rules.
    TypeError = "type-error" => Error,
    /// A use not dominated by its definition (including φ inputs that do
    /// not dominate their predecessor).
    SsaDominance = "ssa-dominance" => Error,
    /// A block unreachable from entry that still holds instructions —
    /// the cleanup pass should have emptied it.
    UnreachableBlock = "unreachable-block" => Warn,
    /// A φ whose inputs are all the same value (or itself): a synonym
    /// the simplifier should have folded.
    TrivialPhi = "trivial-phi" => Warn,
    /// A critical edge into a merge: the source has several successors
    /// and the target several predecessors, so nothing can be sunk onto
    /// the edge without splitting it.
    CriticalEdge = "critical-edge" => Warn,
    /// A versioned [`AnalysisCache`](https://docs.rs/) entry that claims
    /// to be current but differs from a from-scratch recomputation
    /// (emitted by dbds-analysis' audit).
    StaleAnalysis = "stale-analysis" => Error,
    /// A simulation result with a non-finite (or negative) probability
    /// or cycles-saved estimate (emitted by dbds-core).
    NonFiniteBenefit = "non-finite-benefit" => Error,
    /// A candidate sequence whose accrued size would go below zero
    /// (emitted by dbds-core).
    NegativeAccruedSize = "negative-accrued-size" => Error,
    /// A recorded opportunity whose applicability check no longer fires
    /// on the graph it is about to be applied to (emitted by the
    /// optimization tier's prediction audit).
    Misprediction = "misprediction" => Warn,
    /// A reachable block with no path to any exit block: an infinite
    /// region the profile-driven tiers cannot attenuate.
    NoExitPath = "no-exit-path" => Warn,
    /// Code that is control dependent on a statically-dead branch edge
    /// (probability exactly 0 toward it): the profile and the
    /// control-dependence structure contradict each other.
    ControlDepViolation = "control-dep-violation" => Error,
    /// A duplication left the dominance frontiers structurally broken:
    /// a frontier disagrees with a definition-based recomputation over
    /// the forward edges, or the copy's and merge's frontiers diverge
    /// although neither block dominates the other (emitted by
    /// dbds-core's post-duplication check).
    FrontierViolation = "frontier-violation" => Error,
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of a lint pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: LintId,
    /// The lint's severity (always `lint.severity()`).
    pub severity: Severity,
    /// The block the finding anchors to, if any.
    pub block: Option<BlockId>,
    /// The instruction the finding anchors to, if any.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity comes from the lint.
    pub fn new(
        lint: LintId,
        block: Option<BlockId>,
        inst: Option<InstId>,
        message: String,
    ) -> Self {
        Diagnostic {
            lint,
            severity: lint.severity(),
            block,
            inst,
            message,
        }
    }

    /// The deterministic report order: (block, inst, lint); anchorless
    /// diagnostics sort last within their group.
    fn sort_key(&self) -> (u64, u64, LintId, &str) {
        (
            self.block.map_or(u64::MAX, |b| b.index() as u64),
            self.inst.map_or(u64::MAX, |i| i.index() as u64),
            self.lint,
            &self.message,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.lint, self.message)
    }
}

/// The sorted result of running lint passes.
///
/// Diagnostics are kept ordered by (block, inst, lint, message), so the
/// rendered form is identical across runs no matter which pass emitted
/// what first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report from unordered diagnostics.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        LintReport { diagnostics }
    }

    /// All diagnostics, in report order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Merges further diagnostics (e.g. from a non-graph pass) into the
    /// report, restoring the sorted order.
    pub fn extend(&mut self, more: Vec<Diagnostic>) {
        self.diagnostics.extend(more);
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }

    /// The error-severity diagnostics, in report order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warn-severity diagnostics, in report order.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warn-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// `true` when no *error*-severity diagnostics were found (warnings
    /// are hygiene, not soundness).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// How many diagnostics carry `lint`.
    pub fn count_of(&self, lint: LintId) -> usize {
        self.diagnostics.iter().filter(|d| d.lint == lint).count()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// One registered graph-level lint pass.
pub trait LintPass {
    /// Stable pass name (for listings and debugging).
    fn name(&self) -> &'static str;
    /// Runs the pass over `g`, pushing findings into `out`.
    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>);
}

/// The ordered collection of graph-level passes to run.
pub struct LintRegistry {
    passes: Vec<Box<dyn LintPass>>,
}

impl fmt::Debug for LintRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LintRegistry")
            .field("passes", &self.pass_names())
            .finish()
    }
}

impl Default for LintRegistry {
    /// Every built-in pass: the four soundness checks the verifier always
    /// ran, plus the CFG-hygiene pass.
    fn default() -> Self {
        LintRegistry {
            passes: vec![
                Box::new(EdgePass),
                Box::new(BlockPass),
                Box::new(TypePass),
                Box::new(DominancePass),
                Box::new(HygienePass),
                Box::new(ReverseCfgPass),
            ],
        }
    }
}

impl LintRegistry {
    /// An empty registry (add passes with [`LintRegistry::register`]).
    pub fn new() -> Self {
        LintRegistry { passes: Vec::new() }
    }

    /// Appends a pass to the run order.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every registered pass over `g`.
    pub fn run(&self, g: &Graph) -> LintReport {
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(g, &mut out);
        }
        LintReport::from_diagnostics(out)
    }
}

/// Runs the default registry (all built-in passes) over `g`.
pub fn lint(g: &Graph) -> LintReport {
    LintRegistry::default().run(g)
}

/// Shared emit helper for the built-in passes.
struct Sink<'a> {
    out: &'a mut Vec<Diagnostic>,
}

impl Sink<'_> {
    fn emit(
        &mut self,
        lint: LintId,
        block: Option<BlockId>,
        inst: Option<InstId>,
        message: String,
    ) {
        self.out.push(Diagnostic::new(lint, block, inst, message));
    }
}

/// Edge bookkeeping: pred/succ symmetry, entry predecessors, duplicate
/// branch targets, branch probabilities, unreachable predecessors.
struct EdgePass;

impl LintPass for EdgePass {
    fn name(&self) -> &'static str {
        "edges"
    }

    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        if !g.preds(g.entry()).is_empty() {
            s.emit(
                LintId::GraphConsistency,
                Some(g.entry()),
                None,
                format!("entry {} has predecessors", g.entry()),
            );
        }
        for b in g.blocks() {
            let succs = g.succs(b);
            if succs.len() == 2 && succs[0] == succs[1] {
                s.emit(
                    LintId::GraphConsistency,
                    Some(b),
                    None,
                    format!("{b} branches to the same block twice"),
                );
            }
            for succ in &succs {
                let n = g.preds(*succ).iter().filter(|&&p| p == b).count();
                if n != 1 {
                    s.emit(
                        LintId::GraphConsistency,
                        Some(b),
                        None,
                        format!(
                            "edge {b} -> {succ}: successor records {n} matching pred entries, expected 1"
                        ),
                    );
                }
            }
            for &p in g.preds(b) {
                if !g.succs(p).contains(&b) {
                    s.emit(
                        LintId::GraphConsistency,
                        Some(b),
                        None,
                        format!("{b} lists pred {p}, but {p} does not branch to {b}"),
                    );
                }
            }
            if let Terminator::Branch { prob_then, .. } = g.terminator(b) {
                if !(0.0..=1.0).contains(prob_then) || prob_then.is_nan() {
                    s.emit(
                        LintId::BranchProbability,
                        Some(b),
                        None,
                        format!("{b}: branch probability {prob_then} outside [0,1]"),
                    );
                }
            }
        }
        // Reachable blocks must not have unreachable predecessors: the
        // cleanup pass must disconnect dead code before verification.
        let mut reachable = vec![false; g.block_count()];
        for b in g.reachable_blocks() {
            reachable[b.index()] = true;
        }
        for b in g.blocks().filter(|b| reachable[b.index()]) {
            for &p in g.preds(b) {
                if !reachable[p.index()] {
                    s.emit(
                        LintId::GraphConsistency,
                        Some(b),
                        None,
                        format!("reachable {b} has unreachable predecessor {p}"),
                    );
                }
            }
        }
    }
}

/// Block layout: instruction↔block records, φ placement and arity, param
/// placement, dangling value references.
struct BlockPass;

impl LintPass for BlockPass {
    fn name(&self) -> &'static str {
        "blocks"
    }

    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        for b in g.blocks() {
            let mut seen_non_phi = false;
            for &i in g.block_insts(b) {
                if g.block_of(i) != Some(b) {
                    s.emit(
                        LintId::GraphConsistency,
                        Some(b),
                        Some(i),
                        format!("{i} listed in {b} but records block {:?}", g.block_of(i)),
                    );
                }
                match g.inst(i) {
                    Inst::Phi { inputs } => {
                        if seen_non_phi {
                            s.emit(
                                LintId::PhiPlacement,
                                Some(b),
                                Some(i),
                                format!("{b}: phi {i} appears after non-phi instructions"),
                            );
                        }
                        if inputs.len() != g.preds(b).len() {
                            s.emit(
                                LintId::PhiPlacement,
                                Some(b),
                                Some(i),
                                format!(
                                    "{b}: phi {i} has {} inputs but the block has {} predecessors",
                                    inputs.len(),
                                    g.preds(b).len()
                                ),
                            );
                        }
                        if g.preds(b).is_empty() {
                            s.emit(
                                LintId::PhiPlacement,
                                Some(b),
                                Some(i),
                                format!("{b}: phi {i} in a block without predecessors"),
                            );
                        }
                    }
                    Inst::Param(idx) => {
                        if b != g.entry() {
                            s.emit(
                                LintId::ParamPlacement,
                                Some(b),
                                Some(i),
                                format!("param {i} outside the entry block"),
                            );
                        }
                        if *idx as usize >= g.param_types().len() {
                            s.emit(
                                LintId::ParamPlacement,
                                Some(b),
                                Some(i),
                                format!("param {i} index {idx} out of range"),
                            );
                        } else if g.ty(i) != g.param_types()[*idx as usize] {
                            s.emit(
                                LintId::ParamPlacement,
                                Some(b),
                                Some(i),
                                format!("param {i} type mismatch with signature"),
                            );
                        }
                        seen_non_phi = true;
                    }
                    _ => seen_non_phi = true,
                }
                g.inst(i).for_each_input(|input| {
                    if input.index() >= g.inst_count() {
                        s.emit(
                            LintId::DanglingUse,
                            Some(b),
                            Some(i),
                            format!("{i} references out-of-range value {input}"),
                        );
                    } else if g.block_of(input).is_none() {
                        s.emit(
                            LintId::DanglingUse,
                            Some(b),
                            Some(i),
                            format!("{i} in {b} uses removed instruction {input}"),
                        );
                    }
                });
            }
            g.terminator(b).for_each_input(|input| {
                if g.block_of(input).is_none() {
                    s.emit(
                        LintId::DanglingUse,
                        Some(b),
                        None,
                        format!("terminator of {b} uses removed instruction {input}"),
                    );
                }
            });
        }
    }
}

/// Per-instruction type rules plus branch-condition typing.
struct TypePass;

impl TypePass {
    fn comparable(a: Type, b: Type) -> bool {
        matches!(
            (a, b),
            (Type::Int, Type::Int)
                | (Type::Bool, Type::Bool)
                | (Type::Arr, Type::Arr)
                | (Type::Ref(_), Type::Ref(_))
        )
    }

    fn check_receiver(
        s: &mut Sink<'_>,
        g: &Graph,
        b: BlockId,
        at: InstId,
        object: InstId,
        field: crate::ids::FieldId,
    ) {
        let table = g.class_table();
        if !table.contains_field(field) {
            s.emit(
                LintId::TypeError,
                Some(b),
                Some(at),
                format!("{at}: unknown field {field}"),
            );
            return;
        }
        match g.ty(object) {
            Type::Ref(c) => {
                if !table.field_belongs_to(field, c) {
                    s.emit(
                        LintId::TypeError,
                        Some(b),
                        Some(at),
                        format!("{at}: field {field} does not belong to class {c}"),
                    );
                }
            }
            other => s.emit(
                LintId::TypeError,
                Some(b),
                Some(at),
                format!("{at}: field access on {other}"),
            ),
        }
    }

    fn expect(s: &mut Sink<'_>, g: &Graph, b: BlockId, at: InstId, v: InstId, ty: Type) {
        let actual = g.ty(v);
        if actual != ty {
            s.emit(
                LintId::TypeError,
                Some(b),
                Some(at),
                format!("{at}: operand {v} has type {actual}, expected {ty}"),
            );
        }
    }
}

impl LintPass for TypePass {
    fn name(&self) -> &'static str {
        "types"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        let table = g.class_table().clone();
        for b in g.blocks() {
            for &i in g.block_insts(b) {
                // Out-of-range operands are DanglingUse findings; typing
                // them would index past the instruction table.
                let mut out_of_range = false;
                g.inst(i).for_each_input(|input| {
                    if input.index() >= g.inst_count() {
                        out_of_range = true;
                    }
                });
                if out_of_range {
                    continue;
                }
                let ty = g.ty(i);
                let err = |s: &mut Sink<'_>, msg: String| {
                    s.emit(LintId::TypeError, Some(b), Some(i), msg)
                };
                match g.inst(i) {
                    Inst::Const(c) => {
                        if c.ty() != ty {
                            err(&mut s, format!("{i}: constant {c} typed {ty}"));
                        }
                        if let ConstValue::Null(cl) = c {
                            if !table.contains_class(*cl) {
                                err(&mut s, format!("{i}: null of unknown class {cl}"));
                            }
                        }
                    }
                    Inst::Param(_) => {}
                    Inst::Binary { lhs, rhs, .. } => {
                        Self::expect(&mut s, g, b, i, *lhs, Type::Int);
                        Self::expect(&mut s, g, b, i, *rhs, Type::Int);
                        if ty != Type::Int {
                            err(&mut s, format!("{i}: binary op typed {ty}"));
                        }
                    }
                    Inst::Compare { op, lhs, rhs } => {
                        let lt = g.ty(*lhs);
                        let rt = g.ty(*rhs);
                        let ordered = matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
                        if ordered && (lt != Type::Int || rt != Type::Int) {
                            err(&mut s, format!("{i}: ordered comparison of {lt} and {rt}"));
                        }
                        if !ordered && !Self::comparable(lt, rt) {
                            err(&mut s, format!("{i}: equality comparison of {lt} and {rt}"));
                        }
                        if ty != Type::Bool {
                            err(&mut s, format!("{i}: comparison typed {ty}"));
                        }
                    }
                    Inst::Not(x) => {
                        Self::expect(&mut s, g, b, i, *x, Type::Bool);
                        if ty != Type::Bool {
                            err(&mut s, format!("{i}: not typed {ty}"));
                        }
                    }
                    Inst::Neg(x) => {
                        Self::expect(&mut s, g, b, i, *x, Type::Int);
                        if ty != Type::Int {
                            err(&mut s, format!("{i}: neg typed {ty}"));
                        }
                    }
                    Inst::Phi { inputs } => {
                        for &input in inputs {
                            if g.ty(input) != ty {
                                err(
                                    &mut s,
                                    format!(
                                        "{i}: phi typed {ty} has input {input} of type {}",
                                        g.ty(input)
                                    ),
                                );
                            }
                        }
                    }
                    Inst::New { class } => {
                        if !table.contains_class(*class) {
                            err(&mut s, format!("{i}: new of unknown class {class}"));
                        } else if ty != Type::Ref(*class) {
                            err(&mut s, format!("{i}: new {class} typed {ty}"));
                        }
                    }
                    Inst::LoadField { object, field } => {
                        Self::check_receiver(&mut s, g, b, i, *object, *field);
                        if table.contains_field(*field) && ty != table.field(*field).ty {
                            err(&mut s, format!("{i}: load of {field} typed {ty}"));
                        }
                    }
                    Inst::StoreField {
                        object,
                        field,
                        value,
                    } => {
                        Self::check_receiver(&mut s, g, b, i, *object, *field);
                        if table.contains_field(*field) && g.ty(*value) != table.field(*field).ty {
                            err(
                                &mut s,
                                format!("{i}: store of {} into {field}", g.ty(*value)),
                            );
                        }
                        if ty != Type::Void {
                            err(&mut s, format!("{i}: store typed {ty}"));
                        }
                    }
                    Inst::InstanceOf { object, class } => {
                        if !matches!(g.ty(*object), Type::Ref(_)) {
                            err(&mut s, format!("{i}: instanceof on {}", g.ty(*object)));
                        }
                        if !table.contains_class(*class) {
                            err(&mut s, format!("{i}: instanceof unknown class {class}"));
                        }
                        if ty != Type::Bool {
                            err(&mut s, format!("{i}: instanceof typed {ty}"));
                        }
                    }
                    Inst::NewArray { length } => {
                        Self::expect(&mut s, g, b, i, *length, Type::Int);
                        if ty != Type::Arr {
                            err(&mut s, format!("{i}: newarray typed {ty}"));
                        }
                    }
                    Inst::ArrayLoad { array, index } => {
                        Self::expect(&mut s, g, b, i, *array, Type::Arr);
                        Self::expect(&mut s, g, b, i, *index, Type::Int);
                        if ty != Type::Int {
                            err(&mut s, format!("{i}: aload typed {ty}"));
                        }
                    }
                    Inst::ArrayStore {
                        array,
                        index,
                        value,
                    } => {
                        Self::expect(&mut s, g, b, i, *array, Type::Arr);
                        Self::expect(&mut s, g, b, i, *index, Type::Int);
                        Self::expect(&mut s, g, b, i, *value, Type::Int);
                        if ty != Type::Void {
                            err(&mut s, format!("{i}: astore typed {ty}"));
                        }
                    }
                    Inst::ArrayLength(a) => {
                        Self::expect(&mut s, g, b, i, *a, Type::Arr);
                        if ty != Type::Int {
                            err(&mut s, format!("{i}: alength typed {ty}"));
                        }
                    }
                    Inst::Invoke { args } => {
                        for &a in args {
                            if g.ty(a) == Type::Void {
                                err(&mut s, format!("{i}: invoke passes void value {a}"));
                            }
                        }
                        if ty != Type::Int {
                            err(&mut s, format!("{i}: invoke typed {ty}"));
                        }
                    }
                }
            }
            if let Terminator::Branch { cond, .. } = g.terminator(b) {
                if cond.index() < g.inst_count() && g.ty(*cond) != Type::Bool {
                    s.emit(
                        LintId::TypeError,
                        Some(b),
                        None,
                        format!("terminator of {b}: branch on {}", g.ty(*cond)),
                    );
                }
            }
        }
    }
}

/// The SSA dominance property: every use is dominated by its definition,
/// and every φ input dominates (the end of) its predecessor.
struct DominancePass;

impl LintPass for DominancePass {
    fn name(&self) -> &'static str {
        "dominance"
    }

    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        let dom = SimpleDomTree::compute(g);
        // Position of each instruction within its block for same-block checks.
        let mut pos: HashMap<InstId, usize> = HashMap::new();
        for b in g.blocks() {
            for (k, &i) in g.block_insts(b).iter().enumerate() {
                pos.insert(i, k);
            }
        }
        let available_at_end = |v: InstId, b: BlockId| {
            if v.index() >= g.inst_count() {
                return false;
            }
            match g.block_of(v) {
                Some(db) => dom.dominates(db, b),
                None => false,
            }
        };
        let dominates_use = |v: InstId, b: BlockId, use_pos: usize| {
            if v.index() >= g.inst_count() {
                return false;
            }
            match g.block_of(v) {
                Some(db) if db == b => pos.get(&v).is_some_and(|&p| p < use_pos),
                Some(db) => dom.dominates(db, b),
                None => false,
            }
        };
        for &b in &dom.rpo {
            for (k, &i) in g.block_insts(b).iter().enumerate() {
                match g.inst(i) {
                    Inst::Phi { inputs } => {
                        let preds = g.preds(b).to_vec();
                        for (input, &pred) in inputs.iter().zip(preds.iter()) {
                            if !available_at_end(*input, pred) {
                                s.emit(
                                    LintId::SsaDominance,
                                    Some(b),
                                    Some(i),
                                    format!(
                                        "{i} in {b}: phi input {input} does not dominate predecessor {pred}"
                                    ),
                                );
                            }
                        }
                    }
                    inst => {
                        let mut bad = Vec::new();
                        inst.for_each_input(|input| {
                            if !dominates_use(input, b, k) {
                                bad.push(input);
                            }
                        });
                        for input in bad {
                            s.emit(
                                LintId::SsaDominance,
                                Some(b),
                                Some(i),
                                format!(
                                    "{i} in {b}: use of {input} not dominated by its definition"
                                ),
                            );
                        }
                    }
                }
            }
            let term = g.terminator(b);
            let end = g.block_insts(b).len();
            let mut bad = Vec::new();
            term.for_each_input(|input| {
                if !dominates_use(input, b, end) {
                    bad.push(input);
                }
            });
            for input in bad {
                s.emit(
                    LintId::SsaDominance,
                    Some(b),
                    None,
                    format!("terminator of {b}: use of {input} not dominated by its definition"),
                );
            }
        }
    }
}

/// CFG hygiene: findings the soundness checks cannot express — populated
/// dead blocks, trivial φs, critical edges into merges. All warn-severity.
struct HygienePass;

impl LintPass for HygienePass {
    fn name(&self) -> &'static str {
        "hygiene"
    }

    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        let mut reachable = vec![false; g.block_count()];
        for b in g.reachable_blocks() {
            reachable[b.index()] = true;
        }
        for b in g.blocks() {
            if !reachable[b.index()] && !g.block_insts(b).is_empty() {
                s.emit(
                    LintId::UnreachableBlock,
                    Some(b),
                    None,
                    format!(
                        "unreachable {b} still holds {} instructions",
                        g.block_insts(b).len()
                    ),
                );
            }
            for &i in g.phis(b) {
                if let Inst::Phi { inputs } = g.inst(i) {
                    let mut distinct: Option<InstId> = None;
                    let mut trivial = true;
                    for &input in inputs {
                        if input == i {
                            continue; // self-reference through a back edge
                        }
                        match distinct {
                            None => distinct = Some(input),
                            Some(d) if d == input => {}
                            Some(_) => {
                                trivial = false;
                                break;
                            }
                        }
                    }
                    if trivial && !inputs.is_empty() {
                        s.emit(
                            LintId::TrivialPhi,
                            Some(b),
                            Some(i),
                            format!("{b}: phi {i} is trivial (every input is the same value)"),
                        );
                    }
                }
            }
            let succs = g.succs(b);
            if succs.len() > 1 {
                for succ in succs {
                    if g.preds(succ).len() > 1 {
                        s.emit(
                            LintId::CriticalEdge,
                            Some(b),
                            None,
                            format!(
                                "critical edge {b} -> {succ} into a merge ({} successors, {} predecessors)",
                                g.succs(b).len(),
                                g.preds(succ).len()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Reverse-CFG structure: exit reachability ([`LintId::NoExitPath`]) and
/// the cross-check of branch probabilities against control dependence
/// ([`LintId::ControlDepViolation`]). The full-featured analyses
/// (post-dominator tree with virtual exit, frontiers, control-dependence
/// graph) live in `dbds-analysis`; this pass reimplements just enough on
/// a [`SimplePostDom`] to stay dependency-cycle-free, mirroring how
/// [`DominancePass`] relates to the cached `DomTree`.
struct ReverseCfgPass;

impl LintPass for ReverseCfgPass {
    fn name(&self) -> &'static str {
        "reverse-cfg"
    }

    fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
        let mut s = Sink { out };
        let n = g.block_count();
        let mut reachable = vec![false; n];
        for b in g.reachable_blocks() {
            reachable[b.index()] = true;
        }
        // Backward reachability from the exit blocks.
        let mut reaches_exit = vec![false; n];
        let mut work: Vec<BlockId> = Vec::new();
        for b in g.blocks() {
            if reachable[b.index()] && g.succs(b).is_empty() {
                reaches_exit[b.index()] = true;
                work.push(b);
            }
        }
        while let Some(b) = work.pop() {
            for &p in g.preds(b) {
                if reachable[p.index()] && !reaches_exit[p.index()] {
                    reaches_exit[p.index()] = true;
                    work.push(p);
                }
            }
        }
        for b in g.blocks() {
            if reachable[b.index()] && !reaches_exit[b.index()] {
                s.emit(
                    LintId::NoExitPath,
                    Some(b),
                    None,
                    format!("reachable {b} has no path to any exit block"),
                );
            }
        }

        // Control-dependence vs. probability cross-check: code that is
        // control dependent on a branch edge the profile says never
        // executes (probability exactly 0 toward it) contradicts the
        // profile the whole trade-off tier prices with. The chain walk is
        // Ferrante's: everything from the dead successor up to (exclusive)
        // the branch's immediate post-dominator is decided by that edge.
        let pd = SimplePostDom::compute(g, &reaches_exit);
        for a in g.blocks() {
            if !reaches_exit[a.index()] {
                continue;
            }
            let Terminator::Branch {
                then_bb,
                else_bb,
                prob_then,
                ..
            } = g.terminator(a)
            else {
                continue;
            };
            let dead_succ = if *prob_then == 0.0 {
                Some(*then_bb)
            } else if *prob_then == 1.0 {
                Some(*else_bb)
            } else {
                None
            };
            let Some(dead) = dead_succ else { continue };
            let target = pd.ipdom(a);
            let mut runner = Some(dead);
            while runner != target {
                let Some(r) = runner else { break };
                if !reaches_exit[r.index()] {
                    break;
                }
                if !g.block_insts(r).is_empty() {
                    s.emit(
                        LintId::ControlDepViolation,
                        Some(r),
                        None,
                        format!(
                            "{r} is control dependent on the never-taken edge {a} -> {dead} \
                             (probability {prob_then} branch)"
                        ),
                    );
                }
                runner = pd.ipdom(r);
            }
        }
    }
}

/// A minimal post-dominator tree used only by [`ReverseCfgPass`],
/// restricted to blocks that reach an exit (the pass warns about the rest
/// separately, so no virtual-exit/pseudo-exit machinery is needed here).
/// The full analysis lives in `dbds-analysis`; this one avoids a
/// dependency cycle, like [`SimpleDomTree`] below.
struct SimplePostDom {
    /// `None` for roots of the post-dominator forest (exit blocks) and
    /// for blocks outside the restricted domain.
    ipdom: Vec<Option<BlockId>>,
}

impl SimplePostDom {
    fn compute(g: &Graph, in_domain: &[bool]) -> Self {
        let n = g.block_count();
        // Postorder of the reversed graph from each exit over pred edges.
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::new();
        for e in g.blocks() {
            if !in_domain[e.index()] || !g.succs(e).is_empty() || visited[e.index()] {
                continue;
            }
            visited[e.index()] = true;
            let mut stack: Vec<(BlockId, usize)> = vec![(e, 0)];
            while let Some(&mut (b, ref mut child)) = stack.last_mut() {
                let preds = g.preds(b);
                if *child < preds.len() {
                    let p = preds[*child];
                    *child += 1;
                    if in_domain[p.index()] && !visited[p.index()] {
                        visited[p.index()] = true;
                        stack.push((p, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        let rev_rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut order = vec![usize::MAX; n];
        for (i, &b) in rev_rpo.iter().enumerate() {
            order[b.index()] = i + 1; // 0 is the virtual exit
        }
        // CHK over reversed edges; `Some(b) == b` encodes "root" during
        // the iteration (the virtual exit is every exit's parent).
        let mut ipdom: Vec<Option<BlockId>> = vec![None; n];
        let mut is_root = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rev_rpo {
                // Reversed preds of `b` = forward succs, plus the virtual
                // exit when `b` is an exit block.
                let mut new_parent: Option<Option<BlockId>> = if g.succs(b).is_empty() {
                    Some(None) // parent is the virtual exit
                } else {
                    None
                };
                for s in g.succs(b) {
                    if ipdom[s.index()].is_none() && !is_root[s.index()] {
                        continue; // not yet processed or outside
                    }
                    new_parent = Some(match new_parent {
                        None => Some(s),
                        Some(cur) => Self::intersect(&ipdom, &is_root, &order, Some(s), cur),
                    });
                }
                if let Some(np) = new_parent {
                    let root = np.is_none();
                    if ipdom[b.index()] != np || is_root[b.index()] != root {
                        ipdom[b.index()] = np;
                        is_root[b.index()] = root;
                        changed = true;
                    }
                }
            }
        }
        SimplePostDom { ipdom }
    }

    /// Intersection in the reversed-RPO order; `None` is the virtual exit
    /// at position 0.
    fn intersect(
        ipdom: &[Option<BlockId>],
        is_root: &[bool],
        order: &[usize],
        a: Option<BlockId>,
        b: Option<BlockId>,
    ) -> Option<BlockId> {
        let pos = |x: Option<BlockId>| x.map_or(0, |b| order[b.index()]);
        let up = |x: Option<BlockId>| {
            let b = x.expect("virtual exit has no parent");
            if is_root[b.index()] {
                None
            } else {
                ipdom[b.index()]
            }
        };
        let (mut a, mut b) = (a, b);
        while a != b {
            while pos(a) > pos(b) {
                a = up(a);
            }
            while pos(b) > pos(a) {
                b = up(b);
            }
        }
        a
    }

    /// The immediate post-dominator of `b` (`None` for exit blocks and
    /// blocks outside the restricted domain).
    fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }
}

/// A minimal dominator tree used only by the lint passes. The
/// full-featured analysis (queries, children, traversal) lives in
/// `dbds-analysis`; this one avoids a dependency cycle.
struct SimpleDomTree {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    rpo: Vec<BlockId>,
}

impl SimpleDomTree {
    fn compute(g: &Graph) -> Self {
        // Reverse postorder over reachable blocks.
        let n = g.block_count();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::new();
        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(g.entry(), 0)];
        visited[g.entry().index()] = true;
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let succs = g.succs(b);
            if *child < succs.len() {
                let s = succs[*child];
                *child += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        // Cooper–Harvey–Kennedy iteration.
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[g.entry().index()] = Some(g.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in g.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        SimpleDomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    fn intersect(idom: &[Option<BlockId>], rpo_index: &[usize], a: BlockId, b: BlockId) -> BlockId {
        let (mut a, mut b) = (a, b);
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed block has idom");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed block has idom");
            }
        }
        a
    }

    /// Does `a` dominate `b`? Blocks unreachable from entry dominate
    /// nothing and are dominated by nothing.
    fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.index()] == usize::MAX || self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::classes::ClassTable;
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        b.finish()
    }

    #[test]
    fn clean_graph_yields_clean_report() {
        let report = lint(&diamond());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn report_order_is_deterministic_and_sorted() {
        // A graph with several problems across blocks: use-before-def and
        // a type error in the entry block.
        let mut g = Graph::new("multi", &[], empty_table());
        let e = g.entry();
        let t = g.append_inst(e, Inst::Const(ConstValue::Bool(true)), Type::Bool);
        let neg = g.append_inst(e, Inst::Neg(t), Type::Int);
        let add = g.append_inst(
            e,
            Inst::Binary {
                op: crate::inst::BinOp::Add,
                lhs: neg,
                rhs: InstId(9),
            },
            Type::Int,
        );
        let _late = g.append_inst(e, Inst::Const(ConstValue::Int(1)), Type::Int);
        g.set_terminator(e, Terminator::Return { value: Some(add) });
        let a = lint(&g);
        let b = lint(&g);
        assert_eq!(a, b);
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "two runs must render identically"
        );
        let keys: Vec<_> = a
            .diagnostics()
            .iter()
            .map(|d| (d.block, d.inst, d.lint))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by_key(|(b, i, l)| {
            (
                b.map_or(u64::MAX, |b| b.index() as u64),
                i.map_or(u64::MAX, |i| i.index() as u64),
                *l,
            )
        });
        assert_eq!(keys, sorted, "diagnostics must come out in sort order");
        assert!(a.error_count() >= 2);
    }

    #[test]
    fn severity_tracks_lint() {
        for &id in LintId::ALL {
            let d = Diagnostic::new(id, None, None, "x".into());
            assert_eq!(d.severity, id.severity());
        }
    }

    #[test]
    fn lint_names_are_unique_and_kebab() {
        let mut names: Vec<_> = LintId::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn no_exit_path_warns_on_infinite_regions() {
        let mut b = GraphBuilder::new("inf", &[Type::Bool], empty_table());
        let c = b.param(0);
        let spin = b.new_block();
        let done = b.new_block();
        b.branch(c, spin, done, 0.5);
        b.switch_to(spin);
        b.jump(spin);
        b.switch_to(done);
        b.ret(None);
        let report = lint(&b.finish());
        assert_eq!(report.count_of(LintId::NoExitPath), 1);
        assert!(report.is_clean(), "no-exit-path is hygiene, not soundness");
    }

    #[test]
    fn control_dep_violation_fires_on_dead_edge_code() {
        // bt holds real code but is control dependent on an edge the
        // profile says is never taken (prob_then = 0).
        let mut b = GraphBuilder::new("dead", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.0);
        b.switch_to(bt);
        let y = b.add(x, x);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![y, zero], Type::Int);
        b.ret(Some(phi));
        let report = lint(&b.finish());
        assert_eq!(report.count_of(LintId::ControlDepViolation), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn live_edges_do_not_trip_the_control_dep_check() {
        // The shared diamond has both edges live (prob 0.5): clean.
        let report = lint(&diamond());
        assert_eq!(report.count_of(LintId::ControlDepViolation), 0);
        assert_eq!(report.count_of(LintId::NoExitPath), 0);
    }

    #[test]
    fn registry_can_register_custom_pass() {
        struct Always;
        impl LintPass for Always {
            fn name(&self) -> &'static str {
                "always"
            }
            fn run(&self, g: &Graph, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::new(
                    LintId::UnreachableBlock,
                    Some(g.entry()),
                    None,
                    "custom pass fired".into(),
                ));
            }
        }
        let mut reg = LintRegistry::new();
        reg.register(Box::new(Always));
        let report = reg.run(&diamond());
        assert_eq!(report.warning_count(), 1);
        assert!(report.is_clean());
        assert!(reg.pass_names().contains(&"always"));
    }

    #[test]
    fn extend_restores_sorted_order() {
        let mut report = lint(&diamond());
        report.extend(vec![Diagnostic::new(
            LintId::StaleAnalysis,
            Some(BlockId(0)),
            None,
            "injected".into(),
        )]);
        assert_eq!(report.count_of(LintId::StaleAnalysis), 1);
        let keys: Vec<_> = report
            .diagnostics()
            .iter()
            .map(Diagnostic::sort_key)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
