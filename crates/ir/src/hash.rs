//! Stable content hashing of graphs.
//!
//! The compilation service memoizes compiled graphs in a
//! content-addressed store, so it needs a hash that is a pure function
//! of the graph's *semantic content* — stable across processes, runs,
//! platforms and pointer layouts. `std::hash` offers no such guarantee
//! (and `DefaultHasher` is explicitly randomized), so this module ships
//! a tiny FNV-1a implementation and hashes the canonical textual form
//! of a graph: [`print_graph`](crate::print_graph) prints reachable
//! blocks in sorted id order, which the parser round-trips to a
//! fixpoint, making the text a canonical serialization.
//!
//! The class table is hashed alongside the body: two graphs with equal
//! bodies but different field layouts are different compilation inputs.

use crate::print::{print_class_table, print_graph};
use crate::Graph;

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher with a stable, documented
/// algorithm (unlike `std`'s `DefaultHasher`, which may change between
/// releases and is seeded per process).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string's UTF-8 bytes plus a terminator byte, so
    /// `"ab" + "c"` and `"a" + "bc"` hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xff])
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The stable content hash of a graph: FNV-1a over its class table and
/// canonical textual form. Equal for graphs that print identically
/// (same reachable structure, ids, and class layout), independent of
/// process, allocation order of dead arena slots, or undo-log history.
pub fn content_hash(g: &Graph) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(&print_class_table(g.class_table()));
    h.write_str(&print_graph(g));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassTable, GraphBuilder, Type};
    use std::sync::Arc;

    fn sample(ret_param: bool) -> Graph {
        let mut b = GraphBuilder::new("h", &[Type::Int], Arc::new(ClassTable::new()));
        let x = b.param(0);
        let one = b.iconst(1);
        let s = b.add(x, one);
        b.ret(Some(if ret_param { x } else { s }));
        b.finish()
    }

    #[test]
    fn known_vector() {
        // FNV-1a test vector: "a" hashes to 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn equal_graphs_hash_equal_and_clones_too() {
        assert_eq!(content_hash(&sample(false)), content_hash(&sample(false)));
        let g = sample(false);
        assert_eq!(content_hash(&g), content_hash(&g.clone()));
    }

    #[test]
    fn different_graphs_hash_differently() {
        assert_ne!(content_hash(&sample(false)), content_hash(&sample(true)));
    }

    #[test]
    fn write_str_is_concatenation_safe() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_ignores_undo_log_history() {
        let mut g = sample(false);
        let before = content_hash(&g);
        g.begin_txn();
        g.add_block();
        g.rollback_txn();
        // Version stamps moved, arena truncated back — content equal.
        assert_eq!(content_hash(&g), before);
    }
}
