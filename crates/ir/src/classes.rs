//! Class and field metadata shared by the graphs of a compilation session.
//!
//! A [`ClassTable`] plays the role of the JVM class hierarchy in the paper's
//! setting: it declares classes and their instance fields so that `new`,
//! `load` and `store` instructions can be type checked and interpreted.
//! Tables are immutable once built and shared between graphs via
//! [`std::sync::Arc`], which keeps whole-graph copies (needed by the
//! backtracking baseline) cheap.

use crate::ids::{ClassId, FieldId};
use crate::types::Type;

/// Metadata for one declared field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldInfo {
    /// Field name, unique within its class.
    pub name: String,
    /// Class the field belongs to.
    pub class: ClassId,
    /// Declared type of the field.
    pub ty: Type,
}

/// Metadata for one declared class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassInfo {
    /// Class name, unique within the table.
    pub name: String,
    /// Ids of the fields declared by this class, in declaration order.
    pub fields: Vec<FieldId>,
}

/// An immutable registry of classes and fields.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassTable {
    classes: Vec<ClassInfo>,
    fields: Vec<FieldInfo>,
}

impl ClassTable {
    /// Creates an empty class table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new class with the given name and returns its id.
    pub fn add_class(&mut self, name: impl Into<String>) -> ClassId {
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassInfo {
            name: name.into(),
            fields: Vec::new(),
        });
        id
    }

    /// Declares a new field on `class` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a valid id of this table or if `ty` is
    /// [`Type::Void`].
    pub fn add_field(&mut self, class: ClassId, name: impl Into<String>, ty: Type) -> FieldId {
        assert!(!ty.is_void(), "fields cannot have void type");
        let id = FieldId::from_index(self.fields.len());
        self.fields.push(FieldInfo {
            name: name.into(),
            class,
            ty,
        });
        self.classes[class.index()].fields.push(id);
        id
    }

    /// Returns the metadata of `class`.
    pub fn class(&self, class: ClassId) -> &ClassInfo {
        &self.classes[class.index()]
    }

    /// Returns the metadata of `field`.
    pub fn field(&self, field: FieldId) -> &FieldInfo {
        &self.fields[field.index()]
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of declared fields across all classes.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(ClassId::from_index)
    }

    /// Looks up a field of `class` by name.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.classes[class.index()]
            .fields
            .iter()
            .copied()
            .find(|&f| self.fields[f.index()].name == name)
    }

    /// Returns `true` when `field` belongs to `class`.
    pub fn field_belongs_to(&self, field: FieldId, class: ClassId) -> bool {
        field.index() < self.fields.len() && self.fields[field.index()].class == class
    }

    /// Returns `true` when `class` is a valid id of this table.
    pub fn contains_class(&self, class: ClassId) -> bool {
        class.index() < self.classes.len()
    }

    /// Returns `true` when `field` is a valid id of this table.
    pub fn contains_field(&self, field: FieldId) -> bool {
        field.index() < self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed_int_table() -> (ClassTable, ClassId, FieldId) {
        let mut t = ClassTable::new();
        let c = t.add_class("Integer");
        let f = t.add_field(c, "value", Type::Int);
        (t, c, f)
    }

    #[test]
    fn declares_classes_and_fields() {
        let (t, c, f) = boxed_int_table();
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.field_count(), 1);
        assert_eq!(t.class(c).name, "Integer");
        assert_eq!(t.field(f).name, "value");
        assert_eq!(t.field(f).ty, Type::Int);
        assert_eq!(t.field(f).class, c);
        assert!(t.field_belongs_to(f, c));
    }

    #[test]
    fn lookup_by_name() {
        let (t, c, f) = boxed_int_table();
        assert_eq!(t.class_by_name("Integer"), Some(c));
        assert_eq!(t.class_by_name("Missing"), None);
        assert_eq!(t.field_by_name(c, "value"), Some(f));
        assert_eq!(t.field_by_name(c, "nope"), None);
    }

    #[test]
    fn multiple_classes_have_distinct_field_ids() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let b = t.add_class("B");
        let fa = t.add_field(a, "x", Type::Int);
        let fb = t.add_field(b, "x", Type::Int);
        assert_ne!(fa, fb);
        assert!(t.field_belongs_to(fa, a));
        assert!(!t.field_belongs_to(fa, b));
        assert_eq!(t.class(b).fields, vec![fb]);
    }

    #[test]
    #[should_panic(expected = "void")]
    fn rejects_void_fields() {
        let mut t = ClassTable::new();
        let c = t.add_class("A");
        t.add_field(c, "bad", Type::Void);
    }

    #[test]
    fn containment_checks() {
        let (t, c, f) = boxed_int_table();
        assert!(t.contains_class(c));
        assert!(!t.contains_class(ClassId(7)));
        assert!(t.contains_field(f));
        assert!(!t.contains_field(FieldId(7)));
    }
}
