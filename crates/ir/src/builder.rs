//! Ergonomic construction of [`Graph`]s.
//!
//! [`GraphBuilder`] keeps a *current block* cursor and offers one short
//! method per instruction kind, which keeps hand-written kernels (tests,
//! examples, the micro-benchmark suite) compact and readable.

use crate::classes::ClassTable;
use crate::ids::{BlockId, ClassId, FieldId, InstId};
use crate::inst::{BinOp, CmpOp, Inst, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::sync::Arc;

/// A cursor-style builder for [`Graph`]s.
///
/// # Examples
///
/// Figure 1a of the paper — `int foo(int x) { int phi; if (x > 0) phi = x;
/// else phi = 0; return 2 + phi; }`:
///
/// ```
/// use dbds_ir::{ClassTable, CmpOp, GraphBuilder, Type};
/// use std::sync::Arc;
///
/// let mut b = GraphBuilder::new("foo", &[Type::Int], Arc::new(ClassTable::new()));
/// let x = b.param(0);
/// let zero = b.iconst(0);
/// let cond = b.cmp(CmpOp::Gt, x, zero);
/// let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
/// b.branch(cond, bt, bf, 0.5);
/// b.switch_to(bt);
/// b.jump(bm);
/// b.switch_to(bf);
/// b.jump(bm);
/// b.switch_to(bm);
/// let phi = b.phi(vec![x, zero], Type::Int);
/// let two = b.iconst(2);
/// let sum = b.add(two, phi);
/// b.ret(Some(sum));
/// let graph = b.finish();
/// assert_eq!(graph.merge_blocks().len(), 1);
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    current: BlockId,
}

impl GraphBuilder {
    /// Starts building a graph named `name` with the given parameter types;
    /// the cursor starts at the entry block.
    pub fn new(name: impl Into<String>, params: &[Type], table: Arc<ClassTable>) -> Self {
        let graph = Graph::new(name, params, table);
        let current = graph.entry();
        GraphBuilder { graph, current }
    }

    /// Read access to the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the graph under construction — an escape hatch
    /// for edits the cursor API does not cover, such as patching the
    /// back-edge inputs of loop φs after the loop body exists.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The block the cursor currently appends to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Creates a new (empty, unterminated) block without moving the cursor.
    pub fn new_block(&mut self) -> BlockId {
        self.graph.add_block()
    }

    /// Moves the cursor to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// The SSA value of parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> InstId {
        self.graph.param_values()[index]
    }

    /// Appends an integer constant.
    pub fn iconst(&mut self, value: i64) -> InstId {
        self.push(Inst::Const(ConstValue::Int(value)), Type::Int)
    }

    /// Appends a boolean constant.
    pub fn bconst(&mut self, value: bool) -> InstId {
        self.push(Inst::Const(ConstValue::Bool(value)), Type::Bool)
    }

    /// Appends a null reference constant of class `class`.
    pub fn null(&mut self, class: ClassId) -> InstId {
        self.push(Inst::Const(ConstValue::Null(class)), Type::Ref(class))
    }

    /// Appends a null array constant.
    pub fn null_arr(&mut self) -> InstId {
        self.push(Inst::Const(ConstValue::NullArr), Type::Arr)
    }

    /// Appends a binary operation.
    pub fn binop(&mut self, op: BinOp, lhs: InstId, rhs: InstId) -> InstId {
        self.push(Inst::Binary { op, lhs, rhs }, Type::Int)
    }

    /// Appends an addition.
    pub fn add(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binop(BinOp::Add, lhs, rhs)
    }

    /// Appends a subtraction.
    pub fn sub(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binop(BinOp::Sub, lhs, rhs)
    }

    /// Appends a multiplication.
    pub fn mul(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binop(BinOp::Mul, lhs, rhs)
    }

    /// Appends a division.
    pub fn div(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binop(BinOp::Div, lhs, rhs)
    }

    /// Appends a remainder.
    pub fn rem(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binop(BinOp::Rem, lhs, rhs)
    }

    /// Appends a comparison.
    pub fn cmp(&mut self, op: CmpOp, lhs: InstId, rhs: InstId) -> InstId {
        self.push(Inst::Compare { op, lhs, rhs }, Type::Bool)
    }

    /// Appends a boolean negation.
    pub fn not(&mut self, value: InstId) -> InstId {
        self.push(Inst::Not(value), Type::Bool)
    }

    /// Appends an integer negation.
    pub fn neg(&mut self, value: InstId) -> InstId {
        self.push(Inst::Neg(value), Type::Int)
    }

    /// Appends a φ to the current block. `inputs` must align with the
    /// block's current predecessor list.
    pub fn phi(&mut self, inputs: Vec<InstId>, ty: Type) -> InstId {
        self.graph.append_phi(self.current, inputs, ty)
    }

    /// Appends an object allocation.
    pub fn new_object(&mut self, class: ClassId) -> InstId {
        self.push(Inst::New { class }, Type::Ref(class))
    }

    /// Appends a field load; the result type is the field's declared type.
    pub fn load(&mut self, object: InstId, field: FieldId) -> InstId {
        let ty = self.graph.class_table().field(field).ty;
        self.push(Inst::LoadField { object, field }, ty)
    }

    /// Appends a field store.
    pub fn store(&mut self, object: InstId, field: FieldId, value: InstId) -> InstId {
        self.push(
            Inst::StoreField {
                object,
                field,
                value,
            },
            Type::Void,
        )
    }

    /// Appends an exact-class type test.
    pub fn instance_of(&mut self, object: InstId, class: ClassId) -> InstId {
        self.push(Inst::InstanceOf { object, class }, Type::Bool)
    }

    /// Appends an array allocation.
    pub fn new_array(&mut self, length: InstId) -> InstId {
        self.push(Inst::NewArray { length }, Type::Arr)
    }

    /// Appends an array load.
    pub fn aload(&mut self, array: InstId, index: InstId) -> InstId {
        self.push(Inst::ArrayLoad { array, index }, Type::Int)
    }

    /// Appends an array store.
    pub fn astore(&mut self, array: InstId, index: InstId, value: InstId) -> InstId {
        self.push(
            Inst::ArrayStore {
                array,
                index,
                value,
            },
            Type::Void,
        )
    }

    /// Appends an array length read.
    pub fn alength(&mut self, array: InstId) -> InstId {
        self.push(Inst::ArrayLength(array), Type::Int)
    }

    /// Appends an opaque call.
    pub fn invoke(&mut self, args: Vec<InstId>) -> InstId {
        self.push(Inst::Invoke { args }, Type::Int)
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.graph
            .set_terminator(self.current, Terminator::Jump { target });
    }

    /// Terminates the current block with a conditional branch.
    /// `prob_then` is the profile probability of the then edge.
    pub fn branch(&mut self, cond: InstId, then_bb: BlockId, else_bb: BlockId, prob_then: f64) {
        self.graph.set_terminator(
            self.current,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
                prob_then,
            },
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<InstId>) {
        self.graph
            .set_terminator(self.current, Terminator::Return { value });
    }

    /// Terminates the current block with a deoptimization.
    pub fn deopt(&mut self) {
        self.graph.set_terminator(self.current, Terminator::Deopt);
    }

    /// Finishes construction and returns the graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    fn push(&mut self, inst: Inst, ty: Type) -> InstId {
        self.graph.append_inst(self.current, inst, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_point() -> (Arc<ClassTable>, ClassId, FieldId, FieldId) {
        let mut t = ClassTable::new();
        let c = t.add_class("Point");
        let fx = t.add_field(c, "x", Type::Int);
        let fy = t.add_field(c, "y", Type::Int);
        (Arc::new(t), c, fx, fy)
    }

    #[test]
    fn builds_straightline_code() {
        let (t, ..) = table_with_point();
        let mut b = GraphBuilder::new("f", &[Type::Int, Type::Int], t);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.add(x, y);
        let d = b.mul(s, s);
        b.ret(Some(d));
        let g = b.finish();
        assert_eq!(g.block_insts(g.entry()).len(), 4); // 2 params + add + mul
    }

    #[test]
    fn heap_ops_get_field_types() {
        let (t, c, fx, _fy) = table_with_point();
        let mut b = GraphBuilder::new("g", &[], t);
        let p = b.new_object(c);
        let v = b.iconst(7);
        b.store(p, fx, v);
        let l = b.load(p, fx);
        b.ret(Some(l));
        let g = b.finish();
        assert_eq!(g.ty(l), Type::Int);
        assert_eq!(g.ty(p), Type::Ref(c));
    }

    #[test]
    fn loop_with_phi() {
        // for (i = 0; i < n; i++) {}
        let (t, ..) = table_with_point();
        let mut b = GraphBuilder::new("loop", &[Type::Int], t);
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        // Phi appended when header has only the entry predecessor; the
        // back-edge input is appended by retargeting below. For builder
        // simplicity we construct the back edge first via body.
        // Instead: build header with one pred, then connect body->header
        // using retarget-free flow: create phi after both edges exist.
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int); // placeholder input for back edge
        let cond = b.cmp(CmpOp::Lt, i, n);
        b.branch(cond, body, exit, 0.9);
        // Patch the back-edge input: recreate via graph mutation.
        let next = {
            let g = b.graph();
            assert_eq!(g.preds(header).len(), 2);
            g.preds(header)[1]
        };
        assert_eq!(next, body);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        // Fix the phi back-edge input to i+1 computed in body.
        let inc = g.append_inst(
            body,
            Inst::Binary {
                op: BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        assert_eq!(g.inst(i).collect_inputs(), vec![zero, inc]);
    }

    #[test]
    fn terminators() {
        let (t, ..) = table_with_point();
        let mut b = GraphBuilder::new("t", &[Type::Bool], t);
        let c = b.param(0);
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.branch(c, b1, b2, 0.25);
        b.switch_to(b1);
        b.ret(None);
        b.switch_to(b2);
        b.deopt();
        let g = b.finish();
        assert!(matches!(
            g.terminator(g.entry()),
            Terminator::Branch { prob_then, .. } if *prob_then == 0.25
        ));
        assert!(matches!(g.terminator(b2), Terminator::Deopt));
    }
}
