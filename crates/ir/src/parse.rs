//! Parsing of the textual IR format produced by [`crate::print`].
//!
//! The entry points are [`parse_module`] (class declarations followed by
//! functions) and [`parse_graph`] (a single function against an existing
//! [`ClassTable`]). The parser is line-oriented: one instruction or
//! terminator per line, `#` and `//` start comments.

use crate::classes::ClassTable;
use crate::ids::{BlockId, ClassId, FieldId, InstId};
use crate::inst::{BinOp, CmpOp, Inst, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A parsed module: shared class table plus its functions.
#[derive(Clone, Debug)]
pub struct Module {
    /// Classes shared by all graphs of the module.
    pub class_table: Arc<ClassTable>,
    /// The parsed functions, in source order.
    pub graphs: Vec<Graph>,
}

/// A parse failure, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parses a module: zero or more `class` declarations followed by one or
/// more `func` definitions.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending line.
pub fn parse_module(text: &str) -> PResult<Module> {
    let lines = clean_lines(text);
    let mut idx = 0;

    // Pass 1: register class names so classes may reference one another.
    let mut table = ClassTable::new();
    let mut class_lines = Vec::new();
    while idx < lines.len() && lines[idx].1.starts_with("class ") {
        let (lineno, line) = &lines[idx];
        let name = line
            .strip_prefix("class ")
            .and_then(|r| r.split('{').next())
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| err(*lineno, "malformed class declaration"))?;
        table.add_class(name);
        class_lines.push((*lineno, line.clone()));
        idx += 1;
    }
    // Pass 2: fields.
    for (lineno, line) in &class_lines {
        let body = line
            .split_once('{')
            .and_then(|(_, r)| r.rsplit_once('}'))
            .map(|(b, _)| b.trim())
            .ok_or_else(|| err(*lineno, "class body must be enclosed in { }"))?;
        let name = line
            .strip_prefix("class ")
            .and_then(|r| r.split('{').next())
            .map(str::trim)
            .ok_or_else(|| err(*lineno, "malformed class declaration"))?;
        let class = table.class_by_name(name).expect("registered in pass 1");
        if body.is_empty() {
            continue;
        }
        for fdecl in body.split(',') {
            let (fname, fty) = fdecl
                .split_once(':')
                .ok_or_else(|| err(*lineno, "field must be `name: type`"))?;
            let ty = parse_type(fty.trim(), &table).map_err(|m| err(*lineno, &m))?;
            table.add_field(class, fname.trim(), ty);
        }
    }
    let table = Arc::new(table);

    let mut graphs = Vec::new();
    while idx < lines.len() {
        let (consumed, graph) = parse_func(&lines[idx..], table.clone())?;
        graphs.push(graph);
        idx += consumed;
    }
    if graphs.is_empty() {
        return Err(err(
            lines.last().map(|l| l.0).unwrap_or(1),
            "module contains no functions",
        ));
    }
    Ok(Module {
        class_table: table,
        graphs,
    })
}

/// Parses a single function definition against an existing class table.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending line.
pub fn parse_graph(text: &str, table: Arc<ClassTable>) -> PResult<Graph> {
    let lines = clean_lines(text);
    if lines.is_empty() {
        return Err(err(1, "empty input"));
    }
    let (_, graph) = parse_func(&lines, table)?;
    Ok(graph)
}

fn clean_lines(text: &str) -> Vec<(usize, String)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| {
            let no_comment = l.split("//").next().unwrap_or("");
            let no_comment = no_comment.split('#').next().unwrap_or("");
            (i + 1, no_comment.trim().to_string())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect()
}

fn err(line: usize, message: &str) -> ParseError {
    ParseError {
        line,
        message: message.to_string(),
    }
}

fn parse_type(s: &str, table: &ClassTable) -> Result<Type, String> {
    match s {
        "int" => Ok(Type::Int),
        "bool" => Ok(Type::Bool),
        "arr" => Ok(Type::Arr),
        "void" => Ok(Type::Void),
        _ => {
            if let Some(cname) = s.strip_prefix("ref ") {
                table
                    .class_by_name(cname.trim())
                    .map(Type::Ref)
                    .ok_or_else(|| format!("unknown class `{}`", cname.trim()))
            } else {
                Err(format!("unknown type `{s}`"))
            }
        }
    }
}

/// One pending operand patch: instruction, then the operand names in
/// `for_each_input_mut` order.
struct InstPatch {
    id: InstId,
    line: usize,
    operands: Vec<String>,
}

struct TermPatch {
    block: BlockId,
    line: usize,
    operands: Vec<String>,
}

fn parse_func(lines: &[(usize, String)], table: Arc<ClassTable>) -> PResult<(usize, Graph)> {
    let (hline, header) = &lines[0];
    let rest = header
        .strip_prefix("func @")
        .ok_or_else(|| err(*hline, "expected `func @name(...) {`"))?;
    let (name, rest) = rest
        .split_once('(')
        .ok_or_else(|| err(*hline, "expected `(` after function name"))?;
    let (params_src, tail) = rest
        .rsplit_once(')')
        .ok_or_else(|| err(*hline, "expected `)` in function header"))?;
    if tail.trim() != "{" {
        return Err(err(*hline, "expected `{` at end of function header"));
    }

    let mut param_names = Vec::new();
    let mut param_types = Vec::new();
    for p in params_src
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
    {
        let (pname, pty) = p
            .split_once(':')
            .ok_or_else(|| err(*hline, "parameter must be `name: type`"))?;
        param_names.push(pname.trim().to_string());
        param_types.push(parse_type(pty.trim(), &table).map_err(|m| err(*hline, &m))?);
    }

    // Collect body lines until the closing `}`.
    let mut body: Vec<&(usize, String)> = Vec::new();
    let mut consumed = 1;
    let mut closed = false;
    for entry in &lines[1..] {
        consumed += 1;
        if entry.1 == "}" {
            closed = true;
            break;
        }
        body.push(entry);
    }
    if !closed {
        return Err(err(*hline, "missing closing `}`"));
    }

    // Group into blocks.
    struct BlockSrc<'a> {
        line: usize,
        label: String,
        stmts: Vec<&'a (usize, String)>,
    }
    let mut blocks_src: Vec<BlockSrc> = Vec::new();
    for entry in body {
        let (lineno, line) = entry;
        if let Some(label) = line.strip_suffix(':') {
            if label.chars().all(|c| c.is_alphanumeric() || c == '_') && !label.is_empty() {
                blocks_src.push(BlockSrc {
                    line: *lineno,
                    label: label.to_string(),
                    stmts: Vec::new(),
                });
                continue;
            }
        }
        match blocks_src.last_mut() {
            Some(b) => b.stmts.push(entry),
            None => return Err(err(*lineno, "statement before first block label")),
        }
    }
    if blocks_src.is_empty() {
        return Err(err(*hline, "function has no blocks"));
    }

    let mut graph = Graph::new(name.trim(), &param_types, table.clone());
    let mut values: HashMap<String, InstId> = HashMap::new();
    for (pname, &pval) in param_names.iter().zip(graph.param_values()) {
        values.insert(pname.clone(), pval);
    }
    let mut block_ids: HashMap<String, BlockId> = HashMap::new();
    for (i, bs) in blocks_src.iter().enumerate() {
        let id = if i == 0 {
            graph.entry()
        } else {
            graph.add_block()
        };
        if block_ids.insert(bs.label.clone(), id).is_some() {
            return Err(err(bs.line, "duplicate block label"));
        }
    }

    // First: terminators (so preds exist before φ creation). Operands are
    // patched afterwards.
    let mut term_patches: Vec<TermPatch> = Vec::new();
    for bs in &blocks_src {
        let block = block_ids[&bs.label];
        let (lineno, last) = match bs.stmts.last() {
            Some(e) => (e.0, e.1.as_str()),
            None => return Err(err(bs.line, "block has no terminator")),
        };
        let (term, ops) = parse_terminator(last, lineno, &block_ids)?;
        graph.set_terminator(block, term);
        term_patches.push(TermPatch {
            block,
            line: lineno,
            operands: ops,
        });
    }

    // Then: instructions (all but the last statement of each block).
    let mut inst_patches: Vec<InstPatch> = Vec::new();
    for bs in &blocks_src {
        let block = block_ids[&bs.label];
        for entry in &bs.stmts[..bs.stmts.len() - 1] {
            let (lineno, line) = entry;
            let (vname, ty, opsrc) = split_def(line, *lineno, &table)?;
            let (inst, operands) = parse_inst(opsrc, *lineno, &table, &block_ids, &graph, block)?;
            let id = if inst.is_phi() {
                let n = graph.preds(block).len();
                if operands.len() != n {
                    return Err(err(
                        *lineno,
                        &format!(
                            "phi lists {} inputs but block has {n} predecessors",
                            operands.len()
                        ),
                    ));
                }
                graph.append_phi(block, vec![InstId(0); n], ty)
            } else {
                graph.append_inst(block, inst, ty)
            };
            if values.insert(vname.clone(), id).is_some() {
                return Err(err(*lineno, &format!("value `{vname}` defined twice")));
            }
            inst_patches.push(InstPatch {
                id,
                line: *lineno,
                operands,
            });
        }
    }

    // Patch all operands now that every value name is known.
    let lookup = |name: &str, line: usize| -> PResult<InstId> {
        values
            .get(name)
            .copied()
            .ok_or_else(|| err(line, &format!("unknown value `{name}`")))
    };
    for patch in &inst_patches {
        let resolved: Vec<InstId> = patch
            .operands
            .iter()
            .map(|n| lookup(n, patch.line))
            .collect::<PResult<_>>()?;
        let mut k = 0;
        graph.inst_mut(patch.id).for_each_input_mut(|slot| {
            *slot = resolved[k];
            k += 1;
        });
        debug_assert_eq!(k, resolved.len());
    }
    for patch in &term_patches {
        let resolved: Vec<InstId> = patch
            .operands
            .iter()
            .map(|n| lookup(n, patch.line))
            .collect::<PResult<_>>()?;
        let mut k = 0;
        graph.patch_terminator_inputs(patch.block, |slot| {
            *slot = resolved[k];
            k += 1;
        });
    }

    Ok((consumed, graph))
}

/// Splits `name: type = body` and returns `(name, type, body)`.
fn split_def<'a>(
    line: &'a str,
    lineno: usize,
    table: &ClassTable,
) -> PResult<(String, Type, &'a str)> {
    let (lhs, body) = line
        .split_once('=')
        .ok_or_else(|| err(lineno, "expected `name: type = ...`"))?;
    let (name, ty) = lhs
        .split_once(':')
        .ok_or_else(|| err(lineno, "definition must be `name: type = ...`"))?;
    let ty = parse_type(ty.trim(), table).map_err(|m| err(lineno, &m))?;
    Ok((name.trim().to_string(), ty, body.trim()))
}

/// Parses a field reference `Class.field`.
fn parse_field(s: &str, lineno: usize, table: &ClassTable) -> PResult<FieldId> {
    let (cname, fname) = s
        .split_once('.')
        .ok_or_else(|| err(lineno, "expected `Class.field`"))?;
    let class = table
        .class_by_name(cname.trim())
        .ok_or_else(|| err(lineno, &format!("unknown class `{}`", cname.trim())))?;
    table
        .field_by_name(class, fname.trim())
        .ok_or_else(|| err(lineno, &format!("unknown field `{s}`")))
}

fn parse_class(s: &str, lineno: usize, table: &ClassTable) -> PResult<ClassId> {
    table
        .class_by_name(s.trim())
        .ok_or_else(|| err(lineno, &format!("unknown class `{}`", s.trim())))
}

/// Parses an instruction body; returns the instruction with dummy operand
/// ids plus the operand names in `for_each_input_mut` order.
fn parse_inst(
    src: &str,
    lineno: usize,
    table: &ClassTable,
    block_ids: &HashMap<String, BlockId>,
    graph: &Graph,
    block: BlockId,
) -> PResult<(Inst, Vec<String>)> {
    let (op, rest) = match src.split_once(char::is_whitespace) {
        Some((o, r)) => (o, r.trim()),
        None => (src, ""),
    };
    let d = InstId(0); // dummy, patched later
    let args = |n: usize| -> PResult<Vec<String>> {
        let parts: Vec<String> = rest
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect();
        if parts.len() != n {
            return Err(err(lineno, &format!("`{op}` expects {n} operands")));
        }
        Ok(parts)
    };
    let binop = BinOp::ALL.iter().find(|b| b.mnemonic() == op).copied();
    if let Some(bop) = binop {
        let a = args(2)?;
        return Ok((
            Inst::Binary {
                op: bop,
                lhs: d,
                rhs: d,
            },
            a,
        ));
    }
    match op {
        "const" => {
            let c = if rest == "true" {
                ConstValue::Bool(true)
            } else if rest == "false" {
                ConstValue::Bool(false)
            } else if rest == "nullarr" {
                ConstValue::NullArr
            } else if let Some(cname) = rest.strip_prefix("null ") {
                ConstValue::Null(parse_class(cname, lineno, table)?)
            } else {
                ConstValue::Int(
                    rest.parse::<i64>()
                        .map_err(|_| err(lineno, &format!("bad constant `{rest}`")))?,
                )
            };
            Ok((Inst::Const(c), Vec::new()))
        }
        "param" => {
            let idx: u32 = rest.parse().map_err(|_| err(lineno, "bad param index"))?;
            Ok((Inst::Param(idx), Vec::new()))
        }
        "cmp" => {
            let (cop, operands) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(lineno, "expected `cmp op a, b`"))?;
            let cop = CmpOp::ALL
                .iter()
                .find(|c| c.mnemonic() == cop)
                .copied()
                .ok_or_else(|| err(lineno, &format!("unknown comparison `{cop}`")))?;
            let parts: Vec<String> = operands.split(',').map(|p| p.trim().to_string()).collect();
            if parts.len() != 2 {
                return Err(err(lineno, "`cmp` expects 2 operands"));
            }
            Ok((
                Inst::Compare {
                    op: cop,
                    lhs: d,
                    rhs: d,
                },
                parts,
            ))
        }
        "not" => Ok((Inst::Not(d), args(1)?)),
        "neg" => Ok((Inst::Neg(d), args(1)?)),
        "phi" => {
            // phi [b1: v0, b2: v1] — reorder inputs to match pred order.
            let body = rest
                .strip_prefix('[')
                .and_then(|r| r.strip_suffix(']'))
                .ok_or_else(|| err(lineno, "expected `phi [pred: value, ...]`"))?;
            let mut by_pred: HashMap<BlockId, String> = HashMap::new();
            for pair in body.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (pb, pv) = pair
                    .split_once(':')
                    .ok_or_else(|| err(lineno, "phi input must be `pred: value`"))?;
                let pred = *block_ids
                    .get(pb.trim())
                    .ok_or_else(|| err(lineno, &format!("unknown block `{}`", pb.trim())))?;
                if by_pred.insert(pred, pv.trim().to_string()).is_some() {
                    return Err(err(lineno, "duplicate phi predecessor"));
                }
            }
            let mut ordered = Vec::new();
            for &p in graph.preds(block) {
                let v = by_pred.remove(&p).ok_or_else(|| {
                    err(lineno, &format!("phi missing input for predecessor {p}"))
                })?;
                ordered.push(v);
            }
            if !by_pred.is_empty() {
                return Err(err(lineno, "phi lists a non-predecessor block"));
            }
            Ok((Inst::Phi { inputs: Vec::new() }, ordered))
        }
        "new" => Ok((
            Inst::New {
                class: parse_class(rest, lineno, table)?,
            },
            Vec::new(),
        )),
        "load" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(lineno, "`load` expects `object, Class.field`"));
            }
            Ok((
                Inst::LoadField {
                    object: d,
                    field: parse_field(parts[1], lineno, table)?,
                },
                vec![parts[0].to_string()],
            ))
        }
        "store" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(err(lineno, "`store` expects `object, Class.field, value`"));
            }
            Ok((
                Inst::StoreField {
                    object: d,
                    field: parse_field(parts[1], lineno, table)?,
                    value: d,
                },
                vec![parts[0].to_string(), parts[2].to_string()],
            ))
        }
        "instanceof" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(lineno, "`instanceof` expects `object, Class`"));
            }
            Ok((
                Inst::InstanceOf {
                    object: d,
                    class: parse_class(parts[1], lineno, table)?,
                },
                vec![parts[0].to_string()],
            ))
        }
        "newarray" => Ok((Inst::NewArray { length: d }, args(1)?)),
        "aload" => Ok((Inst::ArrayLoad { array: d, index: d }, args(2)?)),
        "astore" => Ok((
            Inst::ArrayStore {
                array: d,
                index: d,
                value: d,
            },
            args(3)?,
        )),
        "alength" => Ok((Inst::ArrayLength(d), args(1)?)),
        "invoke" => {
            let parts: Vec<String> = rest
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
            Ok((
                Inst::Invoke {
                    args: vec![d; parts.len()],
                },
                parts,
            ))
        }
        other => Err(err(lineno, &format!("unknown instruction `{other}`"))),
    }
}

fn parse_terminator(
    src: &str,
    lineno: usize,
    block_ids: &HashMap<String, BlockId>,
) -> PResult<(Terminator, Vec<String>)> {
    let (op, rest) = match src.split_once(char::is_whitespace) {
        Some((o, r)) => (o, r.trim()),
        None => (src, ""),
    };
    let block = |name: &str| -> PResult<BlockId> {
        block_ids
            .get(name.trim())
            .copied()
            .ok_or_else(|| err(lineno, &format!("unknown block `{}`", name.trim())))
    };
    match op {
        "jump" => Ok((
            Terminator::Jump {
                target: block(rest)?,
            },
            Vec::new(),
        )),
        "branch" => {
            // branch cond, then, else, prob P
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(err(lineno, "`branch` expects `cond, then, else, prob P`"));
            }
            let prob_src = parts[3]
                .strip_prefix("prob")
                .map(str::trim)
                .ok_or_else(|| err(lineno, "expected `prob P`"))?;
            let prob_then: f64 = prob_src
                .parse()
                .map_err(|_| err(lineno, &format!("bad probability `{prob_src}`")))?;
            Ok((
                Terminator::Branch {
                    cond: InstId(0),
                    then_bb: block(parts[1])?,
                    else_bb: block(parts[2])?,
                    prob_then,
                },
                vec![parts[0].to_string()],
            ))
        }
        "return" => {
            if rest.is_empty() {
                Ok((Terminator::Return { value: None }, Vec::new()))
            } else {
                Ok((
                    Terminator::Return {
                        value: Some(InstId(0)),
                    },
                    vec![rest.to_string()],
                ))
            }
        }
        "deopt" => Ok((Terminator::Deopt, Vec::new())),
        other => Err(err(lineno, &format!("unknown terminator `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::{print_class_table, print_graph};
    use crate::verify::verify;

    const FIGURE1: &str = r#"
        // Figure 1a of the paper.
        func @foo(x: int) {
        entry:
          zero: int = const 0
          c: bool = cmp gt x, zero
          branch c, bt, bf, prob 0.5
        bt:
          jump bm
        bf:
          jump bm
        bm:
          p: int = phi [bt: x, bf: zero]
          two: int = const 2
          sum: int = add two, p
          return sum
        }
    "#;

    #[test]
    fn parses_figure1_and_verifies() {
        let m = parse_module(FIGURE1).unwrap();
        let g = &m.graphs[0];
        verify(g).unwrap();
        assert_eq!(g.name, "foo");
        assert_eq!(g.merge_blocks().len(), 1);
    }

    #[test]
    fn print_parse_print_fixpoint() {
        let m = parse_module(FIGURE1).unwrap();
        let text1 = print_graph(&m.graphs[0]);
        let g2 = parse_graph(&text1, m.class_table.clone()).unwrap();
        let text2 = print_graph(&g2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn parses_classes_and_heap_ops() {
        let src = r#"
            class A { x: int, next: ref B }
            class B { y: int }
            func @f(a: ref A) {
            entry:
              v: int = load a, A.x
              o: ref B = new B
              s: void = store o, B.y, v
              t: bool = instanceof a, A
              n: ref A = const null A
              e: bool = cmp eq a, n
              r: int = invoke v
              return r
            }
        "#;
        let m = parse_module(src).unwrap();
        verify(&m.graphs[0]).unwrap();
        assert_eq!(m.class_table.class_count(), 2);
        // Fixpoint including the class table.
        let ct = print_class_table(&m.class_table);
        let g = print_graph(&m.graphs[0]);
        let m2 = parse_module(&format!("{ct}{g}")).unwrap();
        assert_eq!(print_graph(&m2.graphs[0]), print_graph(&m.graphs[0]));
    }

    #[test]
    fn parses_loop_with_forward_phi_reference() {
        let src = r#"
            func @count(n: int) {
            entry:
              zero: int = const 0
              one: int = const 1
              jump header
            header:
              i: int = phi [entry: zero, body: next]
              c: bool = cmp lt i, n
              branch c, body, exit, prob 0.9
            body:
              next: int = add i, one
              jump header
            exit:
              return i
            }
        "#;
        let m = parse_module(src).unwrap();
        verify(&m.graphs[0]).unwrap();
    }

    #[test]
    fn parses_arrays() {
        let src = r#"
            func @sum(a: arr) {
            entry:
              zero: int = const 0
              len: int = alength a
              x: int = aload a, zero
              s: void = astore a, zero, len
              b: arr = newarray len
              return x
            }
        "#;
        let m = parse_module(src).unwrap();
        verify(&m.graphs[0]).unwrap();
    }

    #[test]
    fn error_reports_line() {
        let src = "func @f() {\nentry:\n  v: int = frobnicate\n  return v\n}\n";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_unknown_value() {
        let src = "func @f() {\nentry:\n  return ghost\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("unknown value"));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let src = "func @f() {\nentry:\n  v: int = const 1\n  v: int = const 2\n  return v\n}\n";
        let e = parse_module(src).unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let src = r#"
            func @f(c: bool) {
            entry:
              branch c, bt, bm, prob 0.5
            bt:
              jump bm
            bm:
              p: bool = phi [bt: c]
              return
            }
        "#;
        let e = parse_module(src).unwrap_err();
        // The entry block is also a predecessor of bm, so the phi is
        // missing an input for it.
        assert!(e.message.contains("phi missing input"), "{e}");
    }

    #[test]
    fn parses_multiple_functions() {
        let src = "func @a() {\nentry:\n  return\n}\nfunc @b() {\nentry:\n  deopt\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.graphs.len(), 2);
        assert_eq!(m.graphs[0].name, "a");
        assert_eq!(m.graphs[1].name, "b");
    }
}
