//! Graph well-formedness verification.
//!
//! The verifier checks structural invariants (edge bookkeeping, φ
//! placement and arity, type correctness) and the SSA dominance property
//! (every use is dominated by its definition). Every transformation in the
//! workspace is validated against it in tests, and the DBDS optimization
//! tier re-verifies graphs after each duplication in debug builds.

use crate::ids::{BlockId, InstId};
use crate::inst::{CmpOp, Inst, Terminator};
use crate::types::{ConstValue, Type};
use crate::Graph;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The collection of problems found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyErrors {
    /// Individual human-readable problem descriptions.
    pub problems: Vec<String>,
}

impl fmt::Display for VerifyErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph verification failed ({} problems):",
            self.problems.len()
        )?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        Ok(())
    }
}

impl VerifyErrors {
    /// A one-line digest: the first problem plus the total count. Suits
    /// log lines and bailout records where the multi-line [`fmt::Display`]
    /// form is too bulky.
    pub fn summary(&self) -> String {
        match self.problems.as_slice() {
            [] => "graph verification failed".to_string(),
            [only] => only.clone(),
            [first, ..] => format!("{first} (+{} more)", self.problems.len() - 1),
        }
    }
}

impl Error for VerifyErrors {}

/// Verifies `g`, returning all problems found.
///
/// # Errors
///
/// Returns a [`VerifyErrors`] describing every violated invariant. An `Ok`
/// result means the graph is structurally sound, type-correct and in valid
/// SSA form.
pub fn verify(g: &Graph) -> Result<(), VerifyErrors> {
    let mut v = Verifier {
        g,
        problems: Vec::new(),
    };
    v.check_edges();
    v.check_blocks();
    v.check_types();
    v.check_dominance();
    if v.problems.is_empty() {
        Ok(())
    } else {
        Err(VerifyErrors {
            problems: v.problems,
        })
    }
}

struct Verifier<'a> {
    g: &'a Graph,
    problems: Vec<String>,
}

impl Verifier<'_> {
    fn err(&mut self, msg: String) {
        self.problems.push(msg);
    }

    fn check_edges(&mut self) {
        let g = self.g;
        if !g.preds(g.entry()).is_empty() {
            self.err(format!("entry {} has predecessors", g.entry()));
        }
        for b in g.blocks() {
            let succs = g.succs(b);
            if succs.len() == 2 && succs[0] == succs[1] {
                self.err(format!("{b} branches to the same block twice"));
            }
            for s in &succs {
                let n = g.preds(*s).iter().filter(|&&p| p == b).count();
                if n != 1 {
                    self.err(format!(
                        "edge {b} -> {s}: successor records {n} matching pred entries, expected 1"
                    ));
                }
            }
            for &p in g.preds(b) {
                if !g.succs(p).contains(&b) {
                    self.err(format!(
                        "{b} lists pred {p}, but {p} does not branch to {b}"
                    ));
                }
            }
            if let Terminator::Branch { prob_then, .. } = g.terminator(b) {
                if !(0.0..=1.0).contains(prob_then) || prob_then.is_nan() {
                    self.err(format!("{b}: branch probability {prob_then} outside [0,1]"));
                }
            }
        }
        // Reachable blocks must not have unreachable predecessors: the
        // cleanup pass must disconnect dead code before verification.
        let mut reachable = vec![false; g.block_count()];
        for b in g.reachable_blocks() {
            reachable[b.index()] = true;
        }
        for b in g.blocks().filter(|b| reachable[b.index()]) {
            for &p in g.preds(b) {
                if !reachable[p.index()] {
                    self.err(format!("reachable {b} has unreachable predecessor {p}"));
                }
            }
        }
    }

    fn check_blocks(&mut self) {
        let g = self.g;
        for b in g.blocks() {
            let mut seen_non_phi = false;
            for &i in g.block_insts(b) {
                if g.block_of(i) != Some(b) {
                    self.err(format!(
                        "{i} listed in {b} but records block {:?}",
                        g.block_of(i)
                    ));
                }
                match g.inst(i) {
                    Inst::Phi { inputs } => {
                        if seen_non_phi {
                            self.err(format!("{b}: phi {i} appears after non-phi instructions"));
                        }
                        if inputs.len() != g.preds(b).len() {
                            self.err(format!(
                                "{b}: phi {i} has {} inputs but the block has {} predecessors",
                                inputs.len(),
                                g.preds(b).len()
                            ));
                        }
                        if g.preds(b).is_empty() {
                            self.err(format!("{b}: phi {i} in a block without predecessors"));
                        }
                    }
                    Inst::Param(idx) => {
                        if b != g.entry() {
                            self.err(format!("param {i} outside the entry block"));
                        }
                        if *idx as usize >= g.param_types().len() {
                            self.err(format!("param {i} index {idx} out of range"));
                        } else if g.ty(i) != g.param_types()[*idx as usize] {
                            self.err(format!("param {i} type mismatch with signature"));
                        }
                        seen_non_phi = true;
                    }
                    _ => seen_non_phi = true,
                }
                let inst = g.inst(i);
                inst.for_each_input(|input| {
                    if input.index() >= g.inst_count() {
                        self.problems
                            .push(format!("{i} references out-of-range value {input}"));
                    } else if g.block_of(input).is_none() {
                        self.problems
                            .push(format!("{i} in {b} uses removed instruction {input}"));
                    }
                });
            }
            g.terminator(b).for_each_input(|input| {
                if g.block_of(input).is_none() {
                    self.problems.push(format!(
                        "terminator of {b} uses removed instruction {input}"
                    ));
                }
            });
        }
    }

    fn check_types(&mut self) {
        let g = self.g;
        let table = g.class_table().clone();
        for b in g.blocks() {
            for &i in g.block_insts(b) {
                let ty = g.ty(i);
                match g.inst(i) {
                    Inst::Const(c) => {
                        if c.ty() != ty {
                            self.err(format!("{i}: constant {c} typed {ty}"));
                        }
                        if let ConstValue::Null(cl) = c {
                            if !table.contains_class(*cl) {
                                self.err(format!("{i}: null of unknown class {cl}"));
                            }
                        }
                    }
                    Inst::Param(_) => {}
                    Inst::Binary { lhs, rhs, .. } => {
                        self.expect(i, *lhs, Type::Int);
                        self.expect(i, *rhs, Type::Int);
                        if ty != Type::Int {
                            self.err(format!("{i}: binary op typed {ty}"));
                        }
                    }
                    Inst::Compare { op, lhs, rhs } => {
                        let lt = g.ty(*lhs);
                        let rt = g.ty(*rhs);
                        let ordered = matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
                        if ordered && (lt != Type::Int || rt != Type::Int) {
                            self.err(format!("{i}: ordered comparison of {lt} and {rt}"));
                        }
                        if !ordered && !Self::comparable(lt, rt) {
                            self.err(format!("{i}: equality comparison of {lt} and {rt}"));
                        }
                        if ty != Type::Bool {
                            self.err(format!("{i}: comparison typed {ty}"));
                        }
                    }
                    Inst::Not(x) => {
                        self.expect(i, *x, Type::Bool);
                        if ty != Type::Bool {
                            self.err(format!("{i}: not typed {ty}"));
                        }
                    }
                    Inst::Neg(x) => {
                        self.expect(i, *x, Type::Int);
                        if ty != Type::Int {
                            self.err(format!("{i}: neg typed {ty}"));
                        }
                    }
                    Inst::Phi { inputs } => {
                        for &input in inputs {
                            if g.ty(input) != ty {
                                self.err(format!(
                                    "{i}: phi typed {ty} has input {input} of type {}",
                                    g.ty(input)
                                ));
                            }
                        }
                    }
                    Inst::New { class } => {
                        if !table.contains_class(*class) {
                            self.err(format!("{i}: new of unknown class {class}"));
                        } else if ty != Type::Ref(*class) {
                            self.err(format!("{i}: new {class} typed {ty}"));
                        }
                    }
                    Inst::LoadField { object, field } => {
                        self.check_receiver(i, *object, *field);
                        if table.contains_field(*field) && ty != table.field(*field).ty {
                            self.err(format!("{i}: load of {field} typed {ty}"));
                        }
                    }
                    Inst::StoreField {
                        object,
                        field,
                        value,
                    } => {
                        self.check_receiver(i, *object, *field);
                        if table.contains_field(*field) && g.ty(*value) != table.field(*field).ty {
                            self.err(format!("{i}: store of {} into {field}", g.ty(*value)));
                        }
                        if ty != Type::Void {
                            self.err(format!("{i}: store typed {ty}"));
                        }
                    }
                    Inst::InstanceOf { object, class } => {
                        if !matches!(g.ty(*object), Type::Ref(_)) {
                            self.err(format!("{i}: instanceof on {}", g.ty(*object)));
                        }
                        if !table.contains_class(*class) {
                            self.err(format!("{i}: instanceof unknown class {class}"));
                        }
                        if ty != Type::Bool {
                            self.err(format!("{i}: instanceof typed {ty}"));
                        }
                    }
                    Inst::NewArray { length } => {
                        self.expect(i, *length, Type::Int);
                        if ty != Type::Arr {
                            self.err(format!("{i}: newarray typed {ty}"));
                        }
                    }
                    Inst::ArrayLoad { array, index } => {
                        self.expect(i, *array, Type::Arr);
                        self.expect(i, *index, Type::Int);
                        if ty != Type::Int {
                            self.err(format!("{i}: aload typed {ty}"));
                        }
                    }
                    Inst::ArrayStore {
                        array,
                        index,
                        value,
                    } => {
                        self.expect(i, *array, Type::Arr);
                        self.expect(i, *index, Type::Int);
                        self.expect(i, *value, Type::Int);
                        if ty != Type::Void {
                            self.err(format!("{i}: astore typed {ty}"));
                        }
                    }
                    Inst::ArrayLength(a) => {
                        self.expect(i, *a, Type::Arr);
                        if ty != Type::Int {
                            self.err(format!("{i}: alength typed {ty}"));
                        }
                    }
                    Inst::Invoke { args } => {
                        for &a in args {
                            if g.ty(a) == Type::Void {
                                self.err(format!("{i}: invoke passes void value {a}"));
                            }
                        }
                        if ty != Type::Int {
                            self.err(format!("{i}: invoke typed {ty}"));
                        }
                    }
                }
            }
            if let Terminator::Branch { cond, .. } = g.terminator(b) {
                if g.ty(*cond) != Type::Bool {
                    self.err(format!("terminator of {b}: branch on {}", g.ty(*cond)));
                }
            }
        }
    }

    fn comparable(a: Type, b: Type) -> bool {
        matches!(
            (a, b),
            (Type::Int, Type::Int)
                | (Type::Bool, Type::Bool)
                | (Type::Arr, Type::Arr)
                | (Type::Ref(_), Type::Ref(_))
        )
    }

    fn check_receiver(&mut self, at: InstId, object: InstId, field: crate::ids::FieldId) {
        let g = self.g;
        let table = g.class_table();
        if !table.contains_field(field) {
            self.err(format!("{at}: unknown field {field}"));
            return;
        }
        match g.ty(object) {
            Type::Ref(c) => {
                if !table.field_belongs_to(field, c) {
                    self.err(format!("{at}: field {field} does not belong to class {c}"));
                }
            }
            other => self.err(format!("{at}: field access on {other}")),
        }
    }

    fn expect(&mut self, at: InstId, v: InstId, ty: Type) {
        let actual = self.g.ty(v);
        if actual != ty {
            self.err(format!(
                "{at}: operand {v} has type {actual}, expected {ty}"
            ));
        }
    }

    fn check_dominance(&mut self) {
        let g = self.g;
        let dom = SimpleDomTree::compute(g);
        // Position of each instruction within its block for same-block checks.
        let mut pos: HashMap<InstId, usize> = HashMap::new();
        for b in g.blocks() {
            for (k, &i) in g.block_insts(b).iter().enumerate() {
                pos.insert(i, k);
            }
        }
        for &b in &dom.rpo {
            for (k, &i) in g.block_insts(b).iter().enumerate() {
                match g.inst(i) {
                    Inst::Phi { inputs } => {
                        let preds = g.preds(b).to_vec();
                        for (input, &pred) in inputs.iter().zip(preds.iter()) {
                            if !self.value_available_at_end(&dom, &pos, *input, pred) {
                                self.err(format!(
                                    "{i} in {b}: phi input {input} does not dominate predecessor {pred}"
                                ));
                            }
                        }
                    }
                    inst => {
                        let mut bad = Vec::new();
                        inst.for_each_input(|input| {
                            if !self.value_dominates_use(&dom, &pos, input, b, k) {
                                bad.push(input);
                            }
                        });
                        for input in bad {
                            self.err(format!(
                                "{i} in {b}: use of {input} not dominated by its definition"
                            ));
                        }
                    }
                }
            }
            let term = g.terminator(b);
            let end = g.block_insts(b).len();
            let mut bad = Vec::new();
            term.for_each_input(|input| {
                if !self.value_dominates_use(&dom, &pos, input, b, end) {
                    bad.push(input);
                }
            });
            for input in bad {
                self.err(format!(
                    "terminator of {b}: use of {input} not dominated by its definition"
                ));
            }
        }
    }

    /// True if `v` is defined by the end of block `b` on every path (i.e.
    /// `v`'s block dominates `b`).
    fn value_available_at_end(
        &self,
        dom: &SimpleDomTree,
        _pos: &HashMap<InstId, usize>,
        v: InstId,
        b: BlockId,
    ) -> bool {
        match self.g.block_of(v) {
            Some(db) => dom.dominates(db, b),
            None => false,
        }
    }

    /// True if the definition of `v` strictly precedes a use at position
    /// `use_pos` of block `b`.
    fn value_dominates_use(
        &self,
        dom: &SimpleDomTree,
        pos: &HashMap<InstId, usize>,
        v: InstId,
        b: BlockId,
        use_pos: usize,
    ) -> bool {
        match self.g.block_of(v) {
            Some(db) if db == b => pos.get(&v).is_some_and(|&p| p < use_pos),
            Some(db) => dom.dominates(db, b),
            None => false,
        }
    }
}

/// A minimal dominator tree used only by the verifier. The full-featured
/// analysis (queries, children, traversal) lives in `dbds-analysis`; this
/// one avoids a dependency cycle.
struct SimpleDomTree {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    rpo: Vec<BlockId>,
}

impl SimpleDomTree {
    fn compute(g: &Graph) -> Self {
        // Reverse postorder over reachable blocks.
        let n = g.block_count();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::new();
        // Iterative DFS computing postorder.
        let mut stack: Vec<(BlockId, usize)> = vec![(g.entry(), 0)];
        visited[g.entry().index()] = true;
        while let Some(&mut (b, ref mut child)) = stack.last_mut() {
            let succs = g.succs(b);
            if *child < succs.len() {
                let s = succs[*child];
                *child += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        // Cooper–Harvey–Kennedy iteration.
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[g.entry().index()] = Some(g.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in g.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        SimpleDomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    fn intersect(idom: &[Option<BlockId>], rpo_index: &[usize], a: BlockId, b: BlockId) -> BlockId {
        let (mut a, mut b) = (a, b);
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed block has idom");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed block has idom");
            }
        }
        a
    }

    /// Does `a` dominate `b`? Blocks unreachable from entry dominate
    /// nothing and are dominated by nothing.
    fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.index()] == usize::MAX || self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::classes::ClassTable;
    use crate::inst::BinOp;
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        b.finish()
    }

    #[test]
    fn accepts_well_formed_diamond() {
        verify(&diamond()).unwrap();
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut g = Graph::new("u", &[], empty_table());
        let e = g.entry();
        // add uses a value defined after it.
        let c1 = g.append_inst(e, Inst::Const(ConstValue::Int(1)), Type::Int);
        let add = g.append_inst(
            e,
            Inst::Binary {
                op: BinOp::Add,
                lhs: c1,
                rhs: InstId(2), // the const created below
            },
            Type::Int,
        );
        let _c2 = g.append_inst(e, Inst::Const(ConstValue::Int(2)), Type::Int);
        g.set_terminator(e, Terminator::Return { value: Some(add) });
        let errs = verify(&g).unwrap_err();
        assert!(
            errs.problems.iter().any(|p| p.contains("not dominated")),
            "{errs}"
        );
    }

    #[test]
    fn rejects_cross_branch_use() {
        let mut b = GraphBuilder::new("x", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(bf);
        b.ret(Some(one)); // uses a value from the sibling branch
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("not dominated")));
    }

    #[test]
    fn rejects_type_errors() {
        let mut g = Graph::new("t", &[Type::Bool], empty_table());
        let e = g.entry();
        let p = g.param_values()[0];
        // add of booleans
        let bad = g.append_inst(
            e,
            Inst::Binary {
                op: BinOp::Add,
                lhs: p,
                rhs: p,
            },
            Type::Int,
        );
        g.set_terminator(e, Terminator::Return { value: Some(bad) });
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("expected int")));
    }

    #[test]
    fn rejects_phi_input_not_dominating_pred() {
        let mut b = GraphBuilder::new("pd", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        // Second input (from bf) uses the value defined in bt.
        let phi = b.phi(vec![one, one], Type::Int);
        b.ret(Some(phi));
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs
            .problems
            .iter()
            .any(|p| p.contains("does not dominate predecessor")));
    }

    #[test]
    fn rejects_field_access_on_wrong_class() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let b_cl = t.add_class("B");
        let fa = t.add_field(a, "x", Type::Int);
        let _fb = t.add_field(b_cl, "y", Type::Int);
        let mut b = GraphBuilder::new("fa", &[], Arc::new(t));
        let obj = b.new_object(b_cl);
        let bad = b.load(obj, fa);
        b.ret(Some(bad));
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("does not belong")));
    }

    #[test]
    fn rejects_use_of_removed_instruction() {
        let mut g = diamond();
        // Find the compare and detach its constant operand.
        let entry = g.entry();
        let zero = g.block_insts(entry)[1];
        assert!(matches!(g.inst(zero), Inst::Const(_)));
        g.remove_inst(zero);
        let errs = verify(&g).unwrap_err();
        assert!(errs
            .problems
            .iter()
            .any(|p| p.contains("removed instruction")));
    }

    #[test]
    fn loop_with_back_edge_phi_verifies() {
        let mut b = GraphBuilder::new("loop", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let cond = b.cmp(CmpOp::Lt, i, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        let inc = g.append_inst(
            body,
            Inst::Binary {
                op: BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        verify(&g).unwrap();
    }

    #[test]
    fn display_of_errors_lists_problems() {
        let mut g = Graph::new("e", &[], empty_table());
        let e = g.entry();
        let c = g.append_inst(e, Inst::Const(ConstValue::Bool(true)), Type::Bool);
        let bad = g.append_inst(e, Inst::Neg(c), Type::Int);
        g.set_terminator(e, Terminator::Return { value: Some(bad) });
        let errs = verify(&g).unwrap_err();
        let text = errs.to_string();
        assert!(text.contains("verification failed"));
        assert!(text.contains("expected int"));
    }
}
