//! Graph well-formedness verification.
//!
//! The verifier checks structural invariants (edge bookkeeping, φ
//! placement and arity, type correctness) and the SSA dominance property
//! (every use is dominated by its definition). Every transformation in the
//! workspace is validated against it in tests, and the DBDS optimization
//! tier re-verifies graphs after each duplication in debug builds.
//!
//! Since the lint framework landed, [`verify`] is a thin wrapper over
//! [`crate::lint`]: it runs the default [`LintRegistry`](crate::lint::LintRegistry)
//! and reports the error-severity diagnostics as a flat [`VerifyErrors`],
//! so every existing call site (tests, the bailout checkpoint path, the
//! debug re-verification after duplication) transparently runs the full
//! structured suite. Warn-severity hygiene findings do not fail
//! verification; consume [`crate::lint::lint`] directly to see them.

use crate::lint::{lint, Severity};
use crate::Graph;
use std::error::Error;
use std::fmt;

/// The collection of problems found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyErrors {
    /// Individual human-readable problem descriptions.
    pub problems: Vec<String>,
}

impl fmt::Display for VerifyErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph verification failed ({} problems):",
            self.problems.len()
        )?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        Ok(())
    }
}

impl VerifyErrors {
    /// A one-line digest: the first problem plus the total count. Suits
    /// log lines and bailout records where the multi-line [`fmt::Display`]
    /// form is too bulky.
    pub fn summary(&self) -> String {
        match self.problems.as_slice() {
            [] => "graph verification failed".to_string(),
            [only] => only.clone(),
            [first, ..] => format!("{first} (+{} more)", self.problems.len() - 1),
        }
    }
}

impl Error for VerifyErrors {}

/// Verifies `g`, returning all problems found.
///
/// # Errors
///
/// Returns a [`VerifyErrors`] describing every violated invariant. An `Ok`
/// result means the graph is structurally sound, type-correct and in valid
/// SSA form. Problems arrive in the lint report's deterministic
/// (block, instruction, lint) order.
pub fn verify(g: &Graph) -> Result<(), VerifyErrors> {
    let report = lint(g);
    let problems: Vec<String> = report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.message.clone())
        .collect();
    if problems.is_empty() {
        Ok(())
    } else {
        Err(VerifyErrors { problems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::classes::ClassTable;
    use crate::ids::InstId;
    use crate::inst::{BinOp, CmpOp, Inst, Terminator};
    use crate::types::{ConstValue, Type};
    use std::sync::Arc;

    fn empty_table() -> Arc<ClassTable> {
        Arc::new(ClassTable::new())
    }

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d", &[Type::Int], empty_table());
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.cmp(CmpOp::Gt, x, zero);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        let phi = b.phi(vec![x, zero], Type::Int);
        b.ret(Some(phi));
        b.finish()
    }

    #[test]
    fn accepts_well_formed_diamond() {
        verify(&diamond()).unwrap();
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut g = Graph::new("u", &[], empty_table());
        let e = g.entry();
        // add uses a value defined after it.
        let c1 = g.append_inst(e, Inst::Const(ConstValue::Int(1)), Type::Int);
        let add = g.append_inst(
            e,
            Inst::Binary {
                op: BinOp::Add,
                lhs: c1,
                rhs: InstId(2), // the const created below
            },
            Type::Int,
        );
        let _c2 = g.append_inst(e, Inst::Const(ConstValue::Int(2)), Type::Int);
        g.set_terminator(e, Terminator::Return { value: Some(add) });
        let errs = verify(&g).unwrap_err();
        assert!(
            errs.problems.iter().any(|p| p.contains("not dominated")),
            "{errs}"
        );
    }

    #[test]
    fn rejects_cross_branch_use() {
        let mut b = GraphBuilder::new("x", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf) = (b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.ret(Some(one));
        b.switch_to(bf);
        b.ret(Some(one)); // uses a value from the sibling branch
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("not dominated")));
    }

    #[test]
    fn rejects_type_errors() {
        let mut g = Graph::new("t", &[Type::Bool], empty_table());
        let e = g.entry();
        let p = g.param_values()[0];
        // add of booleans
        let bad = g.append_inst(
            e,
            Inst::Binary {
                op: BinOp::Add,
                lhs: p,
                rhs: p,
            },
            Type::Int,
        );
        g.set_terminator(e, Terminator::Return { value: Some(bad) });
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("expected int")));
    }

    #[test]
    fn rejects_phi_input_not_dominating_pred() {
        let mut b = GraphBuilder::new("pd", &[Type::Bool], empty_table());
        let c = b.param(0);
        let (bt, bf, bm) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, bt, bf, 0.5);
        b.switch_to(bt);
        let one = b.iconst(1);
        b.jump(bm);
        b.switch_to(bf);
        b.jump(bm);
        b.switch_to(bm);
        // Second input (from bf) uses the value defined in bt.
        let phi = b.phi(vec![one, one], Type::Int);
        b.ret(Some(phi));
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs
            .problems
            .iter()
            .any(|p| p.contains("does not dominate predecessor")));
    }

    #[test]
    fn rejects_field_access_on_wrong_class() {
        let mut t = ClassTable::new();
        let a = t.add_class("A");
        let b_cl = t.add_class("B");
        let fa = t.add_field(a, "x", Type::Int);
        let _fb = t.add_field(b_cl, "y", Type::Int);
        let mut b = GraphBuilder::new("fa", &[], Arc::new(t));
        let obj = b.new_object(b_cl);
        let bad = b.load(obj, fa);
        b.ret(Some(bad));
        let g = b.finish();
        let errs = verify(&g).unwrap_err();
        assert!(errs.problems.iter().any(|p| p.contains("does not belong")));
    }

    #[test]
    fn rejects_use_of_removed_instruction() {
        let mut g = diamond();
        // Find the compare and detach its constant operand.
        let entry = g.entry();
        let zero = g.block_insts(entry)[1];
        assert!(matches!(g.inst(zero), Inst::Const(_)));
        g.remove_inst(zero);
        let errs = verify(&g).unwrap_err();
        assert!(errs
            .problems
            .iter()
            .any(|p| p.contains("removed instruction")));
    }

    #[test]
    fn loop_with_back_edge_phi_verifies() {
        let mut b = GraphBuilder::new("loop", &[Type::Int], empty_table());
        let n = b.param(0);
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(vec![zero, zero], Type::Int);
        let cond = b.cmp(CmpOp::Lt, i, n);
        b.branch(cond, body, exit, 0.9);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut g = b.finish();
        let inc = g.append_inst(
            body,
            Inst::Binary {
                op: BinOp::Add,
                lhs: i,
                rhs: one,
            },
            Type::Int,
        );
        if let Inst::Phi { inputs } = g.inst_mut(i) {
            inputs[1] = inc;
        }
        verify(&g).unwrap();
    }

    #[test]
    fn display_of_errors_lists_problems() {
        let mut g = Graph::new("e", &[], empty_table());
        let e = g.entry();
        let c = g.append_inst(e, Inst::Const(ConstValue::Bool(true)), Type::Bool);
        let bad = g.append_inst(e, Inst::Neg(c), Type::Int);
        g.set_terminator(e, Terminator::Return { value: Some(bad) });
        let errs = verify(&g).unwrap_err();
        let text = errs.to_string();
        assert!(text.contains("verification failed"));
        assert!(text.contains("expected int"));
    }

    #[test]
    fn problems_are_sorted_and_stable_across_runs() {
        // Several independent problems: their order must be the lint
        // report's (block, inst, lint) order on every run.
        let mut g = Graph::new("s", &[], empty_table());
        let e = g.entry();
        let t = g.append_inst(e, Inst::Const(ConstValue::Bool(true)), Type::Bool);
        let neg = g.append_inst(e, Inst::Neg(t), Type::Int);
        let add = g.append_inst(
            e,
            Inst::Binary {
                op: BinOp::Add,
                lhs: neg,
                rhs: InstId(9),
            },
            Type::Int,
        );
        g.set_terminator(e, Terminator::Return { value: Some(add) });
        let a = verify(&g).unwrap_err();
        let b = verify(&g).unwrap_err();
        assert_eq!(a, b);
        assert!(a.problems.len() >= 2);
    }
}
