//! Typed index newtypes used throughout the IR.
//!
//! All IR entities live in arenas inside a [`crate::Graph`] (or a
//! [`crate::ClassTable`]) and are referred to by small copyable ids. Using
//! distinct newtypes instead of raw `u32`s makes it impossible to confuse a
//! block with an instruction at compile time.

use std::fmt;

/// Identifies a basic block inside a [`crate::Graph`].
///
/// Blocks are numbered densely in creation order; `BlockId(0)` is not
/// necessarily the entry block (see [`crate::Graph::entry`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Identifies an instruction inside a [`crate::Graph`].
///
/// Following Graal IR, every instruction produces at most one value, so an
/// `InstId` doubles as the SSA value id of the value the instruction
/// produces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

/// Identifies a class in a [`crate::ClassTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Identifies a field of some class in a [`crate::ClassTable`].
///
/// Field ids are global (not per-class): each declared field of each class
/// gets a unique id, which keeps instruction operands compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u32);

macro_rules! id_impls {
    ($t:ident, $prefix:expr) => {
        impl $t {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $t(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_impls!(BlockId, "b");
id_impls!(InstId, "v");
id_impls!(ClassId, "c");
id_impls!(FieldId, "f");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_short_prefixes() {
        assert_eq!(BlockId(3).to_string(), "b3");
        assert_eq!(InstId(17).to_string(), "v17");
        assert_eq!(ClassId(0).to_string(), "c0");
        assert_eq!(FieldId(9).to_string(), "f9");
    }

    #[test]
    fn round_trips_through_index() {
        let b = BlockId::from_index(42);
        assert_eq!(b.index(), 42);
        let v = InstId::from_index(0);
        assert_eq!(v, InstId(0));
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(InstId(1) < InstId(2));
        assert!(BlockId(0) < BlockId(10));
    }
}
