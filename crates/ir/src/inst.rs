//! The instruction set: SSA instructions and block terminators.
//!
//! Every instruction produces at most one value (as in Graal IR), so an
//! instruction is identified by — and its result referred to through — its
//! [`InstId`]. Control flow lives exclusively in block [`Terminator`]s.

use crate::ids::{BlockId, ClassId, FieldId, InstId};
use crate::types::ConstValue;
use std::fmt;

/// Binary integer operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; traps on division by zero (overflow wraps).
    Div,
    /// Signed remainder; traps on division by zero.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (count taken modulo 64).
    Shl,
    /// Arithmetic shift right (count taken modulo 64).
    Shr,
    /// Logical shift right (count taken modulo 64).
    UShr,
}

impl BinOp {
    /// All binary operators, in a fixed order.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::UShr,
    ];

    /// Returns `true` if `op(a, b) == op(b, a)` for all inputs.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::UShr => "ushr",
        }
    }
}

/// Comparison operators.
///
/// `Eq`/`Ne` apply to integers, booleans and references; the ordered
/// comparisons apply to integers only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators, in a fixed order.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// The operator satisfied exactly when `self` is not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its operands swapped: `a op b == b op.swap() a`.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on two integers.
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Mnemonic used by the printer and parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// An SSA instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// A compile-time constant.
    Const(ConstValue),
    /// The `index`-th function parameter. Only valid in the entry block.
    Param(u32),
    /// Binary integer arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: InstId,
        /// Right operand.
        rhs: InstId,
    },
    /// Comparison producing a boolean.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: InstId,
        /// Right operand.
        rhs: InstId,
    },
    /// Boolean negation.
    Not(InstId),
    /// Integer negation (two's complement, wrapping).
    Neg(InstId),
    /// SSA φ. `inputs[i]` is the incoming value from the block's `i`-th
    /// predecessor (see [`crate::Graph::preds`]).
    Phi {
        /// Incoming values, aligned with the predecessor list.
        inputs: Vec<InstId>,
    },
    /// Heap allocation of a class instance; fields start zeroed/null.
    New {
        /// Class to instantiate.
        class: ClassId,
    },
    /// Field read. Traps on null `object`.
    LoadField {
        /// Receiver.
        object: InstId,
        /// Field to read.
        field: FieldId,
    },
    /// Field write. Traps on null `object`. Produces no value.
    StoreField {
        /// Receiver.
        object: InstId,
        /// Field to write.
        field: FieldId,
        /// Value to store.
        value: InstId,
    },
    /// Exact-class type test producing a boolean (`false` for null).
    InstanceOf {
        /// Reference to test.
        object: InstId,
        /// Class to test against.
        class: ClassId,
    },
    /// Array allocation, zero-initialized. Traps on negative length.
    NewArray {
        /// Element count.
        length: InstId,
    },
    /// Array element read. Traps on null array or out-of-bounds index.
    ArrayLoad {
        /// Array reference.
        array: InstId,
        /// Element index.
        index: InstId,
    },
    /// Array element write. Traps on null array or out-of-bounds index.
    ArrayStore {
        /// Array reference.
        array: InstId,
        /// Element index.
        index: InstId,
        /// Value to store.
        value: InstId,
    },
    /// Array length read. Traps on null array.
    ArrayLength(InstId),
    /// An opaque call: models an out-of-line runtime or library call the
    /// optimizer must not look through. Consumes its arguments, has a side
    /// effect (kills memory caches) and returns an `Int` value that the
    /// interpreter computes as a deterministic mix of the arguments.
    Invoke {
        /// Call arguments.
        args: Vec<InstId>,
    },
}

/// Fine-grained instruction class used by the node cost model.
///
/// Mirrors Graal's `@NodeInfo(cycles = …, size = …)` annotations (§5.3 of
/// the paper): every kind is assigned an abstract cycle count and code size
/// by `dbds-costmodel`. Terminators have kinds as well because the paper's
/// size budget is computed over size estimations, which include control
/// transfer instructions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum InstKind {
    /// Constant materialization.
    Const = 0,
    /// Parameter access.
    Param,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    UShr,
    /// Comparison.
    Compare,
    /// Boolean not.
    Not,
    /// Integer negation.
    Neg,
    /// φ (resolved to a move at block boundaries).
    Phi,
    /// Object allocation.
    New,
    /// Field load.
    LoadField,
    /// Field store.
    StoreField,
    /// Type test.
    InstanceOf,
    /// Array allocation.
    NewArray,
    /// Array element load.
    ArrayLoad,
    /// Array element store.
    ArrayStore,
    /// Array length load.
    ArrayLength,
    /// Opaque call.
    Invoke,
    /// Unconditional jump terminator.
    Jump,
    /// Conditional branch terminator.
    Branch,
    /// Return terminator.
    Return,
    /// Deoptimization/trap terminator.
    Deopt,
}

impl InstKind {
    /// Number of distinct kinds.
    pub const COUNT: usize = 30;

    /// All kinds in discriminant order.
    pub const ALL: [InstKind; InstKind::COUNT] = [
        InstKind::Const,
        InstKind::Param,
        InstKind::Add,
        InstKind::Sub,
        InstKind::Mul,
        InstKind::Div,
        InstKind::Rem,
        InstKind::And,
        InstKind::Or,
        InstKind::Xor,
        InstKind::Shl,
        InstKind::Shr,
        InstKind::UShr,
        InstKind::Compare,
        InstKind::Not,
        InstKind::Neg,
        InstKind::Phi,
        InstKind::New,
        InstKind::LoadField,
        InstKind::StoreField,
        InstKind::InstanceOf,
        InstKind::NewArray,
        InstKind::ArrayLoad,
        InstKind::ArrayStore,
        InstKind::ArrayLength,
        InstKind::Invoke,
        InstKind::Jump,
        InstKind::Branch,
        InstKind::Return,
        InstKind::Deopt,
    ];

    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            InstKind::Const => "const",
            InstKind::Param => "param",
            InstKind::Add => "add",
            InstKind::Sub => "sub",
            InstKind::Mul => "mul",
            InstKind::Div => "div",
            InstKind::Rem => "rem",
            InstKind::And => "and",
            InstKind::Or => "or",
            InstKind::Xor => "xor",
            InstKind::Shl => "shl",
            InstKind::Shr => "shr",
            InstKind::UShr => "ushr",
            InstKind::Compare => "compare",
            InstKind::Not => "not",
            InstKind::Neg => "neg",
            InstKind::Phi => "phi",
            InstKind::New => "new",
            InstKind::LoadField => "load",
            InstKind::StoreField => "store",
            InstKind::InstanceOf => "instanceof",
            InstKind::NewArray => "newarray",
            InstKind::ArrayLoad => "aload",
            InstKind::ArrayStore => "astore",
            InstKind::ArrayLength => "alength",
            InstKind::Invoke => "invoke",
            InstKind::Jump => "jump",
            InstKind::Branch => "branch",
            InstKind::Return => "return",
            InstKind::Deopt => "deopt",
        }
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<BinOp> for InstKind {
    fn from(op: BinOp) -> InstKind {
        match op {
            BinOp::Add => InstKind::Add,
            BinOp::Sub => InstKind::Sub,
            BinOp::Mul => InstKind::Mul,
            BinOp::Div => InstKind::Div,
            BinOp::Rem => InstKind::Rem,
            BinOp::And => InstKind::And,
            BinOp::Or => InstKind::Or,
            BinOp::Xor => InstKind::Xor,
            BinOp::Shl => InstKind::Shl,
            BinOp::Shr => InstKind::Shr,
            BinOp::UShr => InstKind::UShr,
        }
    }
}

impl Inst {
    /// The cost-model kind of this instruction.
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Const(_) => InstKind::Const,
            Inst::Param(_) => InstKind::Param,
            Inst::Binary { op, .. } => InstKind::from(*op),
            Inst::Compare { .. } => InstKind::Compare,
            Inst::Not(_) => InstKind::Not,
            Inst::Neg(_) => InstKind::Neg,
            Inst::Phi { .. } => InstKind::Phi,
            Inst::New { .. } => InstKind::New,
            Inst::LoadField { .. } => InstKind::LoadField,
            Inst::StoreField { .. } => InstKind::StoreField,
            Inst::InstanceOf { .. } => InstKind::InstanceOf,
            Inst::NewArray { .. } => InstKind::NewArray,
            Inst::ArrayLoad { .. } => InstKind::ArrayLoad,
            Inst::ArrayStore { .. } => InstKind::ArrayStore,
            Inst::ArrayLength(_) => InstKind::ArrayLength,
            Inst::Invoke { .. } => InstKind::Invoke,
        }
    }

    /// Returns `true` if this is a φ.
    pub fn is_phi(&self) -> bool {
        matches!(self, Inst::Phi { .. })
    }

    /// Returns `true` if this instruction has a side effect observable by
    /// other instructions (memory writes, opaque calls). Effectful
    /// instructions must never be removed or reordered.
    pub fn has_effect(&self) -> bool {
        matches!(
            self,
            Inst::StoreField { .. } | Inst::ArrayStore { .. } | Inst::Invoke { .. }
        )
    }

    /// Returns `true` if executing this instruction can trap (null
    /// dereference, division by zero, array bounds violation, negative
    /// array length).
    pub fn can_trap(&self) -> bool {
        matches!(
            self,
            Inst::Binary {
                op: BinOp::Div | BinOp::Rem,
                ..
            } | Inst::LoadField { .. }
                | Inst::StoreField { .. }
                | Inst::NewArray { .. }
                | Inst::ArrayLoad { .. }
                | Inst::ArrayStore { .. }
                | Inst::ArrayLength(_)
        )
    }

    /// Returns `true` if the instruction may be deleted when its value is
    /// unused: it has no side effect and cannot trap. Allocations are
    /// removable as well — in our model (as in a JVM with escape analysis)
    /// an unobserved allocation is not an observable effect.
    pub fn removable_if_unused(&self) -> bool {
        if matches!(self, Inst::New { .. }) {
            return true;
        }
        !self.has_effect() && !self.can_trap()
    }

    /// Calls `f` on every value operand, in a fixed order.
    pub fn for_each_input(&self, mut f: impl FnMut(InstId)) {
        match self {
            Inst::Const(_) | Inst::Param(_) | Inst::New { .. } => {}
            Inst::Binary { lhs, rhs, .. } | Inst::Compare { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Not(x) | Inst::Neg(x) | Inst::ArrayLength(x) => f(*x),
            Inst::Phi { inputs } => inputs.iter().copied().for_each(f),
            Inst::LoadField { object, .. } => f(*object),
            Inst::StoreField { object, value, .. } => {
                f(*object);
                f(*value);
            }
            Inst::InstanceOf { object, .. } => f(*object),
            Inst::NewArray { length } => f(*length),
            Inst::ArrayLoad { array, index } => {
                f(*array);
                f(*index);
            }
            Inst::ArrayStore {
                array,
                index,
                value,
            } => {
                f(*array);
                f(*index);
                f(*value);
            }
            Inst::Invoke { args } => args.iter().copied().for_each(f),
        }
    }

    /// Calls `f` with a mutable reference to every value operand, allowing
    /// in-place operand rewriting.
    pub fn for_each_input_mut(&mut self, mut f: impl FnMut(&mut InstId)) {
        match self {
            Inst::Const(_) | Inst::Param(_) | Inst::New { .. } => {}
            Inst::Binary { lhs, rhs, .. } | Inst::Compare { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Not(x) | Inst::Neg(x) | Inst::ArrayLength(x) => f(x),
            Inst::Phi { inputs } => inputs.iter_mut().for_each(f),
            Inst::LoadField { object, .. } => f(object),
            Inst::StoreField { object, value, .. } => {
                f(object);
                f(value);
            }
            Inst::InstanceOf { object, .. } => f(object),
            Inst::NewArray { length } => f(length),
            Inst::ArrayLoad { array, index } => {
                f(array);
                f(index);
            }
            Inst::ArrayStore {
                array,
                index,
                value,
            } => {
                f(array);
                f(index);
                f(value);
            }
            Inst::Invoke { args } => args.iter_mut().for_each(f),
        }
    }

    /// Collects all value operands into a vector (convenience for cold
    /// paths; hot paths should use [`Inst::for_each_input`]).
    pub fn collect_inputs(&self) -> Vec<InstId> {
        let mut v = Vec::new();
        self.for_each_input(|i| v.push(i));
        v
    }
}

/// A basic-block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Successor block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    Branch {
        /// Boolean condition value.
        cond: InstId,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
        /// Profile-derived probability that the condition is true, in
        /// `[0, 1]`. Plays the role of HotSpot's branch profiles.
        prob_then: f64,
    },
    /// Function return.
    Return {
        /// Returned value, or `None` for void functions.
        value: Option<InstId>,
    },
    /// Deoptimization: execution traps back to a (notional) interpreter.
    Deopt,
}

impl Terminator {
    /// The cost-model kind of this terminator.
    pub fn kind(&self) -> InstKind {
        match self {
            Terminator::Jump { .. } => InstKind::Jump,
            Terminator::Branch { .. } => InstKind::Branch,
            Terminator::Return { .. } => InstKind::Return,
            Terminator::Deopt => InstKind::Deopt,
        }
    }

    /// Successor blocks, in order (then before else for branches).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump { target } => vec![*target],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return { .. } | Terminator::Deopt => Vec::new(),
        }
    }

    /// Calls `f` on every value operand.
    pub fn for_each_input(&self, mut f: impl FnMut(InstId)) {
        match self {
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::Return { value: Some(v) } => f(*v),
            _ => {}
        }
    }

    /// Calls `f` with a mutable reference to every value operand.
    pub fn for_each_input_mut(&mut self, mut f: impl FnMut(&mut InstId)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Return { value: Some(v) } => f(v),
            _ => {}
        }
    }

    /// Calls `f` with a mutable reference to every successor block id.
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Terminator::Jump { target } => f(target),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Terminator::Return { .. } | Terminator::Deopt => {}
        }
    }
}

/// Per-[`InstKind`] execution counters produced by the interpreter.
///
/// The cost model turns these dynamic counts into estimated cycles; this is
/// the reproduction's machine-independent "peak performance" metric (see
/// DESIGN.md §2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KindCounts([u64; InstKind::COUNT]);

impl Default for KindCounts {
    fn default() -> Self {
        KindCounts([0; InstKind::COUNT])
    }
}

impl KindCounts {
    /// Creates all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter for `kind` by one.
    #[inline]
    pub fn bump(&mut self, kind: InstKind) {
        self.0[kind as usize] += 1;
    }

    /// Adds `n` to the counter for `kind`.
    #[inline]
    pub fn add(&mut self, kind: InstKind, n: u64) {
        self.0[kind as usize] += n;
    }

    /// Returns the count for `kind`.
    #[inline]
    pub fn get(&self, kind: InstKind) -> u64 {
        self.0[kind as usize]
    }

    /// Total count across all kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates over `(kind, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (InstKind, u64)> + '_ {
        InstKind::ALL
            .iter()
            .map(move |&k| (k, self.0[k as usize]))
            .filter(|&(_, n)| n > 0)
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &KindCounts) {
        for (dst, src) in self.0.iter_mut().zip(other.0.iter()) {
            *dst += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_discriminants_are_dense() {
        for (i, k) in InstKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "kind {k} out of order");
        }
        assert_eq!(InstKind::ALL.len(), InstKind::COUNT);
    }

    #[test]
    fn binop_kinds() {
        for op in BinOp::ALL {
            let inst = Inst::Binary {
                op,
                lhs: InstId(0),
                rhs: InstId(1),
            };
            assert_eq!(inst.kind(), InstKind::from(op));
        }
    }

    #[test]
    fn cmp_negate_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_swap_is_involution_and_consistent() {
        for op in CmpOp::ALL {
            assert_eq!(op.swap().swap(), op);
            for (a, b) in [(1i64, 2i64), (2, 1), (3, 3), (-5, 5)] {
                assert_eq!(op.eval_int(a, b), op.swap().eval_int(b, a));
                assert_eq!(op.eval_int(a, b), !op.negate().eval_int(a, b));
            }
        }
    }

    #[test]
    fn effects_and_traps() {
        let store = Inst::StoreField {
            object: InstId(0),
            field: FieldId(0),
            value: InstId(1),
        };
        assert!(store.has_effect());
        assert!(store.can_trap());
        assert!(!store.removable_if_unused());

        let div = Inst::Binary {
            op: BinOp::Div,
            lhs: InstId(0),
            rhs: InstId(1),
        };
        assert!(!div.has_effect());
        assert!(div.can_trap());
        assert!(!div.removable_if_unused());

        let add = Inst::Binary {
            op: BinOp::Add,
            lhs: InstId(0),
            rhs: InstId(1),
        };
        assert!(add.removable_if_unused());

        let alloc = Inst::New { class: ClassId(0) };
        assert!(alloc.removable_if_unused());

        let call = Inst::Invoke { args: vec![] };
        assert!(call.has_effect());
        assert!(!call.removable_if_unused());
    }

    #[test]
    fn input_iteration_matches_mutation() {
        let mut inst = Inst::ArrayStore {
            array: InstId(1),
            index: InstId(2),
            value: InstId(3),
        };
        assert_eq!(inst.collect_inputs(), vec![InstId(1), InstId(2), InstId(3)]);
        inst.for_each_input_mut(|i| *i = InstId(i.0 + 10));
        assert_eq!(
            inst.collect_inputs(),
            vec![InstId(11), InstId(12), InstId(13)]
        );
    }

    #[test]
    fn phi_inputs() {
        let phi = Inst::Phi {
            inputs: vec![InstId(4), InstId(5)],
        };
        assert!(phi.is_phi());
        assert_eq!(phi.collect_inputs(), vec![InstId(4), InstId(5)]);
        assert_eq!(phi.kind(), InstKind::Phi);
    }

    #[test]
    fn terminator_successors() {
        let j = Terminator::Jump { target: BlockId(3) };
        assert_eq!(j.successors(), vec![BlockId(3)]);
        let b = Terminator::Branch {
            cond: InstId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            prob_then: 0.5,
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(
            Terminator::Return { value: None }.successors(),
            Vec::<BlockId>::new()
        );
        assert_eq!(Terminator::Deopt.successors(), Vec::<BlockId>::new());
    }

    #[test]
    fn terminator_successor_rewrite() {
        let mut b = Terminator::Branch {
            cond: InstId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            prob_then: 0.9,
        };
        b.for_each_successor_mut(|s| {
            if *s == BlockId(2) {
                *s = BlockId(7);
            }
        });
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(7)]);
    }

    #[test]
    fn kind_counts() {
        let mut c = KindCounts::new();
        c.bump(InstKind::Add);
        c.bump(InstKind::Add);
        c.add(InstKind::Div, 5);
        assert_eq!(c.get(InstKind::Add), 2);
        assert_eq!(c.get(InstKind::Div), 5);
        assert_eq!(c.total(), 7);
        let mut d = KindCounts::new();
        d.bump(InstKind::Add);
        d.merge(&c);
        assert_eq!(d.get(InstKind::Add), 3);
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn commutativity_table() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }
}
