//! Value types and compile-time constants.

use crate::ids::ClassId;
use std::fmt;

/// The type of an SSA value.
///
/// The type system is deliberately small: a 64-bit integer type, booleans,
/// heap references to class instances, and references to arrays of 64-bit
/// integers. This is rich enough to express every optimization opportunity
/// class from §2 of the DBDS paper (constant folding, conditional
/// elimination, partial escape analysis, read elimination, strength
/// reduction) while keeping the interpreter and verifier simple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// No value. Produced by effect-only instructions such as `store`.
    Void,
    /// A boolean, produced by comparisons and logic on booleans.
    Bool,
    /// A 64-bit signed integer.
    Int,
    /// A (possibly null) reference to an instance of the given class.
    Ref(ClassId),
    /// A (possibly null) reference to an array of `Int`.
    Arr,
}

impl Type {
    /// Returns `true` when values of this type live on the heap.
    pub fn is_reference(self) -> bool {
        matches!(self, Type::Ref(_) | Type::Arr)
    }

    /// Returns `true` for `Void`.
    pub fn is_void(self) -> bool {
        matches!(self, Type::Void)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Ref(c) => write!(f, "ref {c}"),
            Type::Arr => write!(f, "arr"),
        }
    }
}

/// A compile-time constant value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstValue {
    /// A 64-bit integer constant.
    Int(i64),
    /// A boolean constant.
    Bool(bool),
    /// The null reference. Typed as `Ref(class)` so the verifier can check
    /// uses; `null` compares equal to any other null regardless of class.
    Null(ClassId),
    /// The null array reference.
    NullArr,
}

impl ConstValue {
    /// The [`Type`] of this constant.
    pub fn ty(self) -> Type {
        match self {
            ConstValue::Int(_) => Type::Int,
            ConstValue::Bool(_) => Type::Bool,
            ConstValue::Null(c) => Type::Ref(c),
            ConstValue::NullArr => Type::Arr,
        }
    }

    /// Returns the integer payload if this is an [`ConstValue::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            ConstValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`ConstValue::Bool`].
    pub fn as_bool(self) -> Option<bool> {
        match self {
            ConstValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns `true` if this constant is one of the null references.
    pub fn is_null(self) -> bool {
        matches!(self, ConstValue::Null(_) | ConstValue::NullArr)
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Int(i) => write!(f, "{i}"),
            ConstValue::Bool(b) => write!(f, "{b}"),
            ConstValue::Null(c) => write!(f, "null {c}"),
            ConstValue::NullArr => write!(f, "nullarr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_types_match() {
        assert_eq!(ConstValue::Int(3).ty(), Type::Int);
        assert_eq!(ConstValue::Bool(true).ty(), Type::Bool);
        assert_eq!(ConstValue::Null(ClassId(2)).ty(), Type::Ref(ClassId(2)));
        assert_eq!(ConstValue::NullArr.ty(), Type::Arr);
    }

    #[test]
    fn accessors() {
        assert_eq!(ConstValue::Int(7).as_int(), Some(7));
        assert_eq!(ConstValue::Bool(false).as_int(), None);
        assert_eq!(ConstValue::Bool(true).as_bool(), Some(true));
        assert!(ConstValue::Null(ClassId(0)).is_null());
        assert!(ConstValue::NullArr.is_null());
        assert!(!ConstValue::Int(0).is_null());
    }

    #[test]
    fn reference_types() {
        assert!(Type::Ref(ClassId(0)).is_reference());
        assert!(Type::Arr.is_reference());
        assert!(!Type::Int.is_reference());
        assert!(Type::Void.is_void());
    }

    #[test]
    fn display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Ref(ClassId(1)).to_string(), "ref c1");
        assert_eq!(ConstValue::Int(-4).to_string(), "-4");
    }
}
